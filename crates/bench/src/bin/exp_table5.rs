//! Table V: the synthetic mobility datasets over the Vita-like building.

use ism_bench::{print_table, synthetic_dataset, vita_space, Scale};

fn main() {
    let scale = Scale::from_env();
    let space = vita_space(7);
    eprintln!(
        "vita-like venue: {} regions, {} partitions, {} doors",
        space.regions().len(),
        space.partitions().len(),
        space.doors().len()
    );
    let grid = [(5.0, 3.0), (5.0, 5.0), (5.0, 7.0), (10.0, 7.0), (15.0, 7.0)];
    let mut rows = Vec::new();
    for (t, mu) in grid {
        let d = synthetic_dataset(&space, t, mu, scale.objects, 11);
        let stats = d.stats();
        rows.push(vec![
            d.name.clone(),
            format!("T={t}s, mu={mu}m"),
            format!("{}", stats.num_records),
            format!("{}", stats.num_sequences),
        ]);
    }
    print_table(
        "Table V — synthetic mobility datasets",
        &["dataset", "parameters", "records", "sequences"],
        &rows,
    );
}
