//! Markov-blanket inference: Gibbs sampling, ICM, simulated annealing.
//!
//! C2MN's learning and decoding both operate on *local conditionals*: the
//! probability of one target node's label given its Markov blanket
//! (§IV-A). This module abstracts that interface as [`ConditionalModel`]
//! and provides the three sweep strategies the pipeline uses:
//!
//! * [`gibbs_sweep`] — stochastic resampling (the MCMC inference of
//!   Algorithm 1),
//! * [`icm_sweep`] — iterated conditional modes for greedy decoding,
//! * [`simulated_annealing`] — tempered Gibbs for higher-quality decoding.

use crate::util::sample_from_log_weights;
use rand::Rng;

/// A model exposing per-site conditional log-potentials.
///
/// A *site* is one target node (e.g. the region label of record `i`); its
/// candidates are a dense `0..num_candidates(site)` relabelling of the
/// admissible labels. `local_log_potential` must return the unnormalised
/// log-probability of assigning `candidate` at `site` **given the current
/// assignment of every other site** (i.e. the sum of the log-potentials of
/// all cliques touching the site).
pub trait ConditionalModel {
    /// Number of sites in the model.
    fn num_sites(&self) -> usize;

    /// Number of candidate labels at `site`.
    fn num_candidates(&self, site: usize) -> usize;

    /// Unnormalised conditional log-potential of `candidate` at `site`
    /// under the current `state` (dense candidate indices per site).
    fn local_log_potential(&self, site: usize, candidate: usize, state: &[usize]) -> f64;
}

/// One Gibbs sweep: resamples every site in order from its conditional at
/// temperature `temperature` (1.0 = the model distribution).
///
/// Returns the number of sites whose label changed.
pub fn gibbs_sweep<M: ConditionalModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    state: &mut [usize],
    temperature: f64,
    rng: &mut R,
) -> usize {
    debug_assert_eq!(state.len(), model.num_sites());
    let inv_t = 1.0 / temperature.max(1e-9);
    let mut changed = 0;
    let mut weights: Vec<f64> = Vec::new();
    for site in 0..model.num_sites() {
        let k = model.num_candidates(site);
        if k <= 1 {
            continue;
        }
        weights.clear();
        weights.extend((0..k).map(|c| model.local_log_potential(site, c, state) * inv_t));
        let new = sample_from_log_weights(&weights, rng);
        if new != state[site] {
            changed += 1;
        }
        state[site] = new;
    }
    changed
}

/// One ICM sweep: sets every site to its conditional argmax.
///
/// Returns the number of sites whose label changed.
pub fn icm_sweep<M: ConditionalModel + ?Sized>(model: &M, state: &mut [usize]) -> usize {
    debug_assert_eq!(state.len(), model.num_sites());
    let mut changed = 0;
    for site in 0..model.num_sites() {
        let k = model.num_candidates(site);
        if k <= 1 {
            continue;
        }
        let mut best = f64::NEG_INFINITY;
        let mut arg = state[site];
        for c in 0..k {
            let v = model.local_log_potential(site, c, state);
            if v > best {
                best = v;
                arg = c;
            }
        }
        if arg != state[site] {
            changed += 1;
            state[site] = arg;
        }
    }
    changed
}

/// Geometric annealing schedule from `t_start` down to `t_end`.
#[derive(Debug, Clone, Copy)]
pub struct AnnealSchedule {
    /// Initial temperature (> t_end).
    pub t_start: f64,
    /// Final temperature (> 0).
    pub t_end: f64,
    /// Number of Gibbs sweeps across the schedule.
    pub sweeps: usize,
}

impl Default for AnnealSchedule {
    fn default() -> Self {
        AnnealSchedule {
            t_start: 2.0,
            t_end: 0.2,
            sweeps: 20,
        }
    }
}

/// Simulated annealing: tempered Gibbs sweeps followed by ICM until a local
/// optimum is reached (at most `num_sites` extra ICM sweeps).
pub fn simulated_annealing<M: ConditionalModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    state: &mut [usize],
    schedule: &AnnealSchedule,
    rng: &mut R,
) {
    if schedule.sweeps > 0 {
        let ratio = (schedule.t_end / schedule.t_start).max(1e-12);
        for i in 0..schedule.sweeps {
            let frac = i as f64 / schedule.sweeps.max(1) as f64;
            let t = schedule.t_start * ratio.powf(frac);
            gibbs_sweep(model, state, t, rng);
        }
    }
    for _ in 0..model.num_sites().max(1) {
        if icm_sweep(model, state) == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 1-D Ising-style chain: K labels, unary preference for label
    /// `prefs[i]`, pairwise coupling rewarding equal neighbours.
    struct Chain {
        prefs: Vec<usize>,
        k: usize,
        unary: f64,
        coupling: f64,
    }

    impl ConditionalModel for Chain {
        fn num_sites(&self) -> usize {
            self.prefs.len()
        }
        fn num_candidates(&self, _site: usize) -> usize {
            self.k
        }
        fn local_log_potential(&self, site: usize, candidate: usize, state: &[usize]) -> f64 {
            let mut v = if candidate == self.prefs[site] {
                self.unary
            } else {
                0.0
            };
            if site > 0 && state[site - 1] == candidate {
                v += self.coupling;
            }
            if site + 1 < state.len() && state[site + 1] == candidate {
                v += self.coupling;
            }
            v
        }
    }

    #[test]
    fn icm_reaches_unary_optimum_without_coupling() {
        let model = Chain {
            prefs: vec![2, 0, 1, 1, 0],
            k: 3,
            unary: 1.0,
            coupling: 0.0,
        };
        let mut state = vec![0; 5];
        icm_sweep(&model, &mut state);
        assert_eq!(state, vec![2, 0, 1, 1, 0]);
        // A second sweep changes nothing.
        assert_eq!(icm_sweep(&model, &mut state), 0);
    }

    #[test]
    fn coupling_smooths_isolated_dissent() {
        // Strong coupling: starting from the all-zero labelling, the middle
        // site's unary preference for label 1 is overruled by both
        // neighbours (coupling 2+2 beats unary 0.5), so ICM keeps it 0.
        let model = Chain {
            prefs: vec![0, 1, 0, 0, 0],
            k: 2,
            unary: 0.5,
            coupling: 2.0,
        };
        let mut state = vec![0, 0, 0, 0, 0];
        let changed = icm_sweep(&model, &mut state);
        assert_eq!(changed, 0);
        assert_eq!(state, vec![0, 0, 0, 0, 0]);

        // With weak coupling the unary preference wins instead.
        let weak = Chain {
            prefs: vec![0, 1, 0, 0, 0],
            k: 2,
            unary: 0.5,
            coupling: 0.1,
        };
        let mut state = vec![0, 0, 0, 0, 0];
        icm_sweep(&weak, &mut state);
        assert_eq!(state, vec![0, 1, 0, 0, 0]);
    }

    #[test]
    fn gibbs_mixes_toward_mode() {
        let model = Chain {
            prefs: vec![1; 12],
            k: 2,
            unary: 2.0,
            coupling: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut state = vec![0; 12];
        for _ in 0..50 {
            gibbs_sweep(&model, &mut state, 1.0, &mut rng);
        }
        let ones = state.iter().filter(|&&s| s == 1).count();
        assert!(ones >= 10, "state {state:?}");
    }

    #[test]
    fn low_temperature_gibbs_is_greedy() {
        let model = Chain {
            prefs: vec![1, 1, 1, 1],
            k: 2,
            unary: 1.0,
            coupling: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let mut state = vec![0; 4];
        gibbs_sweep(&model, &mut state, 1e-6, &mut rng);
        assert_eq!(state, vec![1, 1, 1, 1]);
    }

    #[test]
    fn annealing_finds_global_mode_despite_bad_init() {
        let model = Chain {
            prefs: vec![1; 20],
            k: 4,
            unary: 1.5,
            coupling: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut state: Vec<usize> = (0..20).map(|i| i % 4).collect();
        simulated_annealing(&model, &mut state, &AnnealSchedule::default(), &mut rng);
        assert_eq!(state, vec![1; 20]);
    }

    #[test]
    fn single_candidate_sites_are_skipped() {
        struct Fixed;
        impl ConditionalModel for Fixed {
            fn num_sites(&self) -> usize {
                3
            }
            fn num_candidates(&self, _s: usize) -> usize {
                1
            }
            fn local_log_potential(&self, _s: usize, _c: usize, _st: &[usize]) -> f64 {
                0.0
            }
        }
        let mut state = vec![0; 3];
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(gibbs_sweep(&Fixed, &mut state, 1.0, &mut rng), 0);
        assert_eq!(icm_sweep(&Fixed, &mut state), 0);
    }
}
