//! Tier-1 determinism contract of the parallel batch annotation engine:
//! `BatchAnnotator` output must be byte-identical across thread counts and
//! equal to the sequential `C2mn::annotate` reference on a seeded mall
//! dataset.

use indoor_semantics::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BASE_SEED: u64 = 2020;

fn mall_pipeline() -> (IndoorSpace, Dataset) {
    let mut rng = StdRng::seed_from_u64(1);
    let space = BuildingGenerator::mall().generate(&mut rng).unwrap();
    let dataset = Dataset::generate(
        "mall",
        &space,
        SimulationConfig::quick(),
        PositioningConfig::wifi_mall(),
        None,
        10,
        &mut rng,
    );
    (space, dataset)
}

#[test]
fn batch_annotation_is_thread_count_invariant_and_matches_sequential() {
    let (space, dataset) = mall_pipeline();
    let mut rng = StdRng::seed_from_u64(2);
    let model = C2mn::train(
        &space,
        &dataset.sequences,
        &C2mnConfig::quick_test(),
        &mut rng,
    )
    .expect("training data");
    let sequences: Vec<Vec<PositioningRecord>> = dataset
        .sequences
        .iter()
        .map(|s| s.positioning().collect())
        .collect();
    assert!(sequences.len() >= 4, "need a real batch");

    // Sequential reference: the documented contract — sequence i decoded
    // with an RNG seeded from sequence_seed(BASE_SEED, i).
    let sequential: Vec<Vec<MobilitySemantics>> = sequences
        .iter()
        .enumerate()
        .map(|(i, records)| {
            let mut rng = StdRng::seed_from_u64(sequence_seed(BASE_SEED, i));
            model.annotate(records, &mut rng)
        })
        .collect();

    for threads in [1usize, 2, 4] {
        let engine = BatchAnnotator::new(&model, threads, BASE_SEED);
        assert_eq!(engine.threads(), threads);
        let batch = engine.annotate_batch(&sequences);
        assert_eq!(
            batch, sequential,
            "batch output with {threads} threads diverged from sequential annotate"
        );
    }
}

#[test]
fn batch_labels_are_thread_count_invariant() {
    let (space, dataset) = mall_pipeline();
    let mut rng = StdRng::seed_from_u64(3);
    let model = C2mn::train(
        &space,
        &dataset.sequences,
        &C2mnConfig::quick_test(),
        &mut rng,
    )
    .expect("training data");
    let sequences: Vec<Vec<PositioningRecord>> = dataset
        .sequences
        .iter()
        .map(|s| s.positioning().collect())
        .collect();
    let reference = BatchAnnotator::new(&model, 1, BASE_SEED).label_batch(&sequences);
    assert_eq!(reference.len(), sequences.len());
    for (labels, records) in reference.iter().zip(&sequences) {
        assert_eq!(labels.len(), records.len());
    }
    for threads in [2usize, 4] {
        let labels = BatchAnnotator::new(&model, threads, BASE_SEED).label_batch(&sequences);
        assert_eq!(labels, reference, "threads = {threads}");
    }
}
