//! Labelled datasets and their summary statistics (Tables III and V).

use crate::{
    preprocess, LabeledSequence, PositioningConfig, PositioningSampler, PreprocessConfig,
    SimulationConfig, Simulator,
};
use ism_indoor::IndoorSpace;
use rand::Rng;

/// A labelled corpus of positioning sequences over one venue.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name (e.g. `"mall"` or `"T5mu3"`).
    pub name: String,
    /// The labelled sequences.
    pub sequences: Vec<LabeledSequence>,
}

/// Summary statistics mirroring the paper's Table III / Table V rows.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of sequences.
    pub num_sequences: usize,
    /// Total number of positioning records.
    pub num_records: usize,
    /// Average number of records per sequence.
    pub avg_records_per_sequence: f64,
    /// Average sequence duration in seconds.
    pub avg_duration: f64,
    /// Average sampling rate in Hz.
    pub avg_sampling_rate: f64,
}

impl Dataset {
    /// Generates a dataset: simulate ground truth, observe with the
    /// positioning model, then preprocess (η-split + ψ-filter).
    ///
    /// Pass `preprocess_config: None` to skip preprocessing (synthetic
    /// experiments use raw sequences; the mall profile uses the paper's
    /// η = 3 min / ψ = 30 min).
    pub fn generate<R: Rng + ?Sized>(
        name: &str,
        space: &IndoorSpace,
        sim_config: SimulationConfig,
        pos_config: PositioningConfig,
        preprocess_config: Option<PreprocessConfig>,
        num_objects: usize,
        rng: &mut R,
    ) -> Dataset {
        let sim = Simulator::new(space, sim_config);
        let trajectories = sim.simulate(num_objects, rng);
        let sampler = PositioningSampler::new(space, pos_config);
        let mut sequences = sampler.observe_all(&trajectories, rng);
        if let Some(cfg) = preprocess_config {
            sequences = preprocess(&sequences, &cfg);
        }
        sequences.retain(|s| s.records.len() >= 2);
        Dataset {
            name: name.to_string(),
            sequences,
        }
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> DatasetStats {
        let num_sequences = self.sequences.len();
        let num_records: usize = self.sequences.iter().map(|s| s.records.len()).sum();
        let total_duration: f64 = self.sequences.iter().map(|s| s.duration()).sum();
        let avg_records_per_sequence = if num_sequences > 0 {
            num_records as f64 / num_sequences as f64
        } else {
            0.0
        };
        let avg_duration = if num_sequences > 0 {
            total_duration / num_sequences as f64
        } else {
            0.0
        };
        let avg_sampling_rate = if total_duration > 0.0 {
            num_records as f64 / total_duration
        } else {
            0.0
        };
        DatasetStats {
            num_sequences,
            num_records,
            avg_records_per_sequence,
            avg_duration,
            avg_sampling_rate,
        }
    }

    /// Splits into (train, test) by sequence, taking the first
    /// `train_fraction` of a deterministic shuffle under `rng`.
    pub fn split<R: Rng + ?Sized>(
        &self,
        train_fraction: f64,
        rng: &mut R,
    ) -> (Vec<LabeledSequence>, Vec<LabeledSequence>) {
        let mut idx: Vec<usize> = (0..self.sequences.len()).collect();
        // Fisher–Yates shuffle.
        for i in (1..idx.len()).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        let cut = ((self.sequences.len() as f64) * train_fraction).round() as usize;
        let train = idx[..cut.min(idx.len())]
            .iter()
            .map(|&i| self.sequences[i].clone())
            .collect();
        let test = idx[cut.min(idx.len())..]
            .iter()
            .map(|&i| self.sequences[i].clone())
            .collect();
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_indoor::BuildingGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(1);
        let space = BuildingGenerator::small_office()
            .generate(&mut rng)
            .unwrap();
        Dataset::generate(
            "test",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(8.0, 2.0),
            None,
            6,
            &mut rng,
        )
    }

    #[test]
    fn generation_produces_sequences() {
        let d = small_dataset();
        assert!(!d.sequences.is_empty());
        let stats = d.stats();
        assert!(stats.num_records > 20);
        assert!(stats.avg_records_per_sequence >= 2.0);
        assert!(stats.avg_sampling_rate > 0.0);
    }

    #[test]
    fn stats_consistency() {
        let d = small_dataset();
        let s = d.stats();
        assert_eq!(s.num_sequences, d.sequences.len());
        let manual: usize = d.sequences.iter().map(|q| q.records.len()).sum();
        assert_eq!(s.num_records, manual);
    }

    #[test]
    fn split_partitions_sequences() {
        let d = small_dataset();
        let mut rng = StdRng::seed_from_u64(5);
        let (train, test) = d.split(0.7, &mut rng);
        assert_eq!(train.len() + test.len(), d.sequences.len());
        assert!(!train.is_empty());
    }

    #[test]
    fn empty_dataset_stats() {
        let d = Dataset {
            name: "empty".into(),
            sequences: vec![],
        };
        let s = d.stats();
        assert_eq!(s.num_sequences, 0);
        assert_eq!(s.avg_records_per_sequence, 0.0);
    }
}
