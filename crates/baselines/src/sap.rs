//! SAP: the layered semantic-annotation framework of Yan et al. [26].
//!
//! SAP first segments a sequence into stay and pass segments — the paper
//! selects the **dynamic-velocity** and **density-area** segmentation
//! algorithms, yielding SAPDV and SAPDA — then annotates each stay segment
//! with one region via an HMM whose observation probability is the overlap
//! between the segment's location distribution and the region, and each
//! pass record with its nearest region.

use ism_geometry::{Circle, Point2};
use ism_indoor::{IndoorPoint, IndoorSpace, RegionId};
use ism_mobility::{MobilityEvent, PositioningRecord};

/// Which SAP segmentation algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segmentation {
    /// Dynamic velocity: stay candidates move slower than a fraction of the
    /// sequence's average speed.
    DynamicVelocity,
    /// Density area: stay candidates have a bounded covered area within a
    /// temporal window.
    DensityArea,
}

/// SAP parameters.
#[derive(Debug, Clone, Copy)]
pub struct SapConfig {
    /// DV: stay when speed < `velocity_factor × mean sequence speed`.
    pub velocity_factor: f64,
    /// DA: temporal window length (s) around each record.
    pub window: f64,
    /// DA: maximum bounding-box diagonal (m) of the window for a stay.
    pub max_diameter: f64,
    /// Minimum duration (s) of a stay segment.
    pub min_stay_duration: f64,
    /// Scale of the expected-MIWD transition cost between consecutive stay
    /// segments in the region HMM.
    pub gamma: f64,
}

impl Default for SapConfig {
    fn default() -> Self {
        SapConfig {
            velocity_factor: 0.8,
            window: 90.0,
            max_diameter: 22.0,
            min_stay_duration: 30.0,
            gamma: 0.1,
        }
    }
}

/// The SAP annotator (shared by both segmentation flavours).
#[derive(Debug, Clone, Copy)]
pub struct Sap<'a> {
    space: &'a IndoorSpace,
    config: SapConfig,
    segmentation: Segmentation,
}

/// SAP with dynamic-velocity segmentation.
pub struct SapDv<'a>(Sap<'a>);

/// SAP with density-area segmentation.
pub struct SapDa<'a>(Sap<'a>);

impl<'a> SapDv<'a> {
    /// Creates a SAPDV annotator.
    pub fn new(space: &'a IndoorSpace, config: SapConfig) -> Self {
        SapDv(Sap {
            space,
            config,
            segmentation: Segmentation::DynamicVelocity,
        })
    }

    /// Labels every record with a (region, event) pair.
    pub fn label(&self, records: &[PositioningRecord]) -> Vec<(RegionId, MobilityEvent)> {
        self.0.label(records)
    }
}

impl<'a> SapDa<'a> {
    /// Creates a SAPDA annotator.
    pub fn new(space: &'a IndoorSpace, config: SapConfig) -> Self {
        SapDa(Sap {
            space,
            config,
            segmentation: Segmentation::DensityArea,
        })
    }

    /// Labels every record with a (region, event) pair.
    pub fn label(&self, records: &[PositioningRecord]) -> Vec<(RegionId, MobilityEvent)> {
        self.0.label(records)
    }
}

impl Sap<'_> {
    /// Stay-candidate flags according to the configured segmentation.
    fn stay_candidates(&self, records: &[PositioningRecord]) -> Vec<bool> {
        let n = records.len();
        match self.segmentation {
            Segmentation::DynamicVelocity => {
                let speeds: Vec<f64> = records
                    .windows(2)
                    .map(|w| {
                        w[0].location.xy.distance(w[1].location.xy) / (w[1].t - w[0].t).max(1e-6)
                    })
                    .collect();
                let mean = if speeds.is_empty() {
                    0.0
                } else {
                    speeds.iter().sum::<f64>() / speeds.len() as f64
                };
                let threshold = (self.config.velocity_factor * mean).max(1e-9);
                (0..n)
                    .map(|i| {
                        let left = if i > 0 { Some(speeds[i - 1]) } else { None };
                        let right = if i < speeds.len() {
                            Some(speeds[i])
                        } else {
                            None
                        };
                        match (left, right) {
                            (Some(a), Some(b)) => a.min(b) < threshold,
                            (Some(a), None) => a < threshold,
                            (None, Some(b)) => b < threshold,
                            (None, None) => true,
                        }
                    })
                    .collect()
            }
            Segmentation::DensityArea => {
                let half = self.config.window * 0.5;
                (0..n)
                    .map(|i| {
                        let (mut min, mut max) = (records[i].location.xy, records[i].location.xy);
                        for r in records.iter() {
                            if (r.t - records[i].t).abs() <= half {
                                min = Point2::new(
                                    min.x.min(r.location.xy.x),
                                    min.y.min(r.location.xy.y),
                                );
                                max = Point2::new(
                                    max.x.max(r.location.xy.x),
                                    max.y.max(r.location.xy.y),
                                );
                            }
                        }
                        min.distance(max) <= self.config.max_diameter
                    })
                    .collect()
            }
        }
    }

    fn label(&self, records: &[PositioningRecord]) -> Vec<(RegionId, MobilityEvent)> {
        let n = records.len();
        if n == 0 {
            return Vec::new();
        }
        // Segment events.
        let candidates = self.stay_candidates(records);
        let mut events = vec![MobilityEvent::Pass; n];
        let mut stay_segments: Vec<(usize, usize)> = Vec::new();
        let mut i = 0;
        while i < n {
            if !candidates[i] {
                i += 1;
                continue;
            }
            let mut j = i;
            while j + 1 < n && candidates[j + 1] {
                j += 1;
            }
            if records[j].t - records[i].t >= self.config.min_stay_duration {
                for e in events.iter_mut().take(j + 1).skip(i) {
                    *e = MobilityEvent::Stay;
                }
                stay_segments.push((i, j));
            }
            i = j + 1;
        }

        // Region annotation: Viterbi over stay segments.
        let mut regions = vec![RegionId(0); n];
        if !stay_segments.is_empty() {
            let labels = self.decode_stay_regions(records, &stay_segments);
            for ((a, b), region) in stay_segments.iter().zip(labels) {
                for r in regions.iter_mut().take(b + 1).skip(*a) {
                    *r = region;
                }
            }
        }
        for k in 0..n {
            if events[k] == MobilityEvent::Pass {
                regions[k] = self.space.nearest_region(&records[k].location);
            }
        }
        regions.into_iter().zip(events).collect()
    }

    /// Viterbi over the stay segments: observation score from the overlap
    /// of the segment's Gaussian location distribution with each candidate
    /// region, transitions from the expected MIWD between regions.
    fn decode_stay_regions(
        &self,
        records: &[PositioningRecord],
        segments: &[(usize, usize)],
    ) -> Vec<RegionId> {
        // Candidate regions and observation log-scores per segment.
        let mut cand: Vec<Vec<RegionId>> = Vec::with_capacity(segments.len());
        let mut obs: Vec<Vec<f64>> = Vec::with_capacity(segments.len());
        let mut buf = Vec::new();
        for &(a, b) in segments {
            // Gaussian summary of the segment's locations.
            let len = (b - a + 1) as f64;
            let mut mean = Point2::ZERO;
            for r in &records[a..=b] {
                mean = mean + r.location.xy;
            }
            mean = mean / len;
            let mut var = 0.0;
            for r in &records[a..=b] {
                var += r.location.xy.distance_sq(mean);
            }
            let sigma = (var / len).sqrt().max(1.0);
            let floor = records[a].location.floor;
            let center = IndoorPoint::new(floor, mean);
            // 2σ disk ≈ 95 % of the location mass.
            let circle = Circle::new(mean, 2.0 * sigma);
            self.space
                .candidate_regions(&center, 2.0 * sigma + 5.0, &mut buf);
            let scores: Vec<f64> = buf
                .iter()
                .map(|&r| {
                    let ratio = self.space.region_circle_overlap(r, floor, circle)
                        / circle.area().max(f64::EPSILON);
                    (ratio + 1e-6).ln()
                })
                .collect();
            cand.push(buf.clone());
            obs.push(scores);
        }

        // Viterbi across segments.
        let mut delta: Vec<f64> = obs[0].clone();
        let mut psi: Vec<Vec<usize>> = vec![vec![0; 0]];
        for s in 1..segments.len() {
            let mut next = vec![f64::NEG_INFINITY; cand[s].len()];
            let mut back = vec![0usize; cand[s].len()];
            for (q, &rq) in cand[s].iter().enumerate() {
                for (p, &rp) in cand[s - 1].iter().enumerate() {
                    let d = self.space.region_expected_miwd(rp, rq);
                    let trans = if d.is_finite() {
                        -self.config.gamma * d
                    } else {
                        -1e6
                    };
                    let v = delta[p] + trans;
                    if v > next[q] {
                        next[q] = v;
                        back[q] = p;
                    }
                }
                next[q] += obs[s][q];
            }
            delta = next;
            psi.push(back);
        }
        let mut best = delta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut out = vec![RegionId(0); segments.len()];
        for s in (0..segments.len()).rev() {
            out[s] = cand[s][best];
            if s > 0 {
                best = psi[s][best];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_indoor::BuildingGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn venue() -> IndoorSpace {
        BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap()
    }

    fn stay_then_walk(space: &IndoorSpace) -> Vec<PositioningRecord> {
        let c = space.partitions()[4].rect.center();
        let mut recs: Vec<PositioningRecord> = (0..6)
            .map(|i| {
                PositioningRecord::new(
                    IndoorPoint::new(0, Point2::new(c.x + 0.2 * i as f64, c.y)),
                    15.0 * i as f64,
                )
            })
            .collect();
        // Fast walk away.
        for i in 0..4 {
            recs.push(PositioningRecord::new(
                IndoorPoint::new(0, Point2::new(c.x + 8.0 * (i + 1) as f64, c.y)),
                90.0 + 5.0 * i as f64,
            ));
        }
        recs
    }

    #[test]
    fn sapdv_separates_stay_and_pass() {
        let space = venue();
        let sap = SapDv::new(&space, SapConfig::default());
        let recs = stay_then_walk(&space);
        let labels = sap.label(&recs);
        assert_eq!(labels.len(), recs.len());
        assert_eq!(labels[2].1, MobilityEvent::Stay);
        assert_eq!(labels[recs.len() - 1].1, MobilityEvent::Pass);
        // Stay region = the region containing the cluster.
        let truth = space.partitions()[4].region;
        assert_eq!(labels[2].0, truth);
    }

    #[test]
    fn sapda_separates_stay_and_pass() {
        let space = venue();
        let sap = SapDa::new(&space, SapConfig::default());
        let recs = stay_then_walk(&space);
        let labels = sap.label(&recs);
        assert_eq!(labels[1].1, MobilityEvent::Stay);
        assert_eq!(labels[recs.len() - 1].1, MobilityEvent::Pass);
    }

    #[test]
    fn all_fast_is_all_pass() {
        let space = venue();
        let sap = SapDa::new(&space, SapConfig::default());
        let c = space.partitions()[2].rect.center();
        let recs: Vec<PositioningRecord> = (0..5)
            .map(|i| {
                PositioningRecord::new(
                    IndoorPoint::new(0, Point2::new(c.x + 10.0 * i as f64, c.y)),
                    6.0 * i as f64,
                )
            })
            .collect();
        let labels = sap.label(&recs);
        assert!(labels.iter().all(|l| l.1 == MobilityEvent::Pass));
        // Pass records use nearest regions.
        for (lab, rec) in labels.iter().zip(&recs) {
            assert_eq!(lab.0, space.nearest_region(&rec.location));
        }
    }

    #[test]
    fn empty_input() {
        let space = venue();
        assert!(SapDv::new(&space, SapConfig::default())
            .label(&[])
            .is_empty());
        assert!(SapDa::new(&space, SapConfig::default())
            .label(&[])
            .is_empty());
    }
}
