//! The *merge* half of label-and-merge (Figure 2 of the paper).

use crate::{MobilityEvent, MobilitySemantics, TimePeriod};
use ism_indoor::RegionId;

/// Merges record-level (region, event) labels into an m-semantics sequence.
///
/// Consecutive records sharing both labels are merged into one
/// [`MobilitySemantics`] spanning `[t_first, t_last]`, exactly as in the
/// paper's Figure 2 (single records yield degenerate periods `[t, t]`).
///
/// `times` and `labels` must have equal length and `times` must be
/// non-decreasing.
pub fn merge_labels(times: &[f64], labels: &[(RegionId, MobilityEvent)]) -> Vec<MobilitySemantics> {
    assert_eq!(times.len(), labels.len(), "times/labels length mismatch");
    let mut out = Vec::new();
    let mut i = 0;
    while i < times.len() {
        let (region, event) = labels[i];
        let start = times[i];
        let mut j = i;
        while j + 1 < times.len() && labels[j + 1] == (region, event) {
            j += 1;
        }
        out.push(MobilitySemantics {
            region,
            period: TimePeriod::new(start, times[j]),
            event,
        });
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use MobilityEvent::{Pass, Stay};

    fn r(i: u32) -> RegionId {
        RegionId(i)
    }

    #[test]
    fn empty_input() {
        assert!(merge_labels(&[], &[]).is_empty());
    }

    #[test]
    fn paper_figure_2_shape() {
        // pass, stay…stay, pass, pass…pass, pass — as in Figure 2.
        let times: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let labels = vec![
            (r(0), Pass), // rA
            (r(3), Stay), // rD
            (r(3), Stay),
            (r(3), Pass),
            (r(2), Pass), // rC
            (r(2), Pass),
            (r(1), Pass), // rB
        ];
        let ms = merge_labels(&times, &labels);
        assert_eq!(ms.len(), 5);
        assert_eq!(ms[0].period, TimePeriod::new(0.0, 0.0));
        assert_eq!((ms[1].region, ms[1].event), (r(3), Stay));
        assert_eq!(ms[1].period, TimePeriod::new(1.0, 2.0));
        assert_eq!((ms[2].region, ms[2].event), (r(3), Pass));
        assert_eq!((ms[4].region, ms[4].event), (r(1), Pass));
    }

    #[test]
    fn all_same_label_merges_to_one() {
        let times = [1.0, 2.0, 9.0];
        let labels = [(r(5), Stay); 3];
        let ms = merge_labels(&times, &labels);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].period, TimePeriod::new(1.0, 9.0));
    }

    #[test]
    fn region_change_with_same_event_splits() {
        let times = [0.0, 1.0];
        let labels = [(r(1), Pass), (r(2), Pass)];
        assert_eq!(merge_labels(&times, &labels).len(), 2);
    }

    #[test]
    fn event_change_with_same_region_splits() {
        let times = [0.0, 1.0];
        let labels = [(r(1), Pass), (r(1), Stay)];
        assert_eq!(merge_labels(&times, &labels).len(), 2);
    }

    #[test]
    fn periods_partition_the_time_axis() {
        let times: Vec<f64> = (0..50).map(|i| i as f64 * 3.0).collect();
        let labels: Vec<(RegionId, MobilityEvent)> = (0..50)
            .map(|i| (r(i / 7), if i % 5 < 3 { Stay } else { Pass }))
            .collect();
        let ms = merge_labels(&times, &labels);
        // Consecutive periods never overlap and jointly cover all stamps.
        for w in ms.windows(2) {
            assert!(w[0].period.end < w[1].period.start);
        }
        let covered: usize = times
            .iter()
            .filter(|t| ms.iter().any(|m| m.period.contains(**t)))
            .count();
        assert_eq!(covered, times.len());
    }
}
