//! Pool observability counters.
//!
//! A persistent pool's health is invisible from the outside — threads are
//! created once and sleep between calls — so the pool keeps cheap lifetime
//! counters (relaxed atomics, one `fetch_add` per event) and exposes them
//! as [`PoolStats`] snapshots. The counters answer the operational
//! questions: *did this call fan out or run inline?* *how many items were
//! claimed off the shared counter?* *are workers parking and waking as
//! expected?* — and, for tests, *were any threads created after pool
//! construction?* (they must not be: `threads_spawned` is fixed at
//! construction and every steady-state path runs on those workers).

use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time snapshot of a pool's lifetime counters.
///
/// Counters are shared by every clone of the pool (clones and
/// [`capped`](crate::WorkerPool::capped) views are handles onto one set of
/// workers), accumulate from pool construction, and never reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// OS threads created for this pool — exactly `threads - 1`, created
    /// once at construction (the caller of each blocking call is the
    /// remaining participant). Steady-state calls never change this.
    pub threads_spawned: usize,
    /// Blocking calls (`run` / `run_with` / `map_reduce`) that fanned out
    /// to the persistent workers.
    pub fanout_calls: u64,
    /// Blocking calls that ran entirely on the calling thread (single
    /// worker, capped view, or fewer than two items).
    pub inline_calls: u64,
    /// Items claimed off fan-out calls' shared claim counters, across all
    /// participants (workers and callers). Inline calls don't count here.
    pub items_claimed: u64,
    /// Fire-and-forget tasks executed by workers
    /// ([`try_spawn`](crate::WorkerPool::try_spawn) — the pipelined-ingest
    /// path).
    pub async_tasks: u64,
    /// Times a parked worker woke from its condvar (including spurious
    /// wakeups).
    pub idle_wakeups: u64,
}

impl PoolStats {
    /// Total units of work executed on the pool: claimed fan-out items
    /// plus fire-and-forget tasks.
    pub fn tasks_executed(&self) -> u64 {
        self.items_claimed + self.async_tasks
    }
}

/// The live cells behind [`PoolStats`], shared between the pool handle and
/// every worker thread.
#[derive(Debug, Default)]
pub(crate) struct StatsCells {
    pub(crate) fanout_calls: AtomicU64,
    pub(crate) inline_calls: AtomicU64,
    pub(crate) items_claimed: AtomicU64,
    pub(crate) async_tasks: AtomicU64,
    pub(crate) idle_wakeups: AtomicU64,
}

impl StatsCells {
    pub(crate) fn snapshot(&self, threads_spawned: usize) -> PoolStats {
        PoolStats {
            threads_spawned,
            fanout_calls: self.fanout_calls.load(Ordering::Relaxed),
            inline_calls: self.inline_calls.load(Ordering::Relaxed),
            items_claimed: self.items_claimed.load(Ordering::Relaxed),
            async_tasks: self.async_tasks.load(Ordering::Relaxed),
            idle_wakeups: self.idle_wakeups.load(Ordering::Relaxed),
        }
    }
}
