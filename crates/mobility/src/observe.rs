//! Positioning-error model: ground truth → noisy positioning sequences.
//!
//! Implements the paper's synthetic observation protocol (§V-C): after each
//! report the object stays silent for at most `T` seconds; the location
//! estimate falls uniformly within `μ` metres of the true location; with
//! small probabilities the report carries a false floor (±1–2 floors) or is
//! an outlier at 2.5 μ – 10 μ. A Wi-Fi-like profile reproduces the real
//! dataset's error band (2–25 m) and ≈1/15 Hz sampling rate.

use crate::{LabeledRecord, LabeledSequence, PositioningRecord, Trajectory};
use ism_geometry::Point2;
use ism_indoor::{IndoorPoint, IndoorSpace};
use rand::Rng;

/// Parameters of the positioning-observation model.
#[derive(Debug, Clone, Copy)]
pub struct PositioningConfig {
    /// Maximum positioning period `T` in seconds: the silence after a report
    /// is uniform in `[min_period, max_period]`.
    pub max_period: f64,
    /// Minimum silence between reports (≥ 1 s, the truth sampling rate).
    pub min_period: f64,
    /// Positioning error factor `μ` in metres: regular estimates fall
    /// uniformly within `μ` of the true location.
    pub error: f64,
    /// Probability of a false floor value (paper: 3 %).
    pub false_floor_prob: f64,
    /// Probability of a location outlier at 2.5 μ – 10 μ (paper: 3 %).
    pub outlier_prob: f64,
    /// Cap applied to outlier distances (keeps Wi-Fi profile inside the
    /// paper's reported 2–25 m band); `f64::INFINITY` disables the cap.
    pub max_error: f64,
}

impl PositioningConfig {
    /// The paper's synthetic grid point `(T, μ)`.
    pub fn synthetic(max_period: f64, error: f64) -> Self {
        PositioningConfig {
            max_period,
            min_period: 1.0,
            error,
            false_floor_prob: 0.03,
            outlier_prob: 0.03,
            max_error: f64::INFINITY,
        }
    }

    /// Wi-Fi-like profile matching the real dataset's statistics
    /// (Table III: errors 2–25 m, sampling ≈ 1/15 Hz).
    pub fn wifi_mall() -> Self {
        PositioningConfig {
            max_period: 25.0,
            min_period: 6.0,
            error: 8.0,
            false_floor_prob: 0.03,
            outlier_prob: 0.03,
            max_error: 25.0,
        }
    }
}

/// Samples noisy positioning sequences from ground-truth trajectories.
#[derive(Debug, Clone, Copy)]
pub struct PositioningSampler<'a> {
    space: &'a IndoorSpace,
    config: PositioningConfig,
}

impl<'a> PositioningSampler<'a> {
    /// Creates a sampler for the given venue.
    pub fn new(space: &'a IndoorSpace, config: PositioningConfig) -> Self {
        PositioningSampler { space, config }
    }

    /// The observation configuration.
    pub fn config(&self) -> &PositioningConfig {
        &self.config
    }

    /// Observes one trajectory, producing a labelled positioning sequence.
    ///
    /// Each emitted record pairs the noisy observation with the ground-truth
    /// (region, event) labels at the observation instant.
    pub fn observe<R: Rng + ?Sized>(&self, traj: &Trajectory, rng: &mut R) -> LabeledSequence {
        let c = &self.config;
        let mut records = Vec::new();
        if traj.points.is_empty() {
            return LabeledSequence {
                object_id: traj.object_id,
                records,
            };
        }
        let t0 = traj.points[0].t;
        let mut idx = 0usize;
        // First report happens within one period of appearing.
        let mut t_next = t0 + rng.random::<f64>() * c.max_period.max(c.min_period);
        while idx < traj.points.len() {
            // Advance to the truth point at/after t_next (1 Hz grid).
            let offset = (t_next - t0).round().max(0.0) as usize;
            if offset >= traj.points.len() {
                break;
            }
            idx = offset;
            let truth = &traj.points[idx];

            // Noisy location estimate.
            let distance = if rng.random::<f64>() < c.outlier_prob {
                (2.5 + rng.random::<f64>() * 7.5) * c.error
            } else {
                rng.random::<f64>() * c.error
            }
            .min(c.max_error);
            let angle = rng.random::<f64>() * std::f64::consts::TAU;
            let noise = Point2::new(angle.cos(), angle.sin()) * distance;

            let floor = if rng.random::<f64>() < c.false_floor_prob {
                let delta = if rng.random::<f64>() < 0.5 { 1 } else { 2 };
                let up = rng.random::<f64>() < 0.5;
                let f = truth.location.floor as i32 + if up { delta } else { -delta };
                self.space.clamp_floor(f.clamp(0, u16::MAX as i32) as u16)
            } else {
                truth.location.floor
            };

            records.push(LabeledRecord {
                record: PositioningRecord::new(
                    IndoorPoint::new(floor, truth.location.xy + noise),
                    truth.t,
                ),
                region: truth.region,
                event: truth.event,
            });

            let gap = c.min_period + rng.random::<f64>() * (c.max_period - c.min_period).max(0.0);
            t_next = truth.t + gap;
        }
        LabeledSequence {
            object_id: traj.object_id,
            records,
        }
    }

    /// Observes a batch of trajectories.
    pub fn observe_all<R: Rng + ?Sized>(
        &self,
        trajectories: &[Trajectory],
        rng: &mut R,
    ) -> Vec<LabeledSequence> {
        trajectories.iter().map(|t| self.observe(t, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimulationConfig, Simulator};
    use ism_indoor::BuildingGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (IndoorSpace, Vec<Trajectory>) {
        let space = BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let trajs = Simulator::new(&space, SimulationConfig::quick()).simulate(4, &mut rng);
        (space, trajs)
    }

    #[test]
    fn periods_respect_bounds() {
        let (space, trajs) = setup();
        let sampler = PositioningSampler::new(&space, PositioningConfig::synthetic(10.0, 3.0));
        let mut rng = StdRng::seed_from_u64(3);
        for traj in &trajs {
            let seq = sampler.observe(traj, &mut rng);
            for w in seq.records.windows(2) {
                let gap = w[1].record.t - w[0].record.t;
                assert!(gap >= 0.5, "gap {gap}");
                assert!(gap <= 10.0 + 1.0 + 1e-6, "gap {gap}"); // + rounding slack
            }
        }
    }

    #[test]
    fn error_stays_within_outlier_bound() {
        let (space, trajs) = setup();
        let mu = 5.0;
        let sampler = PositioningSampler::new(&space, PositioningConfig::synthetic(5.0, mu));
        let mut rng = StdRng::seed_from_u64(4);
        let mut regular = 0usize;
        let mut outliers = 0usize;
        for traj in &trajs {
            let seq = sampler.observe(traj, &mut rng);
            // Compare against the truth at the same timestamp.
            for rec in &seq.records {
                let truth = traj
                    .points
                    .iter()
                    .find(|p| (p.t - rec.record.t).abs() < 0.5)
                    .unwrap();
                let err = truth.location.xy.distance(rec.record.location.xy);
                assert!(err <= 10.0 * mu + 1e-9, "err {err}");
                if err > mu + 1e-9 {
                    outliers += 1;
                } else {
                    regular += 1;
                }
            }
        }
        assert!(regular > 0);
        // ~3 % outliers: loose sanity band.
        let frac = outliers as f64 / (regular + outliers) as f64;
        assert!(frac < 0.15, "outlier fraction {frac}");
    }

    #[test]
    fn labels_match_truth() {
        let (space, trajs) = setup();
        let sampler = PositioningSampler::new(&space, PositioningConfig::synthetic(8.0, 3.0));
        let mut rng = StdRng::seed_from_u64(5);
        let seq = sampler.observe(&trajs[0], &mut rng);
        assert!(!seq.records.is_empty());
        for rec in &seq.records {
            let truth = trajs[0]
                .points
                .iter()
                .find(|p| (p.t - rec.record.t).abs() < 0.5)
                .unwrap();
            assert_eq!(rec.region, truth.region);
            assert_eq!(rec.event, truth.event);
        }
    }

    #[test]
    fn false_floors_are_clamped() {
        let (space, trajs) = setup(); // single-floor venue
        let cfg = PositioningConfig {
            false_floor_prob: 1.0,
            ..PositioningConfig::synthetic(5.0, 3.0)
        };
        let sampler = PositioningSampler::new(&space, cfg);
        let mut rng = StdRng::seed_from_u64(6);
        let seq = sampler.observe(&trajs[0], &mut rng);
        for rec in &seq.records {
            assert!(rec.record.location.floor < space.floor_count());
        }
    }

    #[test]
    fn wifi_profile_caps_error() {
        let (space, trajs) = setup();
        let sampler = PositioningSampler::new(&space, PositioningConfig::wifi_mall());
        let mut rng = StdRng::seed_from_u64(7);
        for traj in &trajs {
            let seq = sampler.observe(traj, &mut rng);
            for rec in &seq.records {
                let truth = traj
                    .points
                    .iter()
                    .find(|p| (p.t - rec.record.t).abs() < 0.5)
                    .unwrap();
                let err = truth.location.xy.distance(rec.record.location.xy);
                assert!(err <= 25.0 + 1e-9, "err {err}");
            }
        }
    }
}
