//! Criterion micro-benchmarks of the hot kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use ism_cluster::{StDbscan, StDbscanParams, StPoint};
use ism_geometry::{circle_rect_intersection_area, Circle, Point2, Rect};
use ism_indoor::{BuildingGenerator, IndoorPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_geometry(c: &mut Criterion) {
    let circle = Circle::new(Point2::new(1.0, 1.0), 1.5);
    let rect = Rect::from_origin_size(0.0, 0.0, 1.2, 0.9);
    c.bench_function("geometry/circle_rect_area", |b| {
        b.iter(|| circle_rect_intersection_area(black_box(circle), black_box(&rect)))
    });
}

fn bench_miwd(c: &mut Criterion) {
    let space = BuildingGenerator::mall()
        .generate(&mut StdRng::seed_from_u64(1))
        .unwrap();
    let a = IndoorPoint::new(0, Point2::new(20.0, 5.0));
    let b = IndoorPoint::new(3, Point2::new(120.0, 30.0));
    c.bench_function("miwd/cross_floor_point_pair", |bch| {
        bch.iter(|| space.miwd(black_box(&a), black_box(&b)))
    });
    let r1 = space.regions()[10].id;
    let r2 = space.regions()[150].id;
    // Warm the cache once, then measure the cached path (the hot case in
    // feature extraction).
    space.region_expected_miwd(r1, r2);
    c.bench_function("miwd/region_expected_cached", |bch| {
        bch.iter(|| space.region_expected_miwd(black_box(r1), black_box(r2)))
    });
}

fn bench_stdbscan(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let pts: Vec<StPoint> = (0..200)
        .map(|i| {
            StPoint::new(
                Point2::new(rng.random_range(0.0..60.0), rng.random_range(0.0..30.0)),
                i as f64 * 10.0,
                0,
            )
        })
        .collect();
    let alg = StDbscan::new(StDbscanParams::default());
    c.bench_function("stdbscan/200_records", |b| {
        b.iter(|| alg.run(black_box(&pts)))
    });
}

fn bench_features(c: &mut Criterion) {
    use ism_c2mn::{C2mnConfig, CoupledNetwork, SequenceContext, Weights, NUM_FEATURES};
    use ism_mobility::{MobilityEvent, PositioningRecord};
    let space = BuildingGenerator::mall()
        .generate(&mut StdRng::seed_from_u64(1))
        .unwrap();
    let config = C2mnConfig::quick_test();
    let mut rng = StdRng::seed_from_u64(3);
    let mut xy = Point2::new(40.0, 15.0);
    let records: Vec<PositioningRecord> = (0..100)
        .map(|i| {
            xy = Point2::new(
                (xy.x + rng.random_range(-4.0..4.0)).clamp(5.0, 140.0),
                (xy.y + rng.random_range(-2.0..2.0)).clamp(1.0, 35.0),
            );
            PositioningRecord::new(IndoorPoint::new(0, xy), 10.0 * i as f64)
        })
        .collect();
    c.bench_function("features/context_build_100_records", |b| {
        b.iter(|| SequenceContext::build(&space, &config, black_box(&records), &[]))
    });
    let ctx = SequenceContext::build(&space, &config, &records, &[]);
    let weights = Weights::uniform(1.0);
    let net = CoupledNetwork::new(&ctx, &weights);
    let regions: Vec<_> = (0..ctx.len()).map(|i| ctx.candidates[i][0]).collect();
    let events = vec![MobilityEvent::Stay; ctx.len()];
    c.bench_function("features/region_local_features", |b| {
        let mut out = [0.0; NUM_FEATURES];
        b.iter(|| {
            net.region_local_features(
                black_box(50),
                regions[50],
                |k| regions[k],
                |k| events[k],
                &mut out,
            );
            out
        })
    });
    c.bench_function("features/total_energy_100_records", |b| {
        b.iter(|| net.total_energy(black_box(&regions), black_box(&events)))
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_geometry, bench_miwd, bench_stdbscan, bench_features
}
criterion_main!(benches);
