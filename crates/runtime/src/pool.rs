//! The persistent worker pool.
//!
//! [`WorkerPool::new`] creates its OS threads **once**; they live until the
//! last pool handle drops and sleep on per-worker condvars between tasks.
//! Work reaches them through per-worker injection queues:
//!
//! * **Blocking fan-out** ([`WorkerPool::run`] / [`run_with`] /
//!   [`map_reduce`]) — the call's body (a claim loop over a shared atomic
//!   item counter) is boxed, its caller-frame lifetime erased, and a handle
//!   pushed to up to `threads - 1` workers; the calling thread participates
//!   as the remaining worker and blocks on a completion latch until every
//!   participant has left the loop. Borrowed captures stay sound because a
//!   participant can only touch them while it holds a participation token,
//!   and the caller does not return while any token is held.
//! * **Fire-and-forget** ([`WorkerPool::try_spawn`]) — a `'static` task is
//!   handed to an idle worker if one exists (the pipelined-ingest path);
//!   the caller is never blocked and never participates.
//!
//! [`run_with`]: WorkerPool::run_with
//! [`map_reduce`]: WorkerPool::map_reduce

use crate::stats::{PoolStats, StatsCells};
use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::fmt;
use std::mem::{self, MaybeUninit};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use parking_lot::{Condvar, Mutex};

/// A fire-and-forget task for [`WorkerPool::try_spawn`].
pub type AsyncTask = Box<dyn FnOnce() + Send + 'static>;

/// One unit of work in a worker's injection queue.
enum Task {
    /// Participate in a blocking fan-out call (claim items until none are
    /// left).
    Call(Arc<ErasedCall>),
    /// Run one fire-and-forget task.
    Async(AsyncTask),
    /// Exit the worker loop (sent once per worker when the pool drops).
    Shutdown,
}

/// A fan-out call body with its caller-frame lifetime erased to `'static`.
///
/// The `Arc` keeps the closure object itself alive for arbitrarily late
/// invocations; whether its *captured references* may be dereferenced is
/// governed by the participation-token protocol (see the safety comment in
/// [`WorkerPool::fan_out`]).
struct ErasedCall {
    body: Box<dyn Fn() + Send + Sync + 'static>,
}

/// Per-call shared state: the claim counter and the completion latch.
struct CallState {
    num_items: usize,
    /// Next unclaimed item index. Claims `>= num_items` are no-ops; a
    /// panicking participant forces it to `num_items` so others stop.
    next: AtomicUsize,
    /// Participation tokens currently held. A participant `enter`s before
    /// its first claim and `exit`s after its last caller-frame access, so
    /// the caller may only return once this reaches zero.
    inflight: AtomicUsize,
    done: Mutex<()>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl CallState {
    fn new(num_items: usize) -> Self {
        CallState {
            num_items,
            next: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn enter(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    fn exit(&self) {
        // Release pairs with the Acquire load in `wait_quiescent`: every
        // slot/accumulator write of this participant happens-before the
        // caller observing inflight == 0. Notify under the latch mutex so
        // a caller between its predicate check and `wait` cannot miss it.
        if self.inflight.fetch_sub(1, Ordering::Release) == 1 {
            let _guard = self.done.lock();
            self.done_cv.notify_all();
        }
    }

    fn wait_quiescent(&self) {
        let mut guard = self.done.lock();
        while self.inflight.load(Ordering::Acquire) != 0 {
            self.done_cv.wait(&mut guard);
        }
    }

    /// Records the first panic payload and stops further claims.
    fn abort(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock();
        slot.get_or_insert(payload);
        self.next.fetch_max(self.num_items, Ordering::Relaxed);
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().take()
    }
}

/// A write-once result cell vector: one slot per item, written lock-free
/// by whichever participant claims the item (exactly once, guaranteed by
/// the claim counter) and read by the caller after quiescence.
struct OnceSlots<T> {
    slots: Box<[Slot<T>]>,
}

struct Slot<T> {
    set: AtomicBool,
    value: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: distinct slots are written by distinct participants (the claim
// counter hands out each index exactly once), and a slot's value is only
// read after its `set` flag is observed with Acquire ordering.
unsafe impl<T: Send> Sync for OnceSlots<T> {}

impl<T> OnceSlots<T> {
    fn new(num_items: usize) -> Self {
        OnceSlots {
            slots: (0..num_items)
                .map(|_| Slot {
                    set: AtomicBool::new(false),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
        }
    }

    /// Writes slot `i`.
    ///
    /// # Safety
    /// Each index must be written at most once — guaranteed by the
    /// exactly-once claim counter.
    // SAFETY: the claim counter in `run_with`'s participant body hands
    // each index to exactly one participant, so the caller contract
    // (one write per slot) holds at every call site in this crate.
    // analyzer: allow(lib-panic) `i` comes from the claim counter, which stays below `slots.len()`
    unsafe fn set(&self, i: usize, value: T) {
        let slot = &self.slots[i];
        debug_assert!(!slot.set.load(Ordering::Relaxed), "slot {i} written twice");
        // SAFETY: this participant owns index `i` exclusively (caller
        // contract above), so no concurrent access touches this cell;
        // readers wait for the Release store of `set` below.
        unsafe { (*slot.value.get()).write(value) };
        slot.set.store(true, Ordering::Release);
    }

    /// Consumes the vector, returning all values in item order. Panics if
    /// any slot was never written (only reachable after a job panicked,
    /// in which case the caller resumes that panic instead).
    fn into_vec(mut self) -> Vec<T> {
        let slots = mem::take(&mut self.slots);
        slots
            .into_vec()
            .into_iter()
            .map(|slot| {
                assert!(
                    slot.set.load(Ordering::Acquire),
                    "a participant filled every claimed slot"
                );
                // SAFETY: the flag says the value was written.
                unsafe { slot.value.into_inner().assume_init() }
            })
            .collect()
    }
}

impl<T> Drop for OnceSlots<T> {
    fn drop(&mut self) {
        // Only reached with slots still present when a panic unwound the
        // call: drop the values that were written, skip the rest.
        for slot in self.slots.iter_mut() {
            if *slot.set.get_mut() {
                // SAFETY: the flag says the value was written.
                unsafe { slot.value.get_mut().assume_init_drop() };
            }
        }
    }
}

/// State shared between one worker thread and the pool handle.
struct WorkerShared {
    queue: Mutex<VecDeque<Task>>,
    signal: Condvar,
    /// True while the worker is parked (or about to park) on an empty
    /// queue. `try_spawn` claims it with a compare-exchange so bursts of
    /// fire-and-forget tasks spread over distinct idle workers.
    idle: AtomicBool,
}

struct WorkerHandle {
    shared: Arc<WorkerShared>,
    join: Option<thread::JoinHandle<()>>,
}

impl WorkerHandle {
    fn push(&self, task: Task) {
        let mut queue = self.shared.queue.lock();
        queue.push_back(task);
        drop(queue);
        self.shared.signal.notify_one();
    }
}

fn worker_loop(shared: Arc<WorkerShared>, stats: Arc<StatsCells>) {
    loop {
        let task = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(task) = queue.pop_front() {
                    shared.idle.store(false, Ordering::Release);
                    break task;
                }
                shared.idle.store(true, Ordering::Release);
                shared.signal.wait(&mut queue);
                stats.idle_wakeups.fetch_add(1, Ordering::Relaxed);
            }
        };
        match task {
            // The body catches its own job panics; a post-call invocation
            // degenerates to one failed claim against Arc-owned state.
            Task::Call(call) => (call.body)(),
            Task::Async(task) => {
                stats.async_tasks.fetch_add(1, Ordering::Relaxed);
                // A panicking task must not kill the persistent worker.
                let _ = catch_unwind(AssertUnwindSafe(task));
            }
            Task::Shutdown => break,
        }
    }
}

/// The pool's threads and counters; dropping the last handle shuts the
/// workers down.
struct PoolCore {
    workers: Vec<WorkerHandle>,
    stats: Arc<StatsCells>,
}

impl PoolCore {
    /// Hands a fan-out call to `helpers` workers, idle ones first.
    // analyzer: allow(lib-panic) `order` enumerates `0..workers.len()`, so every `w` is in bounds
    fn dispatch_call(&self, call: &Arc<ErasedCall>, helpers: usize) {
        let mut order: Vec<usize> = (0..self.workers.len()).collect();
        // Stable sort: idle workers first, original order within groups.
        order.sort_by_key(|&w| !self.workers[w].shared.idle.load(Ordering::Acquire));
        for &w in order.iter().take(helpers) {
            self.workers[w].push(Task::Call(Arc::clone(call)));
        }
    }
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        for worker in &self.workers {
            worker.push(Task::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(join) = worker.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// A fixed-size pool of **persistent** worker threads.
///
/// `new(threads)` creates `threads - 1` OS threads once (the thread
/// calling a blocking method is always the remaining participant, so
/// `new(1)` creates none); they sleep on condvars between tasks and live
/// until the last handle drops. Cloning (and [`capped`](WorkerPool::capped)
/// views) share the same workers — a clone is a cheap `Arc` handle, not a
/// second set of threads.
///
/// The blocking methods keep the scoped-pool contract they always had:
/// item-order results, dynamic claiming off a shared atomic counter, and
/// jobs that may borrow from the caller's stack — the borrow is protected
/// by a per-call completion latch rather than thread join.
pub struct WorkerPool {
    /// This handle's participant limit (`capped` lowers it; the shared
    /// core may have more workers than this handle will use).
    threads: usize,
    core: Arc<PoolCore>,
}

impl Clone for WorkerPool {
    fn clone(&self) -> Self {
        WorkerPool {
            threads: self.threads,
            core: Arc::clone(&self.core),
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("persistent_workers", &self.core.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool running jobs on `threads` workers (clamped to ≥ 1):
    /// `threads - 1` persistent OS threads plus the calling thread of each
    /// blocking call. The threads are created here, once, and never again.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let stats = Arc::new(StatsCells::default());
        let workers = (0..threads - 1)
            .map(|w| {
                let shared = Arc::new(WorkerShared {
                    queue: Mutex::new(VecDeque::new()),
                    signal: Condvar::new(),
                    idle: AtomicBool::new(true),
                });
                let thread_shared = Arc::clone(&shared);
                let thread_stats = Arc::clone(&stats);
                let join = thread::Builder::new()
                    .name(format!("ism-worker-{w}"))
                    .spawn(move || worker_loop(thread_shared, thread_stats))
                    // analyzer: allow(lib-panic) thread-spawn failure at pool construction is unrecoverable by design
                    .expect("spawn persistent worker");
                WorkerHandle {
                    shared,
                    join: Some(join),
                }
            })
            .collect();
        WorkerPool {
            threads,
            core: Arc::new(PoolCore { workers, stats }),
        }
    }

    /// Creates a pool sized to the machine's available parallelism
    /// (falling back to 1 when it cannot be queried).
    pub fn with_available_parallelism() -> Self {
        let threads = thread::available_parallelism().map_or(1, |n| n.get());
        WorkerPool::new(threads)
    }

    /// The configured worker count (participants per blocking call).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A view of this pool limited to at most `max_workers` participants
    /// (clamped to ≥ 1), **sharing the same persistent workers** — no
    /// threads are created or destroyed.
    ///
    /// The dispatch heuristic behind batched query fan-out: callers that
    /// can estimate how much work a call carries cap the participant count
    /// so that small calls run inline (`capped(1)` never touches the
    /// workers) instead of paying a dispatch that costs more than the work
    /// it distributes. Capping never changes results — only which
    /// participants run the items.
    pub fn capped(&self, max_workers: usize) -> WorkerPool {
        WorkerPool {
            threads: self.threads.min(max_workers.max(1)),
            core: Arc::clone(&self.core),
        }
    }

    /// A snapshot of the pool's lifetime counters (shared by all clones
    /// and capped views of this pool).
    pub fn stats(&self) -> PoolStats {
        self.core.stats.snapshot(self.core.workers.len())
    }

    /// Persistent workers this handle may use that are currently parked.
    // analyzer: allow(lib-panic) `helper_limit()` is clamped to `workers.len()` at construction
    pub fn idle_workers(&self) -> usize {
        self.core.workers[..self.helper_limit()]
            .iter()
            .filter(|w| w.shared.idle.load(Ordering::Acquire))
            .count()
    }

    /// Hands a fire-and-forget task to an idle persistent worker, if this
    /// handle has one; otherwise returns the task so the caller can run it
    /// itself (or buffer it). Never blocks, never runs the task inline.
    ///
    /// This is the pipelined-ingest path: decode work overlaps arrival on
    /// workers that would otherwise sleep, and when none is free the
    /// caller keeps its bounded-buffer backpressure behaviour.
    // analyzer: allow(lib-panic) `helper_limit()` is clamped to `workers.len()` at construction
    pub fn try_spawn(&self, task: AsyncTask) -> Result<(), AsyncTask> {
        for worker in &self.core.workers[..self.helper_limit()] {
            // Claim the idle flag so a burst of tasks spreads over
            // distinct workers instead of stacking on the first.
            if worker
                .shared
                .idle
                .compare_exchange(true, false, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                worker.push(Task::Async(task));
                return Ok(());
            }
        }
        Err(task)
    }

    /// Runs `job(index)` for every `index in 0..num_items`, returning the
    /// outputs in item order.
    pub fn run<T, F>(&self, num_items: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_with(num_items, || (), |(), i| job(i))
    }

    /// Runs `job(&mut state, index)` for every `index in 0..num_items`,
    /// returning the outputs in item order.
    ///
    /// Each participant builds one `state` via `init` when it claims its
    /// first item and reuses it across every item it processes — the hook
    /// for per-worker scratch buffers. Items are claimed dynamically
    /// (atomic counter), so uneven per-item costs balance across
    /// participants; output order is still the item order. Results land in
    /// write-once cells — the happy path takes no lock per item.
    pub fn run_with<S, T, I, F>(&self, num_items: usize, init: I, job: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let helpers = self.helpers_for(num_items);
        if helpers == 0 {
            self.core.stats.inline_calls.fetch_add(1, Ordering::Relaxed);
            let mut state = init();
            return (0..num_items).map(|i| job(&mut state, i)).collect();
        }
        self.core.stats.fanout_calls.fetch_add(1, Ordering::Relaxed);

        let slots = OnceSlots::new(num_items);
        let call = Arc::new(CallState::new(num_items));
        let body = {
            let call = Arc::clone(&call);
            let stats = Arc::clone(&self.core.stats);
            let slots = &slots;
            let init = &init;
            let job = &job;
            move || {
                call.enter();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut state: Option<S> = None;
                    loop {
                        let i = call.next.fetch_add(1, Ordering::Relaxed);
                        if i >= call.num_items {
                            break;
                        }
                        stats.items_claimed.fetch_add(1, Ordering::Relaxed);
                        let state = state.get_or_insert_with(init);
                        // SAFETY: the claim counter hands out `i` exactly
                        // once, so this slot is written exactly once.
                        unsafe { slots.set(i, job(state, i)) };
                    }
                }));
                if let Err(payload) = outcome {
                    call.abort(payload);
                }
                call.exit();
            }
        };
        self.fan_out(body, helpers, &call);
        slots.into_vec()
    }

    /// Folds `0..num_items` into per-participant accumulators and reduces
    /// them into one.
    ///
    /// Each participant builds an accumulator via `init`, folds every item
    /// it claims into it with `fold(&mut acc, index)`, and the caller
    /// thread combines the per-participant accumulators with
    /// `reduce(&mut total, acc)` — starting from a fresh `init()` value,
    /// in participant **completion order**, which varies run to run.
    ///
    /// Items are claimed dynamically, so *which* items land in which
    /// accumulator varies run to run too. The overall result is
    /// deterministic when the accumulation is order-insensitive — a
    /// commutative monoid such as per-key count sums — or when the caller
    /// tags folded entries with their item index and restores order inside
    /// `reduce` (or after it). The map-reduce query engine does the
    /// former; the parallel sharded-store builder does the latter.
    pub fn map_reduce<A, I, F, R>(&self, num_items: usize, init: I, fold: F, reduce: R) -> A
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, usize) + Sync,
        R: Fn(&mut A, A),
    {
        let helpers = self.helpers_for(num_items);
        if helpers == 0 {
            self.core.stats.inline_calls.fetch_add(1, Ordering::Relaxed);
            let mut acc = init();
            for i in 0..num_items {
                fold(&mut acc, i);
            }
            return acc;
        }
        self.core.stats.fanout_calls.fetch_add(1, Ordering::Relaxed);

        let accs: Mutex<Vec<A>> = Mutex::new(Vec::with_capacity(helpers + 1));
        let call = Arc::new(CallState::new(num_items));
        let body = {
            let call = Arc::clone(&call);
            let stats = Arc::clone(&self.core.stats);
            let accs = &accs;
            let init = &init;
            let fold = &fold;
            move || {
                call.enter();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut acc: Option<A> = None;
                    loop {
                        let i = call.next.fetch_add(1, Ordering::Relaxed);
                        if i >= call.num_items {
                            break;
                        }
                        stats.items_claimed.fetch_add(1, Ordering::Relaxed);
                        let acc = acc.get_or_insert_with(init);
                        fold(acc, i);
                    }
                    // Publish before releasing the participation token —
                    // the token is what keeps `accs` (caller frame) alive.
                    if let Some(acc) = acc {
                        accs.lock().push(acc);
                    }
                }));
                if let Err(payload) = outcome {
                    call.abort(payload);
                }
                call.exit();
            }
        };
        self.fan_out(body, helpers, &call);

        let mut total = init();
        for acc in accs.into_inner() {
            reduce(&mut total, acc);
        }
        total
    }

    /// Persistent workers this handle may hand tasks to.
    fn helper_limit(&self) -> usize {
        self.threads.saturating_sub(1).min(self.core.workers.len())
    }

    /// How many persistent workers to enlist for a blocking call over
    /// `num_items` items; 0 means run inline on the caller.
    fn helpers_for(&self, num_items: usize) -> usize {
        self.threads
            .min(num_items)
            .min(self.core.workers.len() + 1)
            .saturating_sub(1)
    }

    /// Erases `body`'s caller-frame lifetime, hands it to `helpers`
    /// workers, participates on the calling thread, and blocks until the
    /// call is quiescent (resuming any participant panic).
    fn fan_out<'env>(
        &self,
        body: impl Fn() + Send + Sync + 'env,
        helpers: usize,
        call: &CallState,
    ) {
        let body: Box<dyn Fn() + Send + Sync + 'env> = Box::new(body);
        // SAFETY: the closure may capture references into the caller's
        // frame; erasing its lifetime is sound because:
        // (1) this function does not return until `wait_quiescent`
        //     observes zero participation tokens, and a participant can
        //     only dereference captured references while it holds a token
        //     (`enter` precedes the first claim; in-range claims and every
        //     frame access happen before `exit`), so the frame strictly
        //     outlives every dereference;
        // (2) a worker invoking the body *after* this call returned only
        //     touches `Arc`-owned call state: `next >= num_items` holds
        //     forever, so its first claim fails and no captured reference
        //     is ever dereferenced on that path;
        // (3) the boxed closure itself lives inside the `Arc`'d
        //     `ErasedCall`, so the closure object (the bytes holding those
        //     references) stays valid for any late invocation.
        let body: Box<dyn Fn() + Send + Sync + 'static> = unsafe { mem::transmute(body) };
        let erased = Arc::new(ErasedCall { body });
        self.core.dispatch_call(&erased, helpers);
        // The calling thread is always a participant, so a call completes
        // even if every worker is busy elsewhere (or enlisted late).
        (erased.body)();
        call.wait_quiescent();
        if let Some(payload) = call.take_panic() {
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::WorkerPool;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }

    #[test]
    fn capped_clamps_but_never_below_one() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.capped(2).threads(), 2);
        assert_eq!(pool.capped(8).threads(), 4);
        assert_eq!(pool.capped(0).threads(), 1);
        // Capping never changes results.
        let full = pool.run(17, |i| i * 31);
        assert_eq!(pool.capped(1).run(17, |i| i * 31), full);
    }

    #[test]
    fn results_are_in_item_order() {
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let out = pool.run(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
        let pool = WorkerPool::new(4);
        pool.run(counts.len(), |i| counts[i].fetch_add(1, Ordering::Relaxed));
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn more_threads_than_items() {
        let pool = WorkerPool::new(16);
        assert_eq!(pool.run(3, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        // Single worker: the state counts how many jobs it has seen; every
        // job observes the same accumulating state instance.
        let pool = WorkerPool::new(1);
        let out = pool.run_with(
            5,
            || 0usize,
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn output_is_thread_count_invariant() {
        // Jobs that depend only on their index produce identical output
        // regardless of worker count.
        let reference = WorkerPool::new(1).run(100, |i| (i as u64).wrapping_mul(0x9E37));
        for threads in [2, 3, 4, 8] {
            let out = WorkerPool::new(threads).run(100, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn map_reduce_sums_every_item_once() {
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let total = pool.map_reduce(
                100,
                || 0u64,
                |acc, i| *acc += i as u64 + 1,
                |total, acc| *total += acc,
            );
            assert_eq!(total, 5050, "threads = {threads}");
        }
    }

    #[test]
    fn map_reduce_zero_items_returns_identity() {
        let pool = WorkerPool::new(4);
        let total = pool.map_reduce(0, || 41u64, |_, _| unreachable!(), |_, _| unreachable!());
        assert_eq!(total, 41);
    }

    #[test]
    fn map_reduce_order_insensitive_reduction_is_thread_invariant() {
        // Per-key count sums: the canonical commutative accumulation.
        let keys: Vec<usize> = (0..200).map(|i| i % 7).collect();
        let count = |threads: usize| {
            WorkerPool::new(threads).map_reduce(
                keys.len(),
                || vec![0usize; 7],
                |acc, i| acc[keys[i]] += 1,
                |total, acc| {
                    for (t, a) in total.iter_mut().zip(acc) {
                        *t += a;
                    }
                },
            )
        };
        let reference = count(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(count(threads), reference, "threads = {threads}");
        }
    }

    #[test]
    fn map_reduce_index_tagging_restores_order() {
        // Order-sensitive result made deterministic by carrying indices.
        let pool = WorkerPool::new(4);
        let mut pairs = pool.map_reduce(
            50,
            Vec::new,
            |acc: &mut Vec<(usize, usize)>, i| acc.push((i, i * 3)),
            |total, acc| total.extend(acc),
        );
        pairs.sort_unstable();
        let values: Vec<usize> = pairs.into_iter().map(|(_, v)| v).collect();
        assert_eq!(values, (0..50).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_may_borrow_from_the_caller() {
        let data: Vec<u64> = (0..40).collect();
        let pool = WorkerPool::new(3);
        let doubled = pool.run(data.len(), |i| data[i] * 2);
        assert_eq!(doubled[7], 14);
    }

    #[test]
    fn workers_are_spawned_once_and_reused_across_calls() {
        // The acceptance pin for the persistent runtime: `threads - 1`
        // threads exist after construction and *no* steady-state call —
        // run, run_with, map_reduce, capped views, clones — creates more.
        let pool = WorkerPool::new(4);
        assert_eq!(pool.stats().threads_spawned, 3);
        for round in 0..5 {
            let out = pool.run(40, |i| i + round);
            assert_eq!(out[7], 7 + round);
            let _ = pool.run_with(
                17,
                || 0u64,
                |s, i| {
                    *s += 1;
                    i as u64 + *s
                },
            );
            let total = pool.map_reduce(30, || 0usize, |a, i| *a += i, |t, a| *t += a);
            assert_eq!(total, (0..30).sum::<usize>());
            let _ = pool.capped(2).run(8, |i| i);
            let _ = pool.clone().run(8, |i| i);
        }
        let stats = pool.stats();
        assert_eq!(stats.threads_spawned, 3, "no per-call thread creation");
        assert!(stats.fanout_calls >= 15, "fan-outs ran on the workers");
        assert!(stats.items_claimed >= 5 * (40 + 17 + 30) as u64);
        assert!(stats.tasks_executed() >= stats.items_claimed);
    }

    #[test]
    fn inline_and_fanout_dispatch_modes_are_observable() {
        let pool = WorkerPool::new(2);
        let before = pool.stats();
        let _ = pool.run(1, |i| i); // single item → inline
        let _ = pool.capped(1).run(10, |i| i); // capped view → inline
        let _ = pool.run(10, |i| i); // fans out
        let after = pool.stats();
        assert_eq!(after.inline_calls, before.inline_calls + 2);
        assert_eq!(after.fanout_calls, before.fanout_calls + 1);

        // A single-thread pool never fans out and spawns nothing.
        let seq = WorkerPool::new(1);
        let _ = seq.run(10, |i| i);
        assert_eq!(seq.stats().threads_spawned, 0);
        assert_eq!(seq.stats().fanout_calls, 0);
        assert_eq!(seq.stats().inline_calls, 1);
    }

    #[test]
    fn panicking_job_propagates_and_pool_survives() {
        let pool = WorkerPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        assert!(result.is_err(), "the job panic propagates to the caller");
        // The workers survived and the pool still works.
        assert_eq!(
            pool.run(12, |i| i * 2),
            (0..12).map(|i| i * 2).collect::<Vec<_>>()
        );
        assert_eq!(pool.stats().threads_spawned, 2);

        // map_reduce propagates too.
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map_reduce(16, || 0usize, |_, i| assert!(i != 9, "boom"), |_, _| ())
        }));
        assert!(result.is_err());
        assert_eq!(pool.run(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_spawn_runs_on_an_idle_worker() {
        let pool = WorkerPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let task_ran = Arc::clone(&ran);
        // The single worker starts idle; hand it a task.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut task = Box::new(move || {
            task_ran.fetch_add(1, Ordering::SeqCst);
        }) as super::AsyncTask;
        loop {
            match pool.try_spawn(task) {
                Ok(()) => break,
                Err(back) => {
                    assert!(Instant::now() < deadline, "worker never went idle");
                    task = back;
                    std::thread::yield_now();
                }
            }
        }
        while ran.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "async task never ran");
            std::thread::yield_now();
        }
        assert!(pool.stats().async_tasks >= 1);
        assert_eq!(pool.stats().threads_spawned, 1);

        // A single-thread pool has no workers to hand tasks to.
        let seq = WorkerPool::new(1);
        assert_eq!(seq.idle_workers(), 0);
        assert!(seq.try_spawn(Box::new(|| ())).is_err());
    }

    #[test]
    fn blocking_calls_complete_while_workers_run_async_tasks() {
        // A fan-out call must finish even when every worker is tied up in
        // a long fire-and-forget task: the caller participates itself.
        let pool = WorkerPool::new(2);
        let release = Arc::new(AtomicUsize::new(0));
        let gate = Arc::clone(&release);
        let _ = pool.try_spawn(Box::new(move || {
            while gate.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
        }));
        let out = pool.run(10, |i| i + 1); // worker is busy; caller does all
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        release.store(1, Ordering::SeqCst);
    }
}
