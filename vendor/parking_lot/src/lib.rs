//! Vendored, offline subset of `parking_lot` backed by `std::sync`.
//!
//! Provides [`Mutex`], [`RwLock`], and [`Condvar`] with parking_lot's
//! non-poisoning API (`read()` / `write()` / `lock()` return guards
//! directly). Poisoned std locks are recovered via `into_inner`, matching
//! parking_lot's behaviour of ignoring panics in other threads.
//!
//! # Runtime lock-order checking (`lockdep`)
//!
//! With the `lockdep` feature enabled, every `Mutex`/`RwLock` is tagged
//! with the source location that constructed it (its **site**), and every
//! acquisition is checked against a process-global *acquired-before*
//! graph:
//!
//! * each thread keeps a stack of the locks it currently holds;
//! * acquiring lock `B` while holding lock `A` records the edge `A → B`
//!   together with the acquisition chain that produced it;
//! * an acquisition that would close a cycle in the graph — some other
//!   chain already established `B → … → A` — **panics immediately**,
//!   printing both conflicting chains, instead of waiting for the actual
//!   deadlock to strike under a rare interleaving.
//!
//! Locks constructed at the same source location form one *class* (like
//! kernel lockdep): nesting two same-class locks is reported as an
//! inversion hazard too, because nothing ranks the instances. The checker
//! is intentionally conservative — `RwLock` readers are treated like
//! writers, so a read-read "cycle" is flagged even though it only
//! deadlocks when a writer is waiting in between.
//!
//! The feature is a pure test/CI instrument: without it, the wrappers
//! compile down to the plain `std::sync` primitives with zero overhead.

#[cfg(feature = "lockdep")]
pub mod lockdep;

use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync;

#[cfg(feature = "lockdep")]
use lockdep::{Acquired, LockKind, LockTag};

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lockdep")]
    tag: LockTag,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    #[track_caller]
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lockdep")]
            tag: LockTag::here(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let _acquired = lockdep::acquire(&self.tag, LockKind::RwLockRead);
        RwLockReadGuard {
            inner: ManuallyDrop::new(self.inner.read().unwrap_or_else(|e| e.into_inner())),
            #[cfg(feature = "lockdep")]
            _acquired,
        }
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let _acquired = lockdep::acquire(&self.tag, LockKind::RwLockWrite);
        RwLockWriteGuard {
            inner: ManuallyDrop::new(self.inner.write().unwrap_or_else(|e| e.into_inner())),
            #[cfg(feature = "lockdep")]
            _acquired,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&self.inner).finish()
    }
}

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lockdep")]
    tag: LockTag,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    #[track_caller]
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lockdep")]
            tag: LockTag::here(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let acquired = lockdep::acquire(&self.tag, LockKind::Mutex);
        MutexGuard {
            inner: ManuallyDrop::new(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            #[cfg(feature = "lockdep")]
            tag: &self.tag,
            #[cfg(feature = "lockdep")]
            acquired: Some(acquired),
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&self.inner).finish()
    }
}

/// RAII guard of [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    /// `ManuallyDrop` so [`Condvar::wait`] can move the std guard out
    /// (the wait consumes and returns it) and write the reacquired one
    /// back without an `Option` discriminant on the hot path.
    inner: ManuallyDrop<sync::MutexGuard<'a, T>>,
    #[cfg(feature = "lockdep")]
    tag: &'a LockTag,
    #[cfg(feature = "lockdep")]
    acquired: Option<Acquired>,
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: `inner` is only ever vacated transiently inside
        // `Condvar::wait`, which restores it before returning; at drop
        // time it always holds a live guard, taken here exactly once.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII guard of [`RwLock::read`]; releases the shared lock on drop.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: ManuallyDrop<sync::RwLockReadGuard<'a, T>>,
    #[cfg(feature = "lockdep")]
    /// Drop-only token: popping it releases this acquisition from the
    /// thread's lockdep held stack.
    _acquired: Acquired,
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: `inner` is never vacated for read guards (no condvar
        // support), so it always holds a live guard, taken here exactly
        // once.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII guard of [`RwLock::write`]; releases the exclusive lock on drop.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: ManuallyDrop<sync::RwLockWriteGuard<'a, T>>,
    #[cfg(feature = "lockdep")]
    /// Drop-only token: popping it releases this acquisition from the
    /// thread's lockdep held stack.
    _acquired: Acquired,
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: `inner` is never vacated for write guards (no condvar
        // support), so it always holds a live guard, taken here exactly
        // once.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable usable with [`MutexGuard`], mirroring
/// parking_lot's `Condvar` (no poisoning, no spurious `Result`s).
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing the guard's mutex
    /// while waiting and reacquiring it before returning.
    ///
    /// Spurious wakeups are possible, as with every condvar — callers
    /// re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Under lockdep the wait is a genuine release + reacquire: the
        // held-lock stack drops the mutex while blocked and re-records
        // the acquisition (with ordering checks) on wakeup.
        #[cfg(feature = "lockdep")]
        let tag = {
            guard.acquired = None;
            guard.tag
        };
        // SAFETY: `take` vacates `inner`; the std wait consumes the guard
        // and returns the reacquired one, which is written back below on
        // every path — `sync::Condvar::wait` only "fails" with a
        // `PoisonError` that still carries the guard, so `inner` is
        // occupied again before `wait` returns.
        let std_guard = unsafe { ManuallyDrop::take(&mut guard.inner) };
        let reacquired = self.0.wait(std_guard).unwrap_or_else(|e| e.into_inner());
        guard.inner = ManuallyDrop::new(reacquired);
        #[cfg(feature = "lockdep")]
        {
            guard.acquired = Some(lockdep::acquire(tag, LockKind::Mutex));
        }
    }

    /// Wakes one thread blocked in [`wait`](Condvar::wait) on this
    /// condvar.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every thread blocked in [`wait`](Condvar::wait) on this
    /// condvar.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex, RwLock};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_many_readers() {
        // Concurrent readers on different threads (same-thread nested
        // reads are a deadlock hazard under writer-priority locks, and
        // lockdep flags them).
        let lock = Arc::new(RwLock::new(1));
        let a = lock.read();
        let reader = {
            let lock = Arc::clone(&lock);
            thread::spawn(move || *lock.read())
        };
        assert_eq!(*a + reader.join().unwrap(), 2);
    }

    #[test]
    fn mutex_get_mut_needs_no_lock() {
        let mut m = Mutex::new(7);
        *m.get_mut() += 1;
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let notifier = Arc::clone(&shared);
        let handle = thread::spawn(move || {
            let (flag, cv) = &*notifier;
            *flag.lock() = true;
            cv.notify_all();
        });
        let (flag, cv) = &*shared;
        let mut ready = flag.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        handle.join().unwrap();
    }

    #[test]
    fn guards_release_on_drop() {
        let m = Mutex::new(0);
        for i in 0..3 {
            let mut g = m.lock();
            *g += i;
        }
        assert_eq!(*m.lock(), 3);
        let rw = RwLock::new(0);
        *rw.write() = 9;
        assert_eq!(*rw.read(), 9);
    }
}
