//! The unrolled coupled network: global energy and exact Markov-blanket
//! local features.
//!
//! The central invariant, exercised by the tests below, is that for any
//! single-site relabelling the difference of the *local* feature vectors
//! equals the difference of the *global* energy — i.e. the conditionals
//! used by Gibbs sampling and ICM are exactly those of the joint model.

use crate::structure::idx;
use crate::{SequenceContext, Weights, NUM_FEATURES};
use ism_indoor::RegionId;
use ism_mobility::MobilityEvent;
use ism_pgm::{ConditionalModel, SweepCache};

/// A C2MN instantiated over one positioning sequence.
pub struct CoupledNetwork<'c> {
    /// The preprocessed sequence.
    pub ctx: &'c SequenceContext<'c>,
    /// The shared template weights.
    pub weights: &'c Weights,
}

impl<'c> CoupledNetwork<'c> {
    /// Creates the network.
    pub fn new(ctx: &'c SequenceContext<'c>, weights: &'c Weights) -> Self {
        CoupledNetwork { ctx, weights }
    }

    /// `fsm` for an arbitrary region at record `i` (candidate cache first,
    /// direct geometry as fallback).
    fn fsm_value(&self, i: usize, region: RegionId) -> f64 {
        if let Some(c) = self.ctx.candidate_index(i, region) {
            return self.ctx.fsm[i][c];
        }
        let rec = &self.ctx.records[i];
        let circle = ism_geometry::Circle::new(rec.location.xy, self.ctx.config.uncertainty_radius);
        self.ctx
            .space
            .region_circle_overlap(region, rec.location.floor, circle)
            / circle.area().max(f64::EPSILON)
    }

    /// Maximal run `a..=b` around `i` where `same(k)` holds relative to `i`.
    #[inline]
    fn run_around<F: Fn(usize, usize) -> bool>(&self, i: usize, same: F) -> (usize, usize) {
        let n = self.ctx.len();
        let mut a = i;
        while a > 0 && same(a - 1, i) {
            a -= 1;
        }
        let mut b = i;
        while b + 1 < n && same(b + 1, i) {
            b += 1;
        }
        (a, b)
    }

    /// Global energy `Σ_ct w_ct · f_ct` of a full labelling.
    pub fn total_energy(&self, regions: &[RegionId], events: &[MobilityEvent]) -> f64 {
        let ctx = self.ctx;
        let s = &ctx.config.structure;
        let w = &self.weights.0;
        let n = ctx.len();
        debug_assert_eq!(regions.len(), n);
        debug_assert_eq!(events.len(), n);
        let mut energy = 0.0;
        for i in 0..n {
            energy += w[idx::SM] * self.fsm_value(i, regions[i]);
            energy += w[idx::EM] * ctx.fem[i][events[i].index()];
        }
        for g in 0..n.saturating_sub(1) {
            if s.transitions {
                energy += w[idx::ST] * ctx.fst(g, regions[g], regions[g + 1]);
                energy += w[idx::ET] * ctx.fet(events[g], events[g + 1]);
            }
            if s.synchronizations {
                energy += w[idx::SC] * ctx.fsc(g, regions[g], regions[g + 1]);
                energy += w[idx::EC] * ctx.fec(g, events[g], events[g + 1]);
            }
        }
        if s.event_segmentation && n > 0 {
            let mut a = 0;
            while a < n {
                let mut b = a;
                while b + 1 < n && events[b + 1] == events[a] {
                    b += 1;
                }
                let f = ctx.fes(a, b, events[a], |k| regions[k]);
                for k in 0..3 {
                    energy += w[idx::ES + k] * f[k];
                }
                a = b + 1;
            }
        }
        if s.space_segmentation && n > 0 {
            let mut a = 0;
            while a < n {
                let mut b = a;
                while b + 1 < n && regions[b + 1] == regions[a] {
                    b += 1;
                }
                let f = ctx.fss(a, b, |k| events[k]);
                for k in 0..3 {
                    energy += w[idx::SS + k] * f[k];
                }
                a = b + 1;
            }
        }
        energy
    }

    /// Local feature vector of assigning `cand` to region site `i`: the sum
    /// of the features of every clique containing `r_i`, with all other
    /// sites read through the accessors.
    pub fn region_local_features<R, E>(
        &self,
        i: usize,
        cand: RegionId,
        region_at: R,
        event_at: E,
        out: &mut [f64; NUM_FEATURES],
    ) where
        R: Fn(usize) -> RegionId,
        E: Fn(usize) -> MobilityEvent,
    {
        let ctx = self.ctx;
        let s = &ctx.config.structure;
        let n = ctx.len();
        out.fill(0.0);
        let eff = |k: usize| if k == i { cand } else { region_at(k) };

        out[idx::SM] = self.fsm_value(i, cand);
        if s.transitions {
            if i > 0 {
                out[idx::ST] += ctx.fst(i - 1, region_at(i - 1), cand);
            }
            if i + 1 < n {
                out[idx::ST] += ctx.fst(i, cand, region_at(i + 1));
            }
        }
        if s.synchronizations {
            if i > 0 {
                out[idx::SC] += ctx.fsc(i - 1, region_at(i - 1), cand);
            }
            if i + 1 < n {
                out[idx::SC] += ctx.fsc(i, cand, region_at(i + 1));
            }
        }
        if s.event_segmentation {
            // The event run containing i is unaffected by region labels;
            // only its fes features change through DISTNUM.
            let (a, b) = self.run_around(i, |k, j| event_at(k) == event_at(j));
            let f = ctx.fes(a, b, event_at(i), eff);
            out[idx::ES..idx::ES + 3].copy_from_slice(&f);
        }
        if s.space_segmentation {
            // Changing r_i can split or merge region runs: recompute fss
            // over the window spanned by the runs of i−1 and i+1 (their
            // outer boundaries cannot move).
            let lo = if i == 0 {
                0
            } else {
                self.run_around(i - 1, |k, j| region_at(k) == region_at(j))
                    .0
            };
            let hi = if i + 1 >= n {
                n - 1
            } else {
                self.run_around(i + 1, |k, j| region_at(k) == region_at(j))
                    .1
            };
            let mut a = lo;
            while a <= hi {
                let mut b = a;
                while b < hi && eff(b + 1) == eff(a) {
                    b += 1;
                }
                let f = ctx.fss(a, b, &event_at);
                for k in 0..3 {
                    out[idx::SS + k] += f[k];
                }
                a = b + 1;
            }
        }
    }

    /// [`region_local_features`](Self::region_local_features) addressed by
    /// dense *candidate indices*: `cand_idx` indexes
    /// `ctx.candidates[i]` and `r_state[k]` indexes `ctx.candidates[k]`.
    ///
    /// The pairwise terms read the precomputed `fst`/`fsc` arenas instead
    /// of recomputing `region_expected_miwd` per call; every arena entry
    /// was produced by the same expression, so the result is bitwise
    /// identical to the `RegionId` path (the test below pins this).
    pub fn region_local_features_indexed<E>(
        &self,
        i: usize,
        cand_idx: usize,
        r_state: &[usize],
        event_at: E,
        out: &mut [f64; NUM_FEATURES],
    ) where
        E: Fn(usize) -> MobilityEvent,
    {
        let ctx = self.ctx;
        let s = &ctx.config.structure;
        let n = ctx.len();
        out.fill(0.0);
        let cand = ctx.candidates[i][cand_idx];
        let region_at = |k: usize| ctx.candidates[k][r_state[k]];
        let eff = |k: usize| if k == i { cand } else { region_at(k) };

        out[idx::SM] = ctx.fsm[i][cand_idx];
        if s.transitions {
            if i > 0 {
                out[idx::ST] += ctx.fst_at(i - 1, r_state[i - 1], cand_idx);
            }
            if i + 1 < n {
                out[idx::ST] += ctx.fst_at(i, cand_idx, r_state[i + 1]);
            }
        }
        if s.synchronizations {
            if i > 0 {
                out[idx::SC] += ctx.fsc_at(i - 1, r_state[i - 1], cand_idx);
            }
            if i + 1 < n {
                out[idx::SC] += ctx.fsc_at(i, cand_idx, r_state[i + 1]);
            }
        }
        if s.event_segmentation {
            let (a, b) = self.run_around(i, |k, j| event_at(k) == event_at(j));
            let f = ctx.fes(a, b, event_at(i), eff);
            out[idx::ES..idx::ES + 3].copy_from_slice(&f);
        }
        if s.space_segmentation {
            let lo = if i == 0 {
                0
            } else {
                self.run_around(i - 1, |k, j| region_at(k) == region_at(j))
                    .0
            };
            let hi = if i + 1 >= n {
                n - 1
            } else {
                self.run_around(i + 1, |k, j| region_at(k) == region_at(j))
                    .1
            };
            let mut a = lo;
            while a <= hi {
                let mut b = a;
                while b < hi && eff(b + 1) == eff(a) {
                    b += 1;
                }
                let f = ctx.fss(a, b, &event_at);
                for k in 0..3 {
                    out[idx::SS + k] += f[k];
                }
                a = b + 1;
            }
        }
    }

    /// Local feature vector of assigning `cand` to event site `i`.
    pub fn event_local_features<R, E>(
        &self,
        i: usize,
        cand: MobilityEvent,
        region_at: R,
        event_at: E,
        out: &mut [f64; NUM_FEATURES],
    ) where
        R: Fn(usize) -> RegionId,
        E: Fn(usize) -> MobilityEvent,
    {
        let ctx = self.ctx;
        let s = &ctx.config.structure;
        let n = ctx.len();
        out.fill(0.0);
        let eff = |k: usize| if k == i { cand } else { event_at(k) };

        out[idx::EM] = ctx.fem[i][cand.index()];
        if s.transitions {
            if i > 0 {
                out[idx::ET] += ctx.fet(event_at(i - 1), cand);
            }
            if i + 1 < n {
                out[idx::ET] += ctx.fet(cand, event_at(i + 1));
            }
        }
        if s.synchronizations {
            if i > 0 {
                out[idx::EC] += ctx.fec(i - 1, event_at(i - 1), cand);
            }
            if i + 1 < n {
                out[idx::EC] += ctx.fec(i, cand, event_at(i + 1));
            }
        }
        if s.event_segmentation {
            // Changing e_i can split or merge event runs.
            let lo = if i == 0 {
                0
            } else {
                self.run_around(i - 1, |k, j| event_at(k) == event_at(j)).0
            };
            let hi = if i + 1 >= n {
                n - 1
            } else {
                self.run_around(i + 1, |k, j| event_at(k) == event_at(j)).1
            };
            let mut a = lo;
            while a <= hi {
                let mut b = a;
                while b < hi && eff(b + 1) == eff(a) {
                    b += 1;
                }
                let f = ctx.fes(a, b, eff(a), &region_at);
                for k in 0..3 {
                    out[idx::ES + k] += f[k];
                }
                a = b + 1;
            }
        }
        if s.space_segmentation {
            // The region run containing i is fixed; its fss features change
            // through the event-run counts and boundary indicators.
            let (a, b) = self.run_around(i, |k, j| region_at(k) == region_at(j));
            let f = ctx.fss(a, b, eff);
            out[idx::SS..idx::SS + 3].copy_from_slice(&f);
        }
    }
}

/// Region-chain sites as a [`ConditionalModel`]: state entries are dense
/// candidate indices into `ctx.candidates[site]`, the event chain is fixed.
pub struct RegionSites<'c> {
    /// The network.
    pub net: &'c CoupledNetwork<'c>,
    /// The fixed event labelling.
    pub events: &'c [MobilityEvent],
}

impl ConditionalModel for RegionSites<'_> {
    fn num_sites(&self) -> usize {
        self.net.ctx.len()
    }

    fn num_candidates(&self, site: usize) -> usize {
        self.net.ctx.candidates[site].len()
    }

    fn local_log_potential(&self, site: usize, candidate: usize, state: &[usize]) -> f64 {
        let mut f = [0.0; NUM_FEATURES];
        self.net
            .region_local_features_indexed(site, candidate, state, |k| self.events[k], &mut f);
        self.net.weights.dot(&f)
    }

    /// Fills the whole candidate row at once, hoisting the work every
    /// candidate shares out of the per-candidate loop: the event run
    /// containing `site` (and `fes`'s label-independent speed/turn terms
    /// plus the rest-of-run distinct set — each candidate then adjusts the
    /// distinct count by one membership probe), and the `fss` window hull
    /// (candidate-independent: its run scans never read `site`'s own
    /// label). Every per-candidate floating-point expression is the one
    /// [`Self::local_log_potential`] evaluates, so the row is bitwise
    /// identical to the per-candidate path — the dual-kernel oracle suite
    /// pins this.
    fn fill_row(&self, site: usize, state: &[usize], out: &mut [f64]) {
        let net = self.net;
        let ctx = net.ctx;
        let s = &ctx.config.structure;
        let n = ctx.len();
        let i = site;
        let cands = &ctx.candidates[i];
        debug_assert_eq!(out.len(), cands.len());
        let region_at = |k: usize| ctx.candidates[k][state[k]];
        let event_at = |k: usize| self.events[k];

        // (len, rest-distinct set, sign·speed, sign·(−turns), sign).
        let es = s.event_segmentation.then(|| {
            let (a, b) = net.run_around(i, |k, j| event_at(k) == event_at(j));
            let len = (b - a + 1) as f64;
            let mut rest: Vec<RegionId> = Vec::with_capacity(8);
            for k in a..=b {
                if k == i {
                    continue;
                }
                let r = region_at(k);
                if !rest.contains(&r) {
                    rest.push(r);
                }
            }
            let speed = if b > a {
                let dt = (ctx.records[b].t - ctx.records[a].t).max(1e-6);
                (ctx.path_length(a, b) / dt / ctx.config.speed_norm).min(1.0)
            } else {
                0.0
            };
            let turns = ctx.turns_in(a, b) as f64 / len;
            let sign = 2.0 * event_at(i).pass_indicator() - 1.0;
            (len, rest, sign * speed, sign * (-turns), sign)
        });
        let ss = s.space_segmentation.then(|| {
            let lo = if i == 0 {
                0
            } else {
                net.run_around(i - 1, |k, j| region_at(k) == region_at(j)).0
            };
            let hi = if i + 1 >= n {
                n - 1
            } else {
                net.run_around(i + 1, |k, j| region_at(k) == region_at(j)).1
            };
            (lo, hi)
        });

        for (c_idx, slot) in out.iter_mut().enumerate() {
            let cand = cands[c_idx];
            let mut f = [0.0; NUM_FEATURES];
            f[idx::SM] = ctx.fsm[i][c_idx];
            if s.transitions {
                if i > 0 {
                    f[idx::ST] += ctx.fst_at(i - 1, state[i - 1], c_idx);
                }
                if i + 1 < n {
                    f[idx::ST] += ctx.fst_at(i, c_idx, state[i + 1]);
                }
            }
            if s.synchronizations {
                if i > 0 {
                    f[idx::SC] += ctx.fsc_at(i - 1, state[i - 1], c_idx);
                }
                if i + 1 < n {
                    f[idx::SC] += ctx.fsc_at(i, c_idx, state[i + 1]);
                }
            }
            if let Some((len, rest, sp, tn, sign)) = &es {
                let count = rest.len() + usize::from(!rest.contains(&cand));
                f[idx::ES] = sign * (count as f64 / len);
                f[idx::ES + 1] = *sp;
                f[idx::ES + 2] = *tn;
            }
            if let Some((lo, hi)) = ss {
                let eff = |k: usize| if k == i { cand } else { region_at(k) };
                let mut a = lo;
                while a <= hi {
                    let mut b = a;
                    while b < hi && eff(b + 1) == eff(a) {
                        b += 1;
                    }
                    let g = ctx.fss(a, b, event_at);
                    for k in 0..3 {
                        f[idx::SS + k] += g[k];
                    }
                    a = b + 1;
                }
            }
            *slot = net.weights.dot(&f);
        }
    }

    /// Markov blanket of region site `site` under the fixed event chain,
    /// for the accepted flip `prev_candidate → state[site]`.
    ///
    /// Every feature reading `r_site` touches a contiguous window around
    /// `site`, so the blanket is the hull of the per-feature windows:
    ///
    /// * transitions / synchronizations — the chain neighbours `site ± 1`;
    /// * event segmentation — region labels enter `fes` only through the
    ///   *distinct-label count* of the (fixed) event run containing
    ///   `site`. If the old and the new label each still occur at some
    ///   other site of that run, every other row's distinct set is
    ///   provably unchanged (the multiset swaps one `old` for one `new`,
    ///   both already present), except the exact margin cases: when the
    ///   old (new) label survives at only *one* other site `j`, row `j`'s
    ///   own substitution `j → c` can remove that last copy, so `j` alone
    ///   is dirtied. When either label does not occur elsewhere in the
    ///   run, the distinct count genuinely changes for every row in it —
    ///   fall back to the whole run;
    /// * space segmentation — a row `j` re-segments the window spanned by
    ///   the region runs around `j − 1` / `j + 1`; that window (and the
    ///   run scans feeding it) can reach `site` only from within
    ///   `[A − 1, B + 1]`, where `A`/`B` are the outer ends of the runs
    ///   containing `site − 1` / `site + 1`. Neither run reads the label
    ///   at `site`, so the bound is stable across the flip itself.
    fn dependents(
        &self,
        site: usize,
        prev_candidate: usize,
        state: &[usize],
    ) -> impl Iterator<Item = usize> {
        let ctx = self.net.ctx;
        let s = &ctx.config.structure;
        let n = ctx.len();
        let region = |k: usize| ctx.candidates[k][state[k]];
        let mut lo = site;
        let mut hi = site;
        let mut margins = [None::<usize>; 2];
        if s.transitions || s.synchronizations {
            lo = lo.min(site.saturating_sub(1));
            hi = hi.max((site + 1).min(n - 1));
        }
        if s.event_segmentation {
            let mut a = site;
            while a > 0 && self.events[a - 1] == self.events[site] {
                a -= 1;
            }
            let mut b = site;
            while b + 1 < n && self.events[b + 1] == self.events[site] {
                b += 1;
            }
            let old_r = ctx.candidates[site][prev_candidate];
            let new_r = region(site);
            let (mut cnt_old, mut pos_old) = (0usize, 0usize);
            let (mut cnt_new, mut pos_new) = (0usize, 0usize);
            for k in a..=b {
                if k == site {
                    continue;
                }
                let r = region(k);
                if r == old_r {
                    cnt_old += 1;
                    pos_old = k;
                }
                if r == new_r {
                    cnt_new += 1;
                    pos_new = k;
                }
            }
            if cnt_old >= 1 && cnt_new >= 1 {
                if cnt_old == 1 {
                    margins[0] = Some(pos_old);
                }
                if cnt_new == 1 {
                    margins[1] = Some(pos_new);
                }
            } else {
                lo = lo.min(a);
                hi = hi.max(b);
            }
        }
        if s.space_segmentation {
            if site > 0 {
                let mut a = site - 1;
                while a > 0 && region(a - 1) == region(site - 1) {
                    a -= 1;
                }
                lo = lo.min(a.saturating_sub(1));
            }
            if site + 1 < n {
                let mut b = site + 1;
                while b + 1 < n && region(b + 1) == region(site + 1) {
                    b += 1;
                }
                hi = hi.max((b + 1).min(n - 1));
            }
        }
        (lo..=hi).filter(move |&j| j != site).chain(
            margins
                .into_iter()
                .flatten()
                .filter(move |&j| j < lo || j > hi),
        )
    }
}

/// Event-chain sites as a [`ConditionalModel`]: state entries index
/// [`MobilityEvent::ALL`], the region chain is fixed.
pub struct EventSites<'c> {
    /// The network.
    pub net: &'c CoupledNetwork<'c>,
    /// The fixed region labelling.
    pub regions: &'c [RegionId],
}

impl ConditionalModel for EventSites<'_> {
    fn num_sites(&self) -> usize {
        self.net.ctx.len()
    }

    fn num_candidates(&self, _site: usize) -> usize {
        2
    }

    fn local_log_potential(&self, site: usize, candidate: usize, state: &[usize]) -> f64 {
        let mut f = [0.0; NUM_FEATURES];
        self.net.event_local_features(
            site,
            MobilityEvent::ALL[candidate],
            |k| self.regions[k],
            |k| MobilityEvent::ALL[state[k]],
            &mut f,
        );
        self.net.weights.dot(&f)
    }

    /// Markov blanket of event site `site` under the fixed region chain —
    /// the mirror image of [`RegionSites::dependents`]: chain neighbours
    /// from transitions / synchronizations, the `[A − 1, B + 1]` hull of
    /// the event runs around `site ∓ 1` for event segmentation (the
    /// self-segmented chain), and the exact (fixed) region run containing
    /// `site` for space segmentation.
    fn dependents(
        &self,
        site: usize,
        _prev_candidate: usize,
        state: &[usize],
    ) -> impl Iterator<Item = usize> {
        let ctx = self.net.ctx;
        let s = &ctx.config.structure;
        let n = ctx.len();
        let mut lo = site;
        let mut hi = site;
        if s.transitions || s.synchronizations {
            lo = lo.min(site.saturating_sub(1));
            hi = hi.max((site + 1).min(n - 1));
        }
        if s.event_segmentation {
            if site > 0 {
                let mut a = site - 1;
                while a > 0 && state[a - 1] == state[site - 1] {
                    a -= 1;
                }
                lo = lo.min(a.saturating_sub(1));
            }
            if site + 1 < n {
                let mut b = site + 1;
                while b + 1 < n && state[b + 1] == state[site + 1] {
                    b += 1;
                }
                hi = hi.max((b + 1).min(n - 1));
            }
        }
        if s.space_segmentation {
            let mut a = site;
            while a > 0 && self.regions[a - 1] == self.regions[site] {
                a -= 1;
            }
            let mut b = site;
            while b + 1 < n && self.regions[b + 1] == self.regions[site] {
                b += 1;
            }
            lo = lo.min(a);
            hi = hi.max(b);
        }
        (lo..=hi).filter(move |&j| j != site)
    }
}

/// Dirties the *event* cache rows whose potentials may have changed after a
/// region half-sweep moved `old_regions` to `new_regions`.
///
/// Event rows read region labels only through the segmentation features:
///
/// * event segmentation — row `j` reads region `i` (via `fes`'s DISTNUM)
///   iff `i` falls in one of `j`'s event segments, which are the event
///   runs of the (unchanged) event chain with at most one split or merge
///   at `j` itself. Region labels enter only through each segment's
///   distinct-label count, so a flip `A → B` at `i` leaves a segment's
///   count unchanged whenever both `A` and `B` occur at some *stable*
///   site (same label in the old and new snapshot — robust when one
///   sweep flips many sites; each flip's own rule covers its labels) of
///   that segment besides `i`. Concretely, with `R = eventrun(i)`:
///   when `A` and `B` each have a stable copy somewhere in `R ∖ {i}`,
///   the full-run segment is safe for every row and only rows `j` whose
///   *split* segment (`[start(R), j − 1]` or `[j + 1, end(R)]`) has not
///   yet met a stable copy of both labels are dirtied — a short prefix
///   scan outward from `i` on each side. When either label has no stable
///   copy in `R`, the count genuinely changes and the old hull
///   `R ± 1` is dirtied;
/// * space segmentation — row `j`'s `fss` segment is the region run
///   containing `j`; runs can only change inside the hull of the *old*
///   runs around each flipped site (a merge or split crosses a flipped
///   site, and the old-snapshot span of every flipped site covers its
///   side of the join), so dirtying `[A_old − 1, B_old + 1]` per flipped
///   site covers every membership or scan change even when one sweep
///   flips many sites.
pub fn invalidate_events_after_region_sweep(
    ctx: &SequenceContext<'_>,
    old_regions: &[RegionId],
    new_regions: &[RegionId],
    events: &[MobilityEvent],
    cache: &mut SweepCache,
) {
    let s = &ctx.config.structure;
    if !s.event_segmentation && !s.space_segmentation {
        return;
    }
    let n = ctx.len();
    for i in 0..n {
        if old_regions[i] == new_regions[i] {
            continue;
        }
        let mut lo = i;
        let mut hi = i;
        if s.event_segmentation {
            let mut a = i;
            while a > 0 && events[a - 1] == events[i] {
                a -= 1;
            }
            let mut b = i;
            while b + 1 < n && events[b + 1] == events[i] {
                b += 1;
            }
            let la = old_regions[i];
            let lb = new_regions[i];
            let stable = |k: usize, l: RegionId| old_regions[k] == l && new_regions[k] == l;
            let mut cnt_a = 0usize;
            let mut cnt_b = 0usize;
            for k in a..=b {
                if k == i {
                    continue;
                }
                if stable(k, la) {
                    cnt_a += 1;
                }
                if stable(k, lb) {
                    cnt_b += 1;
                }
            }
            if cnt_a == 0 || cnt_b == 0 {
                lo = lo.min(a.saturating_sub(1));
                hi = hi.max((b + 1).min(n - 1));
            } else {
                // Split segments: walk outward from `i` until a stable
                // copy of both labels has entered the prefix; rows before
                // that point can lose one side's only copy to the split.
                let mut pa = (a..i).any(|k| stable(k, la));
                let mut pb = (a..i).any(|k| stable(k, lb));
                for j in i + 1..=b {
                    if pa && pb {
                        break;
                    }
                    cache.invalidate(j);
                    pa |= stable(j, la);
                    pb |= stable(j, lb);
                }
                let mut pa = (i + 1..=b).any(|k| stable(k, la));
                let mut pb = (i + 1..=b).any(|k| stable(k, lb));
                for j in (a..i).rev() {
                    if pa && pb {
                        break;
                    }
                    cache.invalidate(j);
                    pa |= stable(j, la);
                    pb |= stable(j, lb);
                }
            }
        }
        if s.space_segmentation {
            if i > 0 {
                let mut a = i - 1;
                while a > 0 && old_regions[a - 1] == old_regions[i - 1] {
                    a -= 1;
                }
                lo = lo.min(a.saturating_sub(1));
            }
            if i + 1 < n {
                let mut b = i + 1;
                while b + 1 < n && old_regions[b + 1] == old_regions[i + 1] {
                    b += 1;
                }
                hi = hi.max((b + 1).min(n - 1));
            }
        }
        for j in lo..=hi {
            cache.invalidate(j);
        }
    }
}

/// Dirties the *region* cache rows affected by an event half-sweep moving
/// `old_events` to `new_events` — the mirror image of
/// [`invalidate_events_after_region_sweep`]: the old-event-run hull
/// `[A_old − 1, B_old + 1]` per flipped site for event segmentation, and
/// `regionrun(i) ± 1` under the (unchanged) region chain for space
/// segmentation.
pub fn invalidate_regions_after_event_sweep(
    ctx: &SequenceContext<'_>,
    old_events: &[MobilityEvent],
    new_events: &[MobilityEvent],
    regions: &[RegionId],
    cache: &mut SweepCache,
) {
    let s = &ctx.config.structure;
    if !s.event_segmentation && !s.space_segmentation {
        return;
    }
    let n = ctx.len();
    for i in 0..n {
        if old_events[i] == new_events[i] {
            continue;
        }
        let mut lo = i;
        let mut hi = i;
        if s.event_segmentation {
            if i > 0 {
                let mut a = i - 1;
                while a > 0 && old_events[a - 1] == old_events[i - 1] {
                    a -= 1;
                }
                lo = lo.min(a.saturating_sub(1));
            }
            if i + 1 < n {
                let mut b = i + 1;
                while b + 1 < n && old_events[b + 1] == old_events[i + 1] {
                    b += 1;
                }
                hi = hi.max((b + 1).min(n - 1));
            }
        }
        if s.space_segmentation {
            let mut a = i;
            while a > 0 && regions[a - 1] == regions[i] {
                a -= 1;
            }
            let mut b = i;
            while b + 1 < n && regions[b + 1] == regions[i] {
                b += 1;
            }
            lo = lo.min(a.saturating_sub(1));
            hi = hi.max((b + 1).min(n - 1));
        }
        for j in lo..=hi {
            cache.invalidate(j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C2mnConfig;
    use ism_geometry::Point2;
    use ism_indoor::{BuildingGenerator, IndoorPoint, IndoorSpace};
    use ism_mobility::PositioningRecord;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (IndoorSpace, C2mnConfig) {
        let space = BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        (space, C2mnConfig::quick_test())
    }

    fn random_walk(space: &IndoorSpace, n: usize, seed: u64) -> Vec<PositioningRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xy = space.partitions()[4].rect.center();
        (0..n)
            .map(|i| {
                xy = Point2::new(
                    xy.x + rng.random_range(-4.0..4.0),
                    xy.y + rng.random_range(-2.0..2.0),
                );
                PositioningRecord::new(IndoorPoint::new(0, xy), 8.0 * i as f64)
            })
            .collect()
    }

    /// The key invariant: single-site local-feature differences match
    /// global-energy differences, for both chains and every structure.
    #[test]
    fn local_conditionals_match_global_energy() {
        let (space, base) = setup();
        for structure in [
            crate::ModelStructure::full(),
            crate::ModelStructure::cmn(),
            crate::ModelStructure::no_transitions(),
            crate::ModelStructure::no_synchronizations(),
            crate::ModelStructure::no_event_segmentation(),
            crate::ModelStructure::no_space_segmentation(),
        ] {
            let config = base.clone().with_structure(structure);
            let recs = random_walk(&space, 14, 42);
            let ctx = SequenceContext::build(&space, &config, &recs, &[]);
            let weights = Weights::uniform(1.3);
            let net = CoupledNetwork::new(&ctx, &weights);
            let mut rng = StdRng::seed_from_u64(7);

            // Random initial labelling from candidates.
            let mut regions: Vec<RegionId> = (0..ctx.len())
                .map(|i| ctx.candidates[i][rng.random_range(0..ctx.candidates[i].len())])
                .collect();
            let mut events: Vec<MobilityEvent> = (0..ctx.len())
                .map(|_| MobilityEvent::ALL[rng.random_range(0..MobilityEvent::ALL.len())])
                .collect();

            for _trial in 0..40 {
                let i = rng.random_range(0..ctx.len());
                // --- Region flip -------------------------------------
                let old_r = regions[i];
                let new_r = ctx.candidates[i][rng.random_range(0..ctx.candidates[i].len())];
                let mut f_old = [0.0; NUM_FEATURES];
                let mut f_new = [0.0; NUM_FEATURES];
                net.region_local_features(i, old_r, |k| regions[k], |k| events[k], &mut f_old);
                net.region_local_features(i, new_r, |k| regions[k], |k| events[k], &mut f_new);
                let local_delta = weights.dot(&f_new) - weights.dot(&f_old);
                let e_old = net.total_energy(&regions, &events);
                regions[i] = new_r;
                let e_new = net.total_energy(&regions, &events);
                assert!(
                    (e_new - e_old - local_delta).abs() < 1e-9,
                    "region flip mismatch ({structure:?}): global {} vs local {}",
                    e_new - e_old,
                    local_delta
                );
                regions[i] = old_r;

                // --- Event flip --------------------------------------
                let old_e = events[i];
                let new_e = MobilityEvent::ALL[rng.random_range(0..MobilityEvent::ALL.len())];
                net.event_local_features(i, old_e, |k| regions[k], |k| events[k], &mut f_old);
                net.event_local_features(i, new_e, |k| regions[k], |k| events[k], &mut f_new);
                let local_delta = weights.dot(&f_new) - weights.dot(&f_old);
                let e_old = net.total_energy(&regions, &events);
                events[i] = new_e;
                let e_new = net.total_energy(&regions, &events);
                assert!(
                    (e_new - e_old - local_delta).abs() < 1e-9,
                    "event flip mismatch ({structure:?}): global {} vs local {}",
                    e_new - e_old,
                    local_delta
                );
                events[i] = old_e;
            }
        }
    }

    /// The indexed fast path (candidate indices + precomputed pairwise
    /// arenas) must be *bitwise* equal to the `RegionId` path — it backs
    /// the byte-identical contract of the memoized kernel.
    #[test]
    fn indexed_features_are_bitwise_equal_to_region_id_path() {
        let (space, base) = setup();
        for structure in [
            crate::ModelStructure::full(),
            crate::ModelStructure::cmn(),
            crate::ModelStructure::no_transitions(),
            crate::ModelStructure::no_synchronizations(),
            crate::ModelStructure::no_event_segmentation(),
            crate::ModelStructure::no_space_segmentation(),
        ] {
            let config = base.clone().with_structure(structure);
            let recs = random_walk(&space, 12, 17);
            let ctx = SequenceContext::build(&space, &config, &recs, &[]);
            let weights = Weights::uniform(0.9);
            let net = CoupledNetwork::new(&ctx, &weights);
            let mut rng = StdRng::seed_from_u64(23);
            for _trial in 0..20 {
                let r_state: Vec<usize> = (0..ctx.len())
                    .map(|i| rng.random_range(0..ctx.candidates[i].len()))
                    .collect();
                let events: Vec<MobilityEvent> = (0..ctx.len())
                    .map(|_| MobilityEvent::ALL[rng.random_range(0..MobilityEvent::ALL.len())])
                    .collect();
                for i in 0..ctx.len() {
                    for c in 0..ctx.candidates[i].len() {
                        let mut by_id = [0.0; NUM_FEATURES];
                        let mut by_idx = [0.0; NUM_FEATURES];
                        net.region_local_features(
                            i,
                            ctx.candidates[i][c],
                            |k| ctx.candidates[k][r_state[k]],
                            |k| events[k],
                            &mut by_id,
                        );
                        net.region_local_features_indexed(
                            i,
                            c,
                            &r_state,
                            |k| events[k],
                            &mut by_idx,
                        );
                        for k in 0..NUM_FEATURES {
                            assert_eq!(
                                by_id[k].to_bits(),
                                by_idx[k].to_bits(),
                                "feature {k} differs at site {i} cand {c} ({structure:?})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn adapters_expose_expected_shapes() {
        let (space, config) = setup();
        let recs = random_walk(&space, 10, 5);
        let ctx = SequenceContext::build(&space, &config, &recs, &[]);
        let weights = Weights::uniform(1.0);
        let net = CoupledNetwork::new(&ctx, &weights);
        let events = vec![MobilityEvent::Stay; ctx.len()];
        let rs = RegionSites {
            net: &net,
            events: &events,
        };
        assert_eq!(rs.num_sites(), 10);
        for i in 0..10 {
            assert_eq!(rs.num_candidates(i), ctx.candidates[i].len());
        }
        let regions: Vec<RegionId> = (0..ctx.len()).map(|i| ctx.candidates[i][0]).collect();
        let es = EventSites {
            net: &net,
            regions: &regions,
        };
        assert_eq!(es.num_sites(), 10);
        assert_eq!(es.num_candidates(3), 2);
        // Potentials are finite.
        let state = vec![0usize; 10];
        for i in 0..10 {
            assert!(rs.local_log_potential(i, 0, &state).is_finite());
            assert!(es.local_log_potential(i, 1, &state).is_finite());
        }
    }

    #[test]
    fn zero_weights_make_all_labelings_equal() {
        let (space, config) = setup();
        let recs = random_walk(&space, 8, 9);
        let ctx = SequenceContext::build(&space, &config, &recs, &[]);
        let weights = Weights::zeros();
        let net = CoupledNetwork::new(&ctx, &weights);
        let regions: Vec<RegionId> = (0..ctx.len()).map(|i| ctx.candidates[i][0]).collect();
        let events = vec![MobilityEvent::Pass; ctx.len()];
        assert_eq!(net.total_energy(&regions, &events), 0.0);
    }
}
