//! wall-clock fixture: clock reads on the kernel path.

pub fn timed() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos() as u64
}

pub fn stamped() -> u64 {
    let _now = std::time::SystemTime::now();
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _t0 = std::time::Instant::now();
    }
}
