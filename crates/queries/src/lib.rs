//! Semantics-oriented top-k queries over annotated m-semantics (§V-B4).
//!
//! * [`SemanticsStore`] — per-object m-semantics sequences,
//! * [`tk_prq`] — **Top-k Popular Region Query**: the `k` regions from a
//!   query set with the most visits (a visit = a stay event overlapping the
//!   query time interval),
//! * [`tk_frpq`] — **Top-k Frequent Region Pair Query**: the `k` region
//!   pairs most frequently visited by the same object.
//!
//! Ties are broken by region id so results are deterministic.

#![deny(missing_docs)]

use ism_indoor::RegionId;
use ism_mobility::{MobilityEvent, MobilitySemantics, TimePeriod};
use std::collections::HashMap;

/// M-semantics of a set of objects, the input to the semantic queries.
#[derive(Debug, Clone, Default)]
pub struct SemanticsStore {
    objects: Vec<(u64, Vec<MobilitySemantics>)>,
}

impl SemanticsStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one object's annotated m-semantics sequence.
    pub fn insert(&mut self, object_id: u64, semantics: Vec<MobilitySemantics>) {
        self.objects.push((object_id, semantics));
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterates over `(object, m-semantics)` entries.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, Vec<MobilitySemantics>)> {
        self.objects.iter()
    }

    /// All visits (stay m-semantics overlapping `qt`) of an object,
    /// restricted to the query region set.
    fn visits<'q>(
        &self,
        entry: &'q [MobilitySemantics],
        query: &'q [RegionId],
        qt: &'q TimePeriod,
    ) -> impl Iterator<Item = RegionId> + 'q {
        entry.iter().filter_map(move |ms| {
            (ms.event == MobilityEvent::Stay
                && ms.period.overlaps(qt)
                && query.contains(&ms.region))
            .then_some(ms.region)
        })
    }
}

/// Top-k Popular Region Query: the `k` regions of `query` with the most
/// visits within `qt`, with visit counts, ordered by count descending then
/// region id.
pub fn tk_prq(
    store: &SemanticsStore,
    query: &[RegionId],
    k: usize,
    qt: TimePeriod,
) -> Vec<(RegionId, usize)> {
    let mut counts: HashMap<RegionId, usize> = HashMap::new();
    for (_, semantics) in store.iter() {
        for region in store.visits(semantics, query, &qt) {
            *counts.entry(region).or_insert(0) += 1;
        }
    }
    let mut ranked: Vec<(RegionId, usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

/// Top-k Frequent Region Pair Query: the `k` unordered region pairs from
/// `query × query` that the most objects visited (stayed at both) within
/// `qt`, with object counts.
pub fn tk_frpq(
    store: &SemanticsStore,
    query: &[RegionId],
    k: usize,
    qt: TimePeriod,
) -> Vec<((RegionId, RegionId), usize)> {
    let mut counts: HashMap<(RegionId, RegionId), usize> = HashMap::new();
    for (_, semantics) in store.iter() {
        // Distinct visited regions of this object.
        let mut visited: Vec<RegionId> = Vec::new();
        for region in store.visits(semantics, query, &qt) {
            if !visited.contains(&region) {
                visited.push(region);
            }
        }
        visited.sort_unstable();
        for i in 0..visited.len() {
            for j in i + 1..visited.len() {
                *counts.entry((visited[i], visited[j])).or_insert(0) += 1;
            }
        }
    }
    let mut ranked: Vec<((RegionId, RegionId), usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use MobilityEvent::{Pass, Stay};

    fn ms(region: u32, start: f64, end: f64, event: MobilityEvent) -> MobilitySemantics {
        MobilitySemantics {
            region: RegionId(region),
            period: TimePeriod::new(start, end),
            event,
        }
    }

    fn sample_store() -> SemanticsStore {
        let mut store = SemanticsStore::new();
        // Object 1 stays in R0 and R1, passes R2.
        store.insert(
            1,
            vec![
                ms(0, 0.0, 100.0, Stay),
                ms(2, 100.0, 110.0, Pass),
                ms(1, 110.0, 200.0, Stay),
            ],
        );
        // Object 2 stays in R0 twice and R2 once.
        store.insert(
            2,
            vec![
                ms(0, 0.0, 50.0, Stay),
                ms(2, 60.0, 80.0, Stay),
                ms(0, 90.0, 120.0, Stay),
            ],
        );
        // Object 3 only passes.
        store.insert(3, vec![ms(0, 0.0, 300.0, Pass)]);
        store
    }

    #[test]
    fn prq_counts_stays_only() {
        let store = sample_store();
        let query: Vec<RegionId> = (0..3).map(RegionId).collect();
        let qt = TimePeriod::new(0.0, 300.0);
        let top = tk_prq(&store, &query, 3, qt);
        // R0: obj1 once + obj2 twice = 3 visits; R2: 1; R1: 1.
        assert_eq!(top[0], (RegionId(0), 3));
        assert_eq!(top.len(), 3);
        assert!(top[1..].iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn prq_respects_time_interval() {
        let store = sample_store();
        let query: Vec<RegionId> = (0..3).map(RegionId).collect();
        // Only the tail: object 1's R1 stay and object 2's second R0 stay.
        let top = tk_prq(&store, &query, 3, TimePeriod::new(115.0, 300.0));
        assert!(top.contains(&(RegionId(1), 1)));
        assert!(top.contains(&(RegionId(0), 1)));
        assert!(!top.iter().any(|&(r, _)| r == RegionId(2)));
    }

    #[test]
    fn prq_respects_query_set() {
        let store = sample_store();
        let top = tk_prq(
            &store,
            &[RegionId(1), RegionId(2)],
            5,
            TimePeriod::new(0.0, 300.0),
        );
        assert!(!top.iter().any(|&(r, _)| r == RegionId(0)));
    }

    #[test]
    fn frpq_counts_objects_per_pair() {
        let store = sample_store();
        let query: Vec<RegionId> = (0..3).map(RegionId).collect();
        let top = tk_frpq(&store, &query, 5, TimePeriod::new(0.0, 300.0));
        // Object 1 visited {R0, R1}; object 2 visited {R0, R2}.
        assert!(top.contains(&((RegionId(0), RegionId(1)), 1)));
        assert!(top.contains(&((RegionId(0), RegionId(2)), 1)));
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn frpq_counts_object_once_per_pair() {
        let mut store = SemanticsStore::new();
        // One object visits R0 and R1 repeatedly: the pair still counts 1.
        store.insert(
            7,
            vec![
                ms(0, 0.0, 10.0, Stay),
                ms(1, 20.0, 30.0, Stay),
                ms(0, 40.0, 50.0, Stay),
                ms(1, 60.0, 70.0, Stay),
            ],
        );
        let query = vec![RegionId(0), RegionId(1)];
        let top = tk_frpq(&store, &query, 5, TimePeriod::new(0.0, 100.0));
        assert_eq!(top, vec![((RegionId(0), RegionId(1)), 1)]);
    }

    #[test]
    fn empty_store_returns_empty() {
        let store = SemanticsStore::new();
        assert!(store.is_empty());
        let query = vec![RegionId(0)];
        assert!(tk_prq(&store, &query, 3, TimePeriod::new(0.0, 1.0)).is_empty());
        assert!(tk_frpq(&store, &query, 3, TimePeriod::new(0.0, 1.0)).is_empty());
    }

    #[test]
    fn deterministic_tie_breaking() {
        let store = sample_store();
        let query: Vec<RegionId> = (0..3).map(RegionId).collect();
        let a = tk_prq(&store, &query, 3, TimePeriod::new(0.0, 300.0));
        let b = tk_prq(&store, &query, 3, TimePeriod::new(0.0, 300.0));
        assert_eq!(a, b);
        // R1 and R2 both have one visit: lower id first.
        assert_eq!(a[1].0, RegionId(1));
        assert_eq!(a[2].0, RegionId(2));
    }
}
