//! # indoor-semantics
//!
//! A full reproduction of *"Indoor Mobility Semantics Annotation Using
//! Coupled Conditional Markov Networks"* (Li, Lu, Cheema, Shou, Chen —
//! ICDE 2020) as a Rust workspace.
//!
//! This façade crate re-exports the public API of every workspace member so
//! downstream users can depend on a single crate:
//!
//! * [`geometry`] — 2-D kernel (circle–rectangle intersection areas, turns).
//! * [`indoor`] — floorplans, partitions/doors, semantic regions,
//!   accessibility graph and minimum indoor walking distance (MIWD).
//! * [`mobility`] — random-waypoint indoor mobility simulator, positioning
//!   error models, p-sequence preprocessing.
//! * [`cluster`] — ST-DBSCAN spatio-temporal clustering.
//! * [`optim`] — L-BFGS with line search.
//! * [`pgm`] — probabilistic graphical model toolkit (HMM, linear-chain CRF,
//!   Gibbs/ICM inference).
//! * [`runtime`] — deterministic scoped-thread worker pool (item-ordered
//!   `run` / `run_with`, commutative `map_reduce`) backing the batch
//!   annotation and query engines.
//! * [`c2mn`] — the paper's coupled conditional Markov network: feature
//!   functions, alternate learning (Algorithm 1), joint decoding,
//!   label-and-merge, and all structural variants.
//! * [`baselines`] — SMoT, HMM+DC, SAPDV, SAPDA.
//! * [`queries`] — TkPRQ / TkFRPQ top-k semantic queries: flat sequential
//!   reference plus the sharded, time-bucket-indexed parallel engine.
//! * [`eval`] — RA/EA/CA/PA metrics, splits, cross-validation.
//!
//! ## Quickstart
//!
//! ```
//! use indoor_semantics::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. Build a small synthetic venue and simulate labelled mobility data.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let venue = BuildingGenerator::small_office().generate(&mut rng).unwrap();
//! let dataset = Dataset::generate(
//!     "demo",
//!     &venue,
//!     SimulationConfig::quick(),
//!     PositioningConfig::synthetic(8.0, 2.0),
//!     None,
//!     4,
//!     &mut rng,
//! );
//!
//! // 2. Train the coupled model on ground-truth labels.
//! let config = C2mnConfig::quick_test();
//! let model = C2mn::train(&venue, &dataset.sequences, &config, &mut rng).unwrap();
//!
//! // 3. Annotate a sequence into m-semantics.
//! let records: Vec<PositioningRecord> = dataset.sequences[0].positioning().collect();
//! let annotated = model.annotate(&records, &mut rng);
//! for ms in &annotated {
//!     println!(
//!         "{:?} during [{}, {}] at region {}",
//!         ms.event, ms.period.start, ms.period.end, ms.region.0
//!     );
//! }
//! assert!(!annotated.is_empty());
//! ```

#![deny(missing_docs)]

pub use ism_baselines as baselines;
pub use ism_c2mn as c2mn;
pub use ism_cluster as cluster;
pub use ism_eval as eval;
pub use ism_geometry as geometry;
pub use ism_indoor as indoor;
pub use ism_mobility as mobility;
pub use ism_optim as optim;
pub use ism_pgm as pgm;
pub use ism_queries as queries;
pub use ism_runtime as runtime;

/// Convenience prelude importing the most frequently used types.
pub mod prelude {
    pub use ism_baselines::{HmmDc, SapDa, SapDv, Smot};
    pub use ism_c2mn::{sequence_seed, BatchAnnotator, C2mn, C2mnConfig, ModelStructure};
    pub use ism_cluster::{DensityClass, StDbscan, StDbscanParams};
    pub use ism_eval::{combined_accuracy, perfect_accuracy, LabelAccuracy};
    pub use ism_geometry::{Circle, Point2, Rect};
    pub use ism_indoor::{BuildingGenerator, IndoorSpace, PartitionId, RegionId};
    pub use ism_mobility::{
        Dataset, MobilityEvent, MobilitySemantics, PositioningConfig, PositioningRecord,
        SimulationConfig, Simulator,
    };
    pub use ism_queries::{
        shard_of, tk_frpq, tk_frpq_sharded, tk_prq, tk_prq_sharded, QuerySet, SemanticsStore,
        ShardedSemanticsStore, ShardedStoreBuilder,
    };
    pub use ism_runtime::WorkerPool;
}
