//! Semantic query throughput: queries/second of the sharded TkPRQ / TkFRPQ
//! engine at 1, 2 and 4 worker threads, plus the flat full-scan reference.
//!
//! Besides the usual criterion console report, the bench writes
//! `BENCH_queries.json` at the repository root so CI can archive the perf
//! trajectory across commits (the query-side companion of
//! `BENCH_annotate.json`). In `--test` (smoke) mode each configuration runs
//! once and the JSON carries coarse single-run estimates.

use criterion::Criterion;
use ism_indoor::RegionId;
use ism_mobility::{MobilityEvent, MobilitySemantics, TimePeriod};
use ism_queries::{
    tk_frpq, tk_frpq_sharded, tk_prq, tk_prq_sharded, SemanticsStore, ShardedSemanticsStore,
};
use ism_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const NUM_OBJECTS: u64 = 1500;
const NUM_REGIONS: u32 = 120;
const SHARDS: usize = 16;
const K: usize = 20;
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_queries.json");

/// A synthetic store standing in for a day of annotated mall traffic:
/// `NUM_OBJECTS` timelines of stays/passes over `NUM_REGIONS` regions
/// spanning [0, 86400].
fn workload_store() -> SemanticsStore {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let mut store = SemanticsStore::new();
    for object in 0..NUM_OBJECTS {
        let mut t = rng.random_range(0.0..3600.0);
        let mut timeline = Vec::new();
        while t < 86_400.0 {
            let duration = rng.random_range(30.0..1800.0);
            timeline.push(MobilitySemantics {
                region: RegionId(rng.random_range(0..NUM_REGIONS)),
                period: TimePeriod::new(t, t + duration),
                event: if rng.random_bool(0.6) {
                    MobilityEvent::Stay
                } else {
                    MobilityEvent::Pass
                },
            });
            t += duration + rng.random_range(10.0..600.0);
        }
        store.insert(object, timeline);
    }
    store
}

/// One TkPRQ + one TkFRPQ over a two-hour window and a 60-region query set
/// (≈ half the venue, like the paper's 101-of-202 setup).
fn run_pair(store: &ShardedSemanticsStore, query: &[RegionId], qt: TimePeriod, pool: &WorkerPool) {
    black_box(tk_prq_sharded(store, query, K, qt, pool));
    black_box(tk_frpq_sharded(store, query, K, qt, pool));
}

fn main() {
    let mut c = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args();

    let flat = workload_store();
    let sharded = ShardedSemanticsStore::from_store(&flat, SHARDS);
    let query: Vec<RegionId> = (0..NUM_REGIONS / 2).map(RegionId).collect();
    let qt = TimePeriod::new(36_000.0, 43_200.0);

    // Flat full-scan reference (one TkPRQ + one TkFRPQ, single core).
    let mut flat_qps = None;
    c.bench_function("queries/flat_full_scan_pair", |b| {
        b.iter(|| {
            black_box(tk_prq(black_box(&flat), &query, K, qt));
            black_box(tk_frpq(black_box(&flat), &query, K, qt));
        })
    });
    if let Some(ns) = c.last_estimate_ns() {
        flat_qps = Some(2.0 / (ns / 1e9));
    }

    let mut throughputs: Vec<(usize, f64)> = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = WorkerPool::new(threads);
        c.bench_function(&format!("queries/sharded_pair_{threads}_threads"), |b| {
            b.iter(|| run_pair(black_box(&sharded), &query, qt, &pool))
        });
        if let Some(ns) = c.last_estimate_ns() {
            throughputs.push((threads, 2.0 / (ns / 1e9)));
        }
    }

    write_report(&sharded, flat_qps, &throughputs);
}

/// Emits `BENCH_queries.json` (hand-rolled JSON: the vendored serde does
/// not serialize).
fn write_report(
    store: &ShardedSemanticsStore,
    flat_qps: Option<f64>,
    throughputs: &[(usize, f64)],
) {
    // Speedups are relative to the measured 1-thread sharded run; when a
    // CLI filter skipped it, report `null` rather than a made-up baseline.
    let baseline = throughputs
        .iter()
        .find(|&&(threads, _)| threads == 1)
        .map(|&(_, qps)| qps);
    let entries: Vec<String> = throughputs
        .iter()
        .map(|&(threads, qps)| {
            let speedup = baseline.map_or("null".to_string(), |base| format!("{:.3}", qps / base));
            format!(
                "    {{\"threads\": {threads}, \"queries_per_sec\": {qps:.3}, \
                 \"speedup_vs_1_thread\": {speedup}}}"
            )
        })
        .collect();
    let flat = flat_qps.map_or("null".to_string(), |qps| format!("{qps:.3}"));
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"query_throughput\",\n  \"workload\": \"synthetic_day\",\n  \
         \"num_objects\": {},\n  \"num_postings\": {},\n  \"shards\": {},\n  \
         \"k\": {K},\n  \"host_parallelism\": {available},\n  \
         \"flat_full_scan_queries_per_sec\": {flat},\n  \"results\": [\n{}\n  ]\n}}\n",
        store.len(),
        store.num_postings(),
        store.num_shards(),
        entries.join(",\n")
    );
    match std::fs::write(OUT_PATH, &json) {
        Ok(()) => println!("wrote {OUT_PATH}"),
        Err(e) => eprintln!("could not write {OUT_PATH}: {e}"),
    }
}
