//! Accessibility door graph and shortest indoor walking paths.
//!
//! Following Lu et al. [17], the door graph has one node per door; two doors
//! are adjacent when they open into a common partition, with edge weight
//! equal to the intra-partition Euclidean distance between the door
//! positions (staircase doors additionally carry their own traversal cost).
//! Door-to-door shortest distances are precomputed with repeated Dijkstra
//! runs, exactly as the paper precomputes "shortest indoor distances between
//! doors" to speed up MIWD evaluation.

use crate::{Door, DoorId, DoorKind, Partition};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A planned indoor path: total length plus the door sequence to traverse.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedPath {
    /// Total walking distance in metres.
    pub length: f64,
    /// Doors traversed, in order (empty when start and goal share a
    /// partition).
    pub doors: Vec<DoorId>,
}

/// The accessibility graph over doors with precomputed all-pairs distances.
#[derive(Debug, Clone)]
pub struct DoorGraph {
    /// Number of doors.
    n: usize,
    /// CSR-style adjacency: `adj_off[d] .. adj_off[d+1]` indexes `adj`.
    adj_off: Vec<u32>,
    /// (neighbour door, edge weight) pairs.
    adj: Vec<(DoorId, f32)>,
    /// Dense all-pairs door-to-door distance matrix (f32 to halve memory, as
    /// positioning noise dwarfs the rounding error). `f32::INFINITY` when
    /// unreachable.
    dist: Vec<f32>,
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversed comparison; distances are never NaN.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl DoorGraph {
    /// Builds the door graph from the partition and door tables and
    /// precomputes all-pairs door distances.
    pub fn build(partitions: &[Partition], doors: &[Door]) -> Self {
        let n = doors.len();
        // Collect edges: doors sharing a partition.
        let mut edges: Vec<Vec<(DoorId, f32)>> = vec![Vec::new(); n];
        for part in partitions {
            for (i, &da) in part.doors.iter().enumerate() {
                for &db in part.doors.iter().skip(i + 1) {
                    let a = &doors[da.index()];
                    let b = &doors[db.index()];
                    let w = a.position.distance(b.position) as f32;
                    edges[da.index()].push((db, w));
                    edges[db.index()].push((da, w));
                }
            }
        }
        // Staircase doors additionally connect "through themselves": the cost
        // of walking the stairs is modelled on the door's incident edges by
        // adding the traversal cost to every edge touching the door.
        for d in doors {
            if d.kind == DoorKind::Staircase && d.traversal_cost > 0.0 {
                let idx = d.id.index();
                let half = (d.traversal_cost * 0.5) as f32;
                for e in &mut edges[idx] {
                    e.1 += half;
                }
                for (other, list) in edges.iter_mut().enumerate() {
                    if other == idx {
                        continue;
                    }
                    for e in list.iter_mut() {
                        if e.0 == d.id {
                            e.1 += half;
                        }
                    }
                }
            }
        }

        let mut adj_off = Vec::with_capacity(n + 1);
        let mut adj = Vec::new();
        adj_off.push(0u32);
        for list in &edges {
            adj.extend_from_slice(list);
            adj_off.push(adj.len() as u32);
        }

        let mut graph = DoorGraph {
            n,
            adj_off,
            adj,
            dist: Vec::new(),
        };
        graph.dist = graph.all_pairs();
        graph
    }

    /// Number of door nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no doors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn neighbours(&self, d: usize) -> &[(DoorId, f32)] {
        let s = self.adj_off[d] as usize;
        let e = self.adj_off[d + 1] as usize;
        &self.adj[s..e]
    }

    /// Single-source Dijkstra over the door graph.
    ///
    /// `out` is resized to the door count and filled with distances
    /// (`f64::INFINITY` when unreachable); `prev` (when provided) receives
    /// predecessor doors for path reconstruction.
    pub fn dijkstra(&self, source: DoorId, out: &mut Vec<f64>, mut prev: Option<&mut Vec<u32>>) {
        out.clear();
        out.resize(self.n, f64::INFINITY);
        if let Some(p) = prev.as_deref_mut() {
            p.clear();
            p.resize(self.n, u32::MAX);
        }
        if source.index() >= self.n {
            return;
        }
        let mut heap = BinaryHeap::new();
        out[source.index()] = 0.0;
        heap.push(HeapEntry {
            dist: 0.0,
            node: source.0,
        });
        while let Some(HeapEntry { dist, node }) = heap.pop() {
            let u = node as usize;
            if dist > out[u] {
                continue;
            }
            for &(v, w) in self.neighbours(u) {
                let nd = dist + w as f64;
                if nd < out[v.index()] {
                    out[v.index()] = nd;
                    if let Some(p) = prev.as_deref_mut() {
                        p[v.index()] = node;
                    }
                    heap.push(HeapEntry {
                        dist: nd,
                        node: v.0,
                    });
                }
            }
        }
    }

    fn all_pairs(&self) -> Vec<f32> {
        let mut dist = vec![f32::INFINITY; self.n * self.n];
        let mut row = Vec::new();
        for s in 0..self.n {
            self.dijkstra(DoorId(s as u32), &mut row, None);
            let base = s * self.n;
            for (t, &d) in row.iter().enumerate() {
                dist[base + t] = d as f32;
            }
        }
        dist
    }

    /// Precomputed door-to-door shortest walking distance.
    #[inline]
    pub fn door_distance(&self, a: DoorId, b: DoorId) -> f64 {
        if a == b {
            return 0.0;
        }
        self.dist[a.index() * self.n + b.index()] as f64
    }

    /// Shortest door sequence between two doors, reconstructed on demand.
    pub fn door_path(&self, from: DoorId, to: DoorId) -> Option<Vec<DoorId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut dist = Vec::new();
        let mut prev = Vec::new();
        self.dijkstra(from, &mut dist, Some(&mut prev));
        if !dist[to.index()].is_finite() {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to.index();
        while cur != from.index() {
            let p = prev[cur];
            if p == u32::MAX {
                return None;
            }
            cur = p as usize;
            path.push(DoorId(cur as u32));
        }
        path.reverse();
        Some(path)
    }

    /// Approximate memory footprint of the precomputed structures in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.dist.len() * std::mem::size_of::<f32>()
            + self.adj.len() * std::mem::size_of::<(DoorId, f32)>()
            + self.adj_off.len() * std::mem::size_of::<u32>()
    }

    /// Whether every door can reach every other door.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.dist[..self.n].iter().all(|d| d.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionId, RegionId};
    use ism_geometry::{Point2, Rect};

    /// Three partitions in a row: A - d0 - B - d1 - C, doors 4 m apart.
    fn line_world() -> (Vec<Partition>, Vec<Door>) {
        let mk_part = |id: u32, x: f64, doors: Vec<DoorId>| Partition {
            id: PartitionId(id),
            floor: 0,
            rect: Rect::from_origin_size(x, 0.0, 4.0, 4.0),
            region: RegionId(0),
            doors,
        };
        let parts = vec![
            mk_part(0, 0.0, vec![DoorId(0)]),
            mk_part(1, 4.0, vec![DoorId(0), DoorId(1)]),
            mk_part(2, 8.0, vec![DoorId(1)]),
        ];
        let mk_door = |id: u32, x: f64, a: u32, b: u32| Door {
            id: DoorId(id),
            kind: DoorKind::Horizontal,
            position: Point2::new(x, 2.0),
            floor: 0,
            partitions: [PartitionId(a), PartitionId(b)],
            traversal_cost: 0.0,
        };
        let doors = vec![mk_door(0, 4.0, 0, 1), mk_door(1, 8.0, 1, 2)];
        (parts, doors)
    }

    #[test]
    fn door_distance_along_line() {
        let (parts, doors) = line_world();
        let g = DoorGraph::build(&parts, &doors);
        assert_eq!(g.len(), 2);
        assert!(g.is_connected());
        assert!((g.door_distance(DoorId(0), DoorId(1)) - 4.0).abs() < 1e-6);
        assert_eq!(g.door_distance(DoorId(0), DoorId(0)), 0.0);
    }

    #[test]
    fn door_path_reconstruction() {
        let (parts, doors) = line_world();
        let g = DoorGraph::build(&parts, &doors);
        let path = g.door_path(DoorId(0), DoorId(1)).unwrap();
        assert_eq!(path, vec![DoorId(0), DoorId(1)]);
    }

    #[test]
    fn staircase_cost_is_added() {
        let (mut parts, mut doors) = line_world();
        // Turn door 1 into a staircase with 10 m of stairs.
        doors[1].kind = DoorKind::Staircase;
        doors[1].traversal_cost = 10.0;
        parts[1].doors = vec![DoorId(0), DoorId(1)];
        let g = DoorGraph::build(&parts, &doors);
        // Edge d0-d1 was 4 m; the staircase adds half its cost per incidence
        // (it is incident once here), so distance becomes 4 + 5 = 9... and the
        // symmetric update applies once more from the other direction: total 4 + 10.
        let d = g.door_distance(DoorId(0), DoorId(1));
        assert!((d - 9.0).abs() < 1e-6 || (d - 14.0).abs() < 1e-6, "d={d}");
    }

    #[test]
    fn disconnected_components_reported() {
        let (mut parts, doors) = line_world();
        // Remove door 1 from partition 1 and 2: door 1 dangles alone.
        parts[1].doors = vec![DoorId(0)];
        parts[2].doors = vec![];
        let g = DoorGraph::build(&parts, &doors);
        assert!(!g.is_connected());
        assert!(g.door_distance(DoorId(0), DoorId(1)).is_infinite());
        assert_eq!(g.door_path(DoorId(0), DoorId(1)), None);
    }

    #[test]
    fn empty_graph() {
        let g = DoorGraph::build(&[], &[]);
        assert!(g.is_empty());
        assert!(g.is_connected());
    }
}
