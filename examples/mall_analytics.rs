//! Mall analytics: the business scenario from the paper's introduction.
//!
//! A mall operator wants (a) the most popular shops (TkPRQ), (b) shop
//! pairs frequently visited together (TkFRPQ), and (c) a shop's
//! *conversion rate* — among everyone who entered, how many stayed (the
//! stay/pass distinction that motivates m-semantics). Visitor streams
//! arrive through a `SemanticsEngine` ingest session, the way a live
//! positioning feed would.
//!
//! Run with: `cargo run --release --example mall_analytics`

use indoor_semantics::mobility::TimePeriod;
use indoor_semantics::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let venue = BuildingGenerator::mall().generate(&mut rng).unwrap();
    let dataset = Dataset::generate(
        "mall",
        &venue,
        SimulationConfig::quick(),
        PositioningConfig::wifi_mall(),
        None,
        40,
        &mut rng,
    );
    println!(
        "mall: {} shops, {} visitors, {} records",
        venue
            .regions()
            .iter()
            .filter(|r| r.is_destination())
            .count(),
        dataset.sequences.len(),
        dataset.stats().num_records
    );

    // Train on a subset with the observable Trainer session API: the
    // per-sequence MCMC sampling fans out over a worker pool (weights are
    // byte-identical for any thread count), and the observer hook watches
    // every outer iteration of Algorithm 1.
    let (train, _) = dataset.split(0.5, &mut rng);
    let pool = WorkerPool::with_available_parallelism();
    let outcome = Trainer::new(&venue, C2mnConfig::quick_test())
        .seed(11)
        .pool(&pool)
        .observer(|p| {
            println!(
                "  iter {:>2}/{} [{:?}] objective {:>9.3}  step {:.4}  ({:.2}s)",
                p.iteration, p.max_iter, p.chain, p.objective, p.step, p.iteration_seconds
            );
            TrainControl::Continue
        })
        .run(&train)
        .unwrap();
    println!(
        "trained on {} workers in {:.2}s ({} iterations, converged: {})",
        pool.threads(),
        outcome.report.train_seconds,
        outcome.report.iterations,
        outcome.report.converged
    );
    let engine = EngineBuilder::new()
        .shards(8)
        .base_seed(11)
        .queue_capacity(16)
        .build(outcome.model)
        .unwrap();
    let mut session = engine.ingest();
    for seq in &dataset.sequences {
        session.push(seq.object_id, seq.positioning().collect());
    }
    let ingested = session.seal();
    println!(
        "ingested {ingested} visitor sequences into {} objects across {} shards",
        engine.num_objects(),
        engine.num_shards()
    );

    // (a) Top-5 popular shops over the whole window.
    let shops: Vec<_> = venue
        .regions()
        .iter()
        .filter(|r| r.is_destination())
        .map(|r| r.id)
        .collect();
    let qt = TimePeriod::new(0.0, SimulationConfig::quick().duration);
    println!("\nTop-5 popular shops (TkPRQ):");
    for (region, visits) in engine.tk_prq(&shops, 5, qt) {
        println!("  {:<14} {visits} visits", venue.region(region).name);
    }

    // (b) Top-5 co-visited shop pairs.
    println!("\nTop-5 co-visited shop pairs (TkFRPQ):");
    for ((a, b), objects) in engine.tk_frpq(&shops, 5, qt) {
        println!(
            "  {:<14} + {:<14} {objects} shared visitors",
            venue.region(a).name,
            venue.region(b).name
        );
    }

    // (c) Conversion rate of the most popular shop: staying visitors vs
    // everyone whose annotated m-semantics touch the shop.
    if let Some((shop, _)) = engine.tk_prq(&shops, 1, qt).first().copied() {
        let mut stayed = 0usize;
        let mut entered = 0usize;
        for (_, semantics) in engine.store().iter() {
            let touched = semantics.iter().any(|ms| ms.region == shop);
            let converted = semantics
                .iter()
                .any(|ms| ms.region == shop && ms.event == MobilityEvent::Stay);
            entered += usize::from(touched);
            stayed += usize::from(converted);
        }
        println!(
            "\nconversion at {}: {stayed}/{entered} visitors stayed ({:.0}%)",
            venue.region(shop).name,
            100.0 * stayed as f64 / entered.max(1) as f64
        );
    }
}
