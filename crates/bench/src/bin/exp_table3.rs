//! Table III: statistics of the (simulated) real-like mall dataset.

use ism_bench::{mall_dataset, print_table, Scale};

fn main() {
    let scale = Scale::from_env();
    let (space, dataset) = mall_dataset(&scale, 1);
    let stats = dataset.stats();
    let rows = vec![
        vec!["sequences".into(), format!("{}", stats.num_sequences)],
        vec!["records".into(), format!("{}", stats.num_records)],
        vec![
            "avg records / sequence".into(),
            format!("{:.2}", stats.avg_records_per_sequence),
        ],
        vec![
            "avg duration / sequence (s)".into(),
            format!("{:.1}", stats.avg_duration),
        ],
        vec![
            "avg sampling rate (Hz)".into(),
            format!("{:.4}", stats.avg_sampling_rate),
        ],
        vec![
            "semantic regions".into(),
            format!("{}", space.regions().len()),
        ],
        vec![
            "indoor partitions".into(),
            format!("{}", space.partitions().len()),
        ],
        vec!["doors".into(), format!("{}", space.doors().len())],
        vec![
            "topology memory (MB)".into(),
            format!("{:.1}", space.topology_memory_bytes() as f64 / 1e6),
        ],
    ];
    print_table(
        "Table III — mall dataset statistics (simulated stand-in)",
        &["statistic", "value"],
        &rows,
    );
}
