//! Numerically stable log-space helpers.

use rand::Rng;

/// Computes `log Σ exp(xᵢ)` without overflow.
///
/// Returns `f64::NEG_INFINITY` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

/// Samples an index from the categorical distribution proportional to
/// `exp(log_weights)`.
///
/// Entries of `f64::NEG_INFINITY` have probability zero. Panics on an empty
/// slice or when every weight is `-∞`.
pub fn sample_from_log_weights<R: Rng + ?Sized>(log_weights: &[f64], rng: &mut R) -> usize {
    assert!(!log_weights.is_empty(), "empty categorical distribution");
    let m = log_weights
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        m.is_finite(),
        "categorical distribution has no finite weight"
    );
    let total: f64 = log_weights.iter().map(|&w| (w - m).exp()).sum();
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in log_weights.iter().enumerate() {
        u -= (w - m).exp();
        if u <= 0.0 {
            return i;
        }
    }
    log_weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_sum_exp_matches_naive_for_small_values() {
        let xs: [f64; 3] = [0.1, -0.5, 1.2];
        let naive: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_survives_large_values() {
        let xs = [1000.0, 1000.0];
        assert!((log_sum_exp(&xs) - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        let xs = [-1000.0, -1000.0];
        assert!((log_sum_exp(&xs) - (-1000.0 + 2.0f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn sampling_follows_distribution() {
        let lw = [0.0f64.ln(), 1.0f64.ln(), 3.0f64.ln()]; // probs 0, 1/4, 3/4
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[sample_from_log_weights(&lw, &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        let p2 = counts[2] as f64 / 4000.0;
        assert!((p2 - 0.75).abs() < 0.05, "p2 = {p2}");
    }

    #[test]
    fn neg_inf_entries_never_sampled() {
        let lw = [f64::NEG_INFINITY, 0.0, f64::NEG_INFINITY];
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(sample_from_log_weights(&lw, &mut rng), 1);
        }
    }
}
