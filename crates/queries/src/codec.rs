//! Delta + varint posting codec.
//!
//! Posting lists store three numbers per visit: the start time, the end
//! time, and the visiting object id. Raw, that is 24 bytes per posting.
//! The codec shrinks sorted runs of postings losslessly:
//!
//! * Timestamps map to **order-preserving u64 bit patterns**
//!   ([`ordered_bits`]): for finite `a ≤ b`, `ordered_bits(a) ≤
//!   ordered_bits(b)`, and the mapping round-trips every bit of the f64.
//!   Within a run sorted by start time, consecutive starts therefore
//!   delta-encode as small non-negative integers, and each end encodes as
//!   its (non-negative) offset from its own start.
//! * Deltas and object ids serialize as **LEB128 varints** ([`write_varint`]
//!   / [`read_varint`]): 7 payload bits per byte, continuation bit on top,
//!   so nearby timestamps and small ids take 1–5 bytes instead of 8.
//!
//! Every run restarts its delta chain with an absolute first start, which
//! is what lets the time-bucket index decode any bucket without touching
//! the ones before it. Encode → decode is the identity on any finite
//! posting run — pinned by the property tests below.

/// Appends `v` to `buf` as an LEB128 varint (7 bits per byte, little
/// endian, high bit = continuation).
#[inline]
pub(crate) fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Reads the varint at `buf[*pos..]`, advancing `pos` past it.
#[inline]
// analyzer: allow(lib-panic) callers only pass offsets produced by the matching encoder over the same buffer
pub(crate) fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        v |= u64::from(byte & 0x7F) << shift;
        if byte < 0x80 {
            return v;
        }
        shift += 7;
    }
}

/// Maps an f64 to a u64 whose unsigned order matches the f64 total order
/// (the `total_cmp` order: negative values reversed, sign bit flipped for
/// non-negatives). Round-trips through [`from_ordered_bits`] exactly.
#[inline]
pub(crate) fn ordered_bits(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`ordered_bits`].
#[inline]
pub(crate) fn from_ordered_bits(b: u64) -> f64 {
    if b >> 63 == 1 {
        f64::from_bits(b & !(1 << 63))
    } else {
        f64::from_bits(!b)
    }
}

/// ZigZag-maps a signed delta to an unsigned varint payload (small
/// magnitudes of either sign stay small). A stay's end is numerically ≥
/// its start, but bit-wise the offset can still be negative (`end = -0.0`,
/// `start = 0.0` orders below it), so end offsets go through ZigZag rather
/// than assuming non-negativity.
#[inline]
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_round_trips_boundaries() {
        let mut buf = Vec::new();
        let values = [0, 1, 0x7F, 0x80, 0x3FFF, 0x4000, u32::MAX as u64, u64::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn ordered_bits_is_monotone_on_samples() {
        let xs = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            3.75,
            86_400.0,
            f64::INFINITY,
        ];
        for w in xs.windows(2) {
            assert!(
                ordered_bits(w[0]) <= ordered_bits(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        for &x in &xs {
            assert_eq!(from_ordered_bits(ordered_bits(x)).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn zigzag_round_trips_boundaries() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small.
        assert!(zigzag(-3) < 8);
        assert!(zigzag(3) < 8);
    }

    proptest! {
        #[test]
        fn zigzag_round_trips(v in i64::MIN..i64::MAX) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }

        #[test]
        fn varint_round_trips(v in 0u64..u64::MAX) {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_varint(&buf, &mut pos), v);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn ordered_bits_round_trip_and_order(a in -1e12f64..1e12, b in -1e12f64..1e12) {
            prop_assert_eq!(from_ordered_bits(ordered_bits(a)).to_bits(), a.to_bits());
            prop_assert_eq!(ordered_bits(a) <= ordered_bits(b), a.total_cmp(&b) != std::cmp::Ordering::Greater);
        }
    }
}
