//! TkPRQ / TkFRPQ evaluation: flat sequential reference and sharded
//! map-reduce fan-out.
//!
//! Both paths rank `(key, count)` pairs by count descending then key
//! ascending, and the sharded path merges per-shard partials by plain
//! summation — so for any shard count and any thread count the sharded
//! result is byte-identical to the flat sequential reference.

use ism_indoor::RegionId;
use ism_mobility::{MobilityEvent, TimePeriod};
use ism_runtime::WorkerPool;
use std::collections::HashMap;

use crate::store::{SemanticsStore, ShardedSemanticsStore};

/// A query region set with O(log n) membership tests.
///
/// Built once per query call from the caller's region slice: sorted,
/// deduplicated, membership by binary search — replacing the O(|query|)
/// linear `contains` the flat scan used to run per record.
#[derive(Debug, Clone, Default)]
pub struct QuerySet {
    ids: Vec<RegionId>,
}

impl QuerySet {
    /// Builds a query set from an arbitrary (unsorted, possibly duplicated)
    /// region slice.
    pub fn new(query: &[RegionId]) -> Self {
        let mut ids = query.to_vec();
        ids.sort_unstable();
        ids.dedup();
        QuerySet { ids }
    }

    /// Whether `region` is in the query set.
    #[inline]
    pub fn contains(&self, region: RegionId) -> bool {
        self.ids.binary_search(&region).is_ok()
    }

    /// The distinct query regions, ascending.
    pub fn iter(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.ids.iter().copied()
    }

    /// Number of distinct query regions.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the query set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Ranks counted keys by count descending then key ascending, truncated to
/// `k` — the shared deterministic ranking of both queries, both engines,
/// the batch path and the standing-query path.
pub(crate) fn rank<K: Ord + Copy + std::hash::Hash>(
    counts: HashMap<K, usize>,
    k: usize,
) -> Vec<(K, usize)> {
    let mut ranked: Vec<(K, usize)> = counts.into_iter().collect();
    ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

/// Top-k Popular Region Query: the `k` regions of `query` with the most
/// visits within `qt`, with visit counts, ordered by count descending then
/// region id.
///
/// Flat sequential reference — scans every record of `store`. The indexed
/// parallel equivalent is [`tk_prq_sharded`].
pub fn tk_prq(
    store: &SemanticsStore,
    query: &[RegionId],
    k: usize,
    qt: TimePeriod,
) -> Vec<(RegionId, usize)> {
    let qs = QuerySet::new(query);
    // An empty query set can match nothing; skip the scan.
    if qs.is_empty() {
        return Vec::new();
    }
    let mut counts: HashMap<RegionId, usize> = HashMap::new();
    for (_, semantics) in store.iter() {
        for ms in semantics {
            if ms.event == MobilityEvent::Stay && ms.period.overlaps(&qt) && qs.contains(ms.region)
            {
                *counts.entry(ms.region).or_insert(0) += 1;
            }
        }
    }
    rank(counts, k)
}

/// Top-k Frequent Region Pair Query: the `k` unordered region pairs from
/// `query × query` that the most objects visited (stayed at both) within
/// `qt`, with object counts.
///
/// Flat sequential reference — scans every record of `store`. The indexed
/// parallel equivalent is [`tk_frpq_sharded`].
pub fn tk_frpq(
    store: &SemanticsStore,
    query: &[RegionId],
    k: usize,
    qt: TimePeriod,
) -> Vec<((RegionId, RegionId), usize)> {
    let qs = QuerySet::new(query);
    // Pairs need two distinct query regions; skip the scan otherwise.
    if qs.len() < 2 {
        return Vec::new();
    }
    let mut counts: HashMap<(RegionId, RegionId), usize> = HashMap::new();
    let mut visited: Vec<RegionId> = Vec::new();
    for (_, semantics) in store.iter() {
        // Distinct visited regions of this object: collect every
        // qualifying visit, then sort + dedup (the old per-visit
        // `visited.contains` scan was O(v²)).
        visited.clear();
        visited.extend(semantics.iter().filter_map(|ms| {
            (ms.event == MobilityEvent::Stay && ms.period.overlaps(&qt) && qs.contains(ms.region))
                .then_some(ms.region)
        }));
        visited.sort_unstable();
        visited.dedup();
        // analyzer: allow(lib-panic) `i < j < visited.len()` by the loop bounds
        for i in 0..visited.len() {
            for j in i + 1..visited.len() {
                *counts.entry((visited[i], visited[j])).or_insert(0) += 1;
            }
        }
    }
    rank(counts, k)
}

/// [`tk_prq`] over a sharded store: a [`QueryBatch`](crate::QueryBatch) of
/// one — workers evaluate shard partials off the posting index, partial
/// counts merge by summation, and the merged counts rank exactly like the
/// flat reference. Empty or unmatched query sets return without touching
/// the shards, and small stores evaluate on the calling thread (the batch
/// dispatch heuristics; neither changes any result).
pub fn tk_prq_sharded(
    store: &ShardedSemanticsStore,
    query: &[RegionId],
    k: usize,
    qt: TimePeriod,
    pool: &WorkerPool,
) -> Vec<(RegionId, usize)> {
    let mut batch = crate::QueryBatch::new();
    batch.tk_prq(query, k, qt);
    // analyzer: allow(lib-panic) `run` answers each of the batch's queries in kind — a one-PRQ batch yields one PRQ
    let answer = batch.run(store, pool).pop().expect("one answer per query");
    // analyzer: allow(lib-panic) same batch-kind invariant as the line above
    answer.into_prq().expect("a PRQ answers as PRQ")
}

/// [`tk_frpq`] over a sharded store: a [`QueryBatch`](crate::QueryBatch)
/// of one — per-shard pair partials (objects are hashed whole into one
/// shard, so shard partials sum to the global answer) merged and ranked
/// exactly like the flat reference, with the same batch dispatch
/// heuristics as [`tk_prq_sharded`].
pub fn tk_frpq_sharded(
    store: &ShardedSemanticsStore,
    query: &[RegionId],
    k: usize,
    qt: TimePeriod,
    pool: &WorkerPool,
) -> Vec<((RegionId, RegionId), usize)> {
    let mut batch = crate::QueryBatch::new();
    batch.tk_frpq(query, k, qt);
    // analyzer: allow(lib-panic) `run` answers each of the batch's queries in kind — a one-FRPQ batch yields one FRPQ
    let answer = batch.run(store, pool).pop().expect("one answer per query");
    // analyzer: allow(lib-panic) same batch-kind invariant as the line above
    answer.into_frpq().expect("an FRPQ answers as FRPQ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_set_sorts_dedups_and_searches() {
        let qs = QuerySet::new(&[RegionId(5), RegionId(1), RegionId(5), RegionId(3)]);
        assert_eq!(qs.len(), 3);
        assert!(!qs.is_empty());
        assert!(qs.contains(RegionId(1)) && qs.contains(RegionId(3)) && qs.contains(RegionId(5)));
        assert!(!qs.contains(RegionId(2)) && !qs.contains(RegionId(6)));
        let ids: Vec<RegionId> = qs.iter().collect();
        assert_eq!(ids, vec![RegionId(1), RegionId(3), RegionId(5)]);
    }

    #[test]
    fn rank_orders_by_count_then_key() {
        let counts: HashMap<u32, usize> = [(3, 2), (1, 2), (2, 5), (9, 1)].into_iter().collect();
        assert_eq!(rank(counts, 3), vec![(2, 5), (1, 2), (3, 2)]);
    }
}
