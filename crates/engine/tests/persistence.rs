//! Engine durability pins: snapshot + warm restart byte-exactness, seal
//! log replay (not re-annotation), torn-tail recovery, and typed errors
//! on corrupt artifacts.

use ism_c2mn::{C2mn, C2mnConfig, Weights};
use ism_engine::{log_path, EngineBuilder, EngineError, SemanticsEngine};
use ism_indoor::{BuildingGenerator, IndoorSpace, RegionId};
use ism_mobility::{Dataset, PositioningConfig, PositioningRecord, SimulationConfig, TimePeriod};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn setup() -> (IndoorSpace, Vec<(u64, Vec<PositioningRecord>)>) {
    let mut rng = StdRng::seed_from_u64(1);
    let space = BuildingGenerator::small_office()
        .generate(&mut rng)
        .unwrap();
    let dataset = Dataset::generate(
        "persist",
        &space,
        SimulationConfig::quick(),
        PositioningConfig::synthetic(8.0, 1.5),
        None,
        8,
        &mut rng,
    );
    let stream = dataset
        .sequences
        .iter()
        .map(|s| (s.object_id, s.positioning().collect()))
        .collect();
    (space, stream)
}

fn model(space: &IndoorSpace) -> C2mn<'_> {
    C2mn::from_weights(space, C2mnConfig::quick_test(), Weights::uniform(1.0))
}

fn engine(space: &IndoorSpace, threads: usize) -> SemanticsEngine<'_> {
    EngineBuilder::new()
        .threads(threads)
        .shards(4)
        .base_seed(42)
        .build(model(space))
        .unwrap()
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ism-engine-persistence-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn shard_contents(
    engine: &SemanticsEngine<'_>,
) -> Vec<Vec<(u64, Vec<ism_mobility::MobilitySemantics>)>> {
    let store = engine.store();
    (0..store.num_shards())
        .map(|s| {
            store
                .iter_shard(s)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect()
        })
        .collect()
}

#[test]
fn snapshot_reopens_byte_identically() {
    let (space, stream) = setup();
    let path = test_dir("roundtrip").join("engine.ism");
    let first = engine(&space, 2);
    let mut s = first.ingest();
    s.push_batch(stream.iter().cloned());
    s.seal();
    first.save_snapshot(&path).unwrap();
    assert!(first.has_seal_log());

    let (reopened, report) = EngineBuilder::new().threads(2).open(&path, &space).unwrap();
    assert_eq!(report.snapshot_objects, first.num_objects());
    assert_eq!(report.replayed_frames, 0);
    assert_eq!(report.replayed_entries, 0);
    assert!(!report.truncated_tail);
    assert_eq!(report.next_sequence_index, first.sequences_ingested());
    assert_eq!(reopened.base_seed(), first.base_seed());
    assert_eq!(reopened.num_shards(), first.num_shards());
    assert_eq!(reopened.sequences_ingested(), first.sequences_ingested());
    assert_eq!(shard_contents(&reopened), shard_contents(&first));
    // The reopened model is the same model, bit for bit.
    assert_eq!(
        reopened.model().weights().0.map(f64::to_bits),
        first.model().weights().0.map(f64::to_bits)
    );
    // Query answers agree byte for byte.
    let regions: Vec<RegionId> = space.regions().iter().map(|r| r.id).collect();
    let qt = TimePeriod::new(0.0, 1e9);
    assert_eq!(
        reopened.tk_prq(&regions, 5, qt),
        first.tk_prq(&regions, 5, qt)
    );
    assert_eq!(
        reopened.tk_frpq(&regions, 5, qt),
        first.tk_frpq(&regions, 5, qt)
    );
}

#[test]
fn seal_log_replays_instead_of_reannotating() {
    let (space, stream) = setup();
    let split = stream.len() / 2;
    let path = test_dir("replay").join("engine.ism");

    // Uninterrupted reference over the whole stream.
    let whole = engine(&space, 1);
    let mut s = whole.ingest();
    s.push_batch(stream.iter().cloned());
    s.seal();

    // "Crashing" engine: snapshot after the first half, then two more
    // sealed chunks that only ever reach the append-log.
    let crashing = engine(&space, 2);
    let mut s = crashing.ingest();
    s.push_batch(stream[..split].iter().cloned());
    s.seal();
    crashing.save_snapshot(&path).unwrap();
    let mid = stream.len() - (stream.len() - split) / 2;
    for chunk in [&stream[split..mid], &stream[mid..]] {
        let mut s = crashing.ingest();
        s.push_batch(chunk.iter().cloned());
        s.seal();
    }
    assert!(crashing.has_seal_log());
    assert!(crashing.log_error().is_none());
    drop(crashing); // crash: nothing after the snapshot was re-saved

    let (recovered, report) = EngineBuilder::new().threads(3).open(&path, &space).unwrap();
    assert!(report.snapshot_objects <= split);
    assert_eq!(report.replayed_frames, 2, "one log frame per seal");
    assert_eq!(report.replayed_entries, stream.len() - split);
    assert!(!report.truncated_tail);
    assert_eq!(report.next_sequence_index, stream.len() as u64);
    // Replay reconstructs the sealed store byte-identically to the
    // engine that never crashed — no sequence was decoded twice.
    assert_eq!(shard_contents(&recovered), shard_contents(&whole));
}

#[test]
fn reopened_engine_continues_the_stream_byte_exactly() {
    let (space, stream) = setup();
    let split = stream.len() / 2;
    let path = test_dir("continue").join("engine.ism");

    let whole = engine(&space, 2);
    let mut s = whole.ingest();
    s.push_batch(stream.iter().cloned());
    s.seal();

    let first = engine(&space, 1);
    let mut s = first.ingest();
    s.push_batch(stream[..split].iter().cloned());
    s.seal();
    first.save_snapshot(&path).unwrap();
    drop(first);

    // The resumed "process" may run with any thread count and chunking:
    // seeds continue from the persisted sequence index. Each run gets its
    // own copy of the artifacts — a resumed engine appends to its log.
    for threads in [1, 3] {
        let copy = path.with_file_name(format!("engine-{threads}.ism"));
        std::fs::copy(&path, &copy).unwrap();
        std::fs::copy(log_path(&path), log_path(&copy)).unwrap();
        let (resumed, _) = EngineBuilder::new()
            .threads(threads)
            .open(&copy, &space)
            .unwrap();
        assert_eq!(resumed.sequences_ingested(), split as u64);
        for chunk in stream[split..].chunks(3) {
            let mut s = resumed.ingest();
            s.push_batch(chunk.iter().cloned());
            s.seal();
        }
        assert_eq!(
            shard_contents(&resumed),
            shard_contents(&whole),
            "threads = {threads}"
        );
    }
}

#[test]
fn torn_log_tail_is_truncated_and_recovered() {
    let (space, stream) = setup();
    let split = stream.len() - 2;
    let path = test_dir("torn").join("engine.ism");

    let crashing = engine(&space, 2);
    let mut s = crashing.ingest();
    s.push_batch(stream[..split].iter().cloned());
    s.seal();
    crashing.save_snapshot(&path).unwrap();
    let mut s = crashing.ingest();
    s.push_batch(stream[split..].iter().cloned());
    s.seal();
    drop(crashing);

    // Tear the last frame: the crash happened mid-append.
    let lpath = log_path(&path);
    let intact = std::fs::read(&lpath).unwrap();
    let torn_len = intact.len() - 5;
    let mut torn = intact[..torn_len].to_vec();
    torn.extend_from_slice(&[0xDE, 0xAD]);
    std::fs::write(&lpath, &torn).unwrap();

    let (recovered, report) = EngineBuilder::new().threads(2).open(&path, &space).unwrap();
    assert!(report.truncated_tail);
    assert_eq!(report.replayed_frames, 0, "the only frame was torn");
    assert_eq!(report.next_sequence_index, split as u64);
    // The torn bytes are gone from disk: the log holds exactly its header
    // again, ready for this process's frames.
    assert!(std::fs::metadata(&lpath).unwrap().len() < torn_len as u64);

    // The recovered engine re-ingests what the tail lost and seals —
    // appending a fresh frame to the truncated log...
    let mut s = recovered.ingest();
    s.push_batch(stream[split..].iter().cloned());
    s.seal();
    assert!(recovered.log_error().is_none());
    drop(recovered);

    // ...which a third process replays cleanly.
    let (third, report) = EngineBuilder::new().open(&path, &space).unwrap();
    assert!(!report.truncated_tail);
    assert_eq!(report.replayed_frames, 1);
    assert_eq!(report.replayed_entries, stream.len() - split);

    let whole = engine(&space, 1);
    let mut s = whole.ingest();
    s.push_batch(stream.iter().cloned());
    s.seal();
    assert_eq!(shard_contents(&third), shard_contents(&whole));
}

#[test]
fn corrupt_snapshots_fail_typed_never_panic() {
    let (space, stream) = setup();
    let dir = test_dir("corrupt");
    let path = dir.join("engine.ism");
    let first = engine(&space, 1);
    let mut s = first.ingest();
    s.push_batch(stream.iter().take(3).cloned());
    s.seal();
    first.save_snapshot(&path).unwrap();
    drop(first);
    let valid = std::fs::read(&path).unwrap();

    let corrupt = dir.join("corrupt.ism");
    let _ = std::fs::remove_file(log_path(&corrupt));
    for offset in (0..valid.len()).step_by(31) {
        let mut bytes = valid.clone();
        bytes[offset] ^= 0x20;
        std::fs::write(&corrupt, &bytes).unwrap();
        match EngineBuilder::new().open(&corrupt, &space) {
            Ok(_) => panic!("1-bit flip at {offset} went undetected"),
            Err(EngineError::Persist(_)) => {}
            Err(other) => panic!("unexpected error at {offset}: {other:?}"),
        }
    }
    for len in (0..valid.len()).step_by(53) {
        std::fs::write(&corrupt, &valid[..len]).unwrap();
        assert!(
            matches!(
                EngineBuilder::new().open(&corrupt, &space),
                Err(EngineError::Persist(_))
            ),
            "truncation to {len} bytes went undetected"
        );
    }

    // Missing snapshot: a typed I/O error.
    assert!(matches!(
        EngineBuilder::new().open(dir.join("missing.ism"), &space),
        Err(EngineError::Persist(_))
    ));
}
