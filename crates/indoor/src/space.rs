//! The assembled indoor space: lookups, MIWD, and route planning.

use crate::{
    Door, DoorId, DoorKind, FloorGrid, IndoorError, IndoorPoint, Partition, PartitionId, Region,
    RegionId,
};
use ism_geometry::{circle_rect_intersection_area, Circle, Point2, Rect};
use parking_lot::RwLock;

/// Maximum number of sample points per region used when estimating the
/// expected region-to-region MIWD `E[d_I(p, q)]`.
const REGION_SAMPLES: usize = 4;

/// A walkable route through the building.
#[derive(Debug, Clone)]
pub struct IndoorRoute {
    /// Waypoints with cumulative walking distance from the start.
    pub waypoints: Vec<(IndoorPoint, f64)>,
    /// Total walking distance (equals the last cumulative distance).
    pub total: f64,
}

/// An indoor venue: partitions, doors, semantic regions, and the derived
/// topology (door graph, spatial indexes, distance caches).
///
/// Construct via [`IndoorSpace::build`] (usually through
/// [`crate::BuildingGenerator`]).
#[derive(Debug)]
pub struct IndoorSpace {
    partitions: Vec<Partition>,
    doors: Vec<Door>,
    regions: Vec<Region>,
    grids: Vec<FloorGrid>,
    graph: crate::DoorGraph,
    /// Lazily filled region-to-region expected MIWD (NaN = not yet computed).
    region_dist: RwLock<Vec<f32>>,
    region_samples: Vec<Vec<IndoorPoint>>,
    floor_count: u16,
}

impl IndoorSpace {
    /// Assembles and validates an indoor space from its raw tables.
    ///
    /// `partitions[*].doors` is recomputed from the door table, so callers
    /// may leave it empty. Fails when doors or partitions dangle, or when
    /// partitions on a floor overlap with positive area.
    pub fn build(
        mut partitions: Vec<Partition>,
        doors: Vec<Door>,
        mut regions: Vec<Region>,
    ) -> Result<Self, IndoorError> {
        // Validate references.
        for (di, d) in doors.iter().enumerate() {
            for pid in d.partitions {
                if pid.index() >= partitions.len() {
                    return Err(IndoorError::DanglingDoor {
                        door: di,
                        partition: pid.index(),
                    });
                }
            }
        }
        for (pi, p) in partitions.iter().enumerate() {
            if p.region.index() >= regions.len() {
                return Err(IndoorError::DanglingRegion {
                    partition: pi,
                    region: p.region.index(),
                });
            }
        }
        // Overlap check per floor (O(n²) within a floor, done once at build).
        let mut by_floor: Vec<Vec<usize>> = Vec::new();
        for (pi, p) in partitions.iter().enumerate() {
            let f = p.floor as usize;
            if by_floor.len() <= f {
                by_floor.resize(f + 1, Vec::new());
            }
            by_floor[f].push(pi);
        }
        for floor_parts in &by_floor {
            for (i, &a) in floor_parts.iter().enumerate() {
                for &b in floor_parts.iter().skip(i + 1) {
                    let overlap = partitions[a]
                        .rect
                        .intersection(&partitions[b].rect)
                        .map_or(0.0, |r| r.area());
                    if overlap > 1e-6 {
                        return Err(IndoorError::OverlappingPartitions(a, b));
                    }
                }
            }
        }

        // Recompute partition door lists and region partition lists/areas.
        for p in &mut partitions {
            p.doors.clear();
        }
        for d in &doors {
            for pid in d.partitions {
                if !partitions[pid.index()].doors.contains(&d.id) {
                    partitions[pid.index()].doors.push(d.id);
                }
            }
        }
        for r in &mut regions {
            r.partitions.clear();
            r.area = 0.0;
        }
        for p in &partitions {
            let r = &mut regions[p.region.index()];
            r.partitions.push(p.id);
            r.area += p.rect.area();
            r.floor = partitions[r.partitions[0].index()].floor;
        }

        // Per-floor grids.
        let floor_count = by_floor.len() as u16;
        let mut grids = Vec::with_capacity(by_floor.len());
        for floor_parts in &by_floor {
            let refs: Vec<&Partition> = floor_parts.iter().map(|&i| &partitions[i]).collect();
            let bounds = refs
                .iter()
                .map(|p| p.rect)
                .reduce(|a, b| a.union(&b))
                .unwrap_or_else(|| Rect::from_origin_size(0.0, 0.0, 1.0, 1.0));
            grids.push(FloorGrid::build(bounds, 5.0, &refs));
        }

        let graph = crate::DoorGraph::build(&partitions, &doors);

        // Region sample points: partition centers, capped at REGION_SAMPLES.
        let region_samples: Vec<Vec<IndoorPoint>> = regions
            .iter()
            .map(|r| {
                let step = (r.partitions.len() / REGION_SAMPLES).max(1);
                r.partitions
                    .iter()
                    .step_by(step)
                    .take(REGION_SAMPLES)
                    .map(|pid| {
                        let p = &partitions[pid.index()];
                        IndoorPoint::new(p.floor, p.rect.center())
                    })
                    .collect()
            })
            .collect();

        let n_regions = regions.len();
        Ok(IndoorSpace {
            partitions,
            doors,
            regions,
            grids,
            graph,
            region_dist: RwLock::new(vec![f32::NAN; n_regions * n_regions]),
            region_samples,
            floor_count,
        })
    }

    /// All partitions, indexed densely by [`PartitionId`].
    #[inline]
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// All doors, indexed densely by [`DoorId`].
    #[inline]
    pub fn doors(&self) -> &[Door] {
        &self.doors
    }

    /// All semantic regions, indexed densely by [`RegionId`].
    #[inline]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of floors.
    #[inline]
    pub fn floor_count(&self) -> u16 {
        self.floor_count
    }

    /// The accessibility door graph.
    #[inline]
    pub fn door_graph(&self) -> &crate::DoorGraph {
        &self.graph
    }

    /// Looks up a partition by id.
    #[inline]
    pub fn partition(&self, id: PartitionId) -> &Partition {
        &self.partitions[id.index()]
    }

    /// Looks up a region by id.
    #[inline]
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Clamps a possibly-invalid floor value (e.g. produced by positioning
    /// noise) into the valid range.
    #[inline]
    pub fn clamp_floor(&self, floor: u16) -> u16 {
        floor.min(self.floor_count.saturating_sub(1))
    }

    /// The partition containing the point, if any.
    pub fn partition_at(&self, p: &IndoorPoint) -> Option<PartitionId> {
        let floor = p.floor as usize;
        if floor >= self.grids.len() {
            return None;
        }
        self.grids[floor]
            .candidates_at(p.xy)
            .iter()
            .copied()
            .find(|&pid| self.partitions[pid.index()].rect.contains(p.xy))
    }

    /// The semantic region containing the point, if any.
    #[inline]
    pub fn region_at(&self, p: &IndoorPoint) -> Option<RegionId> {
        self.partition_at(p)
            .map(|pid| self.partitions[pid.index()].region)
    }

    /// Nearest partition on the (clamped) floor of `p`, by Euclidean
    /// distance to the partition rectangle.
    pub fn nearest_partition(&self, p: &IndoorPoint) -> PartitionId {
        let floor = self.clamp_floor(p.floor) as usize;
        // Expand the search rectangle until candidates appear.
        let mut radius = 5.0;
        let mut candidates: Vec<PartitionId> = Vec::new();
        loop {
            candidates.clear();
            let query = Rect::new(p.xy, p.xy).inflate(radius);
            self.grids[floor].candidates_in_rect(&query, &mut candidates);
            if !candidates.is_empty() || radius > 1e5 {
                break;
            }
            radius *= 2.0;
        }
        if candidates.is_empty() {
            // Degenerate: fall back to scanning the floor.
            candidates = self
                .partitions
                .iter()
                .filter(|q| q.floor as usize == floor)
                .map(|q| q.id)
                .collect();
        }
        candidates
            .into_iter()
            .min_by(|&a, &b| {
                let da = self.partitions[a.index()].rect.distance_to_point(p.xy);
                let db = self.partitions[b.index()].rect.distance_to_point(p.xy);
                da.partial_cmp(&db).unwrap()
            })
            .expect("floor has at least one partition")
    }

    /// Nearest region (region of the nearest partition on the same floor).
    #[inline]
    pub fn nearest_region(&self, p: &IndoorPoint) -> RegionId {
        self.partitions[self.nearest_partition(p).index()].region
    }

    /// Appends all regions owning a partition on `p`'s (clamped) floor whose
    /// rectangle is within `radius` of `p`. Always yields at least one
    /// region (the nearest one).
    pub fn candidate_regions(&self, p: &IndoorPoint, radius: f64, out: &mut Vec<RegionId>) {
        out.clear();
        let floor = self.clamp_floor(p.floor) as usize;
        let query = Rect::new(p.xy, p.xy).inflate(radius);
        let mut parts: Vec<PartitionId> = Vec::new();
        self.grids[floor].candidates_in_rect(&query, &mut parts);
        for pid in parts {
            let part = &self.partitions[pid.index()];
            if part.rect.distance_to_point(p.xy) <= radius {
                let r = part.region;
                if !out.contains(&r) {
                    out.push(r);
                }
            }
        }
        if out.is_empty() {
            out.push(self.nearest_region(p));
        }
    }

    /// Area of the overlap between a positioning-uncertainty disk and a
    /// region, summed over the region's partitions on the disk's floor.
    ///
    /// This is the numerator of the paper's spatial matching feature `fsm`.
    pub fn region_circle_overlap(&self, region: RegionId, floor: u16, circle: Circle) -> f64 {
        let floor = self.clamp_floor(floor);
        self.regions[region.index()]
            .partitions
            .iter()
            .map(|pid| {
                let p = &self.partitions[pid.index()];
                if p.floor == floor {
                    circle_rect_intersection_area(circle, &p.rect)
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Minimum indoor walking distance (MIWD) between two indoor points.
    ///
    /// Points outside every partition are snapped to their nearest
    /// partition. Within one partition the MIWD is the Euclidean distance;
    /// otherwise it routes through the best pair of doors using the
    /// precomputed door-to-door matrix. Returns `f64::INFINITY` when the two
    /// partitions are not connected.
    pub fn miwd(&self, a: &IndoorPoint, b: &IndoorPoint) -> f64 {
        let pa = self
            .partition_at(a)
            .unwrap_or_else(|| self.nearest_partition(a));
        let pb = self
            .partition_at(b)
            .unwrap_or_else(|| self.nearest_partition(b));
        self.miwd_between_partitions(pa, a.xy, pb, b.xy)
    }

    /// MIWD given already-resolved partitions (hot-path variant that skips
    /// the point-location step).
    pub fn miwd_between_partitions(
        &self,
        pa: PartitionId,
        a: Point2,
        pb: PartitionId,
        b: Point2,
    ) -> f64 {
        if pa == pb {
            return a.distance(b);
        }
        let da = &self.partitions[pa.index()].doors;
        let db = &self.partitions[pb.index()].doors;
        let mut best = f64::INFINITY;
        for &d1 in da {
            let leg1 = self.doors[d1.index()].position.distance(a);
            if leg1 >= best {
                continue;
            }
            for &d2 in db {
                let mid = self.graph.door_distance(d1, d2);
                let leg3 = self.doors[d2.index()].position.distance(b);
                let total = leg1 + mid + leg3;
                if total < best {
                    best = total;
                }
            }
        }
        best
    }

    /// Expected MIWD between two regions, `E_{p∈ri, q∈rj}[d_I(p, q)]`,
    /// estimated over a small set of partition-center samples and cached.
    ///
    /// The diagonal is 0 by definition of the paper's space-transition
    /// feature (staying in the same region has no transition cost).
    pub fn region_expected_miwd(&self, ri: RegionId, rj: RegionId) -> f64 {
        if ri == rj {
            return 0.0;
        }
        let n = self.regions.len();
        let idx = ri.index() * n + rj.index();
        {
            let cache = self.region_dist.read();
            let v = cache[idx];
            if !v.is_nan() {
                return v as f64;
            }
        }
        let samples_i = &self.region_samples[ri.index()];
        let samples_j = &self.region_samples[rj.index()];
        let mut sum = 0.0;
        let mut count = 0usize;
        for p in samples_i {
            for q in samples_j {
                let d = self.miwd(p, q);
                if d.is_finite() {
                    sum += d;
                    count += 1;
                }
            }
        }
        let expected = if count > 0 {
            sum / count as f64
        } else {
            f64::INFINITY
        };
        // Store and return the f32-rounded value so repeated queries are
        // bit-identical to the first one (callers rely on determinism).
        let rounded = expected as f32;
        let mut cache = self.region_dist.write();
        cache[idx] = rounded;
        cache[rj.index() * n + ri.index()] = rounded;
        rounded as f64
    }

    /// Plans a walkable route between two indoor points.
    ///
    /// The route follows straight lines within partitions and passes through
    /// door positions; staircase doors contribute their traversal cost as
    /// extra distance while switching floors. Returns `None` when no route
    /// exists.
    pub fn plan_route(&self, from: IndoorPoint, to: IndoorPoint) -> Option<IndoorRoute> {
        let pa = self
            .partition_at(&from)
            .unwrap_or_else(|| self.nearest_partition(&from));
        let pb = self
            .partition_at(&to)
            .unwrap_or_else(|| self.nearest_partition(&to));
        if pa == pb {
            let total = from.xy.distance(to.xy);
            return Some(IndoorRoute {
                waypoints: vec![(from, 0.0), (to, total)],
                total,
            });
        }
        // Select the best door pair, mirroring `miwd_between_partitions`.
        let mut best: Option<(DoorId, DoorId, f64)> = None;
        for &d1 in &self.partitions[pa.index()].doors {
            let leg1 = self.doors[d1.index()].position.distance(from.xy);
            for &d2 in &self.partitions[pb.index()].doors {
                let mid = self.graph.door_distance(d1, d2);
                let total = leg1 + mid + self.doors[d2.index()].position.distance(to.xy);
                if best.is_none_or(|(_, _, t)| total < t) && total.is_finite() {
                    best = Some((d1, d2, total));
                }
            }
        }
        let (d1, d2, _) = best?;
        let door_seq = self.graph.door_path(d1, d2)?;

        let mut waypoints = vec![(from, 0.0)];
        let mut cum = 0.0;
        let mut cur_part = pa;
        let mut cur_pos = from;
        for did in door_seq {
            let door = &self.doors[did.index()];
            let next_part = door.other_side(cur_part)?;
            let arrive = IndoorPoint::new(self.partitions[cur_part.index()].floor, door.position);
            cum += cur_pos.xy.distance(door.position);
            waypoints.push((arrive, cum));
            let next_floor = self.partitions[next_part.index()].floor;
            if door.kind == DoorKind::Staircase {
                cum += door.traversal_cost;
            }
            let depart = IndoorPoint::new(next_floor, door.position);
            if next_floor != arrive.floor || door.kind == DoorKind::Staircase {
                waypoints.push((depart, cum));
            }
            cur_pos = depart;
            cur_part = next_part;
        }
        cum += cur_pos.xy.distance(to.xy);
        waypoints.push((to, cum));
        Some(IndoorRoute {
            waypoints,
            total: cum,
        })
    }

    /// Total memory consumed by precomputed topology structures, in bytes.
    pub fn topology_memory_bytes(&self) -> usize {
        self.graph.memory_bytes() + self.region_dist.read().len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DoorKind, RegionKind};

    /// Two rooms joined by a corridor:
    ///
    /// ```text
    ///  +----+----------+----+
    ///  | A  | corridor | B  |   all 0..10 in y
    ///  +----+----------+----+
    ///  x: 0..10, 10..30, 30..40
    /// ```
    fn two_rooms() -> IndoorSpace {
        let mk_part = |id: u32, x0: f64, x1: f64, region: u32| Partition {
            id: PartitionId(id),
            floor: 0,
            rect: Rect::new(Point2::new(x0, 0.0), Point2::new(x1, 10.0)),
            region: RegionId(region),
            doors: vec![],
        };
        let parts = vec![
            mk_part(0, 0.0, 10.0, 0),
            mk_part(1, 10.0, 30.0, 1),
            mk_part(2, 30.0, 40.0, 2),
        ];
        let mk_door = |id: u32, x: f64, a: u32, b: u32| Door {
            id: DoorId(id),
            kind: DoorKind::Horizontal,
            position: Point2::new(x, 5.0),
            floor: 0,
            partitions: [PartitionId(a), PartitionId(b)],
            traversal_cost: 0.0,
        };
        let doors = vec![mk_door(0, 10.0, 0, 1), mk_door(1, 30.0, 1, 2)];
        let mk_region = |id: u32, name: &str, kind| Region {
            id: RegionId(id),
            name: name.into(),
            kind,
            partitions: vec![],
            area: 0.0,
            floor: 0,
        };
        let regions = vec![
            mk_region(0, "roomA", RegionKind::Shop),
            mk_region(1, "hall", RegionKind::Corridor),
            mk_region(2, "roomB", RegionKind::Shop),
        ];
        IndoorSpace::build(parts, doors, regions).unwrap()
    }

    #[test]
    fn build_populates_derived_tables() {
        let s = two_rooms();
        assert_eq!(s.partitions()[0].doors, vec![DoorId(0)]);
        assert_eq!(s.partitions()[1].doors, vec![DoorId(0), DoorId(1)]);
        assert_eq!(s.region(RegionId(0)).area, 100.0);
        assert_eq!(s.region(RegionId(1)).area, 200.0);
        assert_eq!(s.floor_count(), 1);
    }

    #[test]
    fn point_location() {
        let s = two_rooms();
        let p = IndoorPoint::new(0, Point2::new(5.0, 5.0));
        assert_eq!(s.partition_at(&p), Some(PartitionId(0)));
        assert_eq!(s.region_at(&p), Some(RegionId(0)));
        let outside = IndoorPoint::new(0, Point2::new(-3.0, 5.0));
        assert_eq!(s.partition_at(&outside), None);
        assert_eq!(s.nearest_region(&outside), RegionId(0));
    }

    #[test]
    fn miwd_same_partition_is_euclidean() {
        let s = two_rooms();
        let a = IndoorPoint::new(0, Point2::new(1.0, 1.0));
        let b = IndoorPoint::new(0, Point2::new(4.0, 5.0));
        assert!((s.miwd(&a, &b) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn miwd_routes_through_doors() {
        let s = two_rooms();
        let a = IndoorPoint::new(0, Point2::new(5.0, 5.0)); // room A
        let b = IndoorPoint::new(0, Point2::new(35.0, 5.0)); // room B

        // Straight along y=5 through both doors: 5 + 20 + 5 = 30.
        assert!((s.miwd(&a, &b) - 30.0).abs() < 1e-9);
        // MIWD >= Euclidean.
        assert!(s.miwd(&a, &b) >= a.planar_distance(&b) - 1e-9);
    }

    #[test]
    fn miwd_is_symmetric() {
        let s = two_rooms();
        let a = IndoorPoint::new(0, Point2::new(2.0, 8.0));
        let b = IndoorPoint::new(0, Point2::new(38.0, 2.0));
        assert!((s.miwd(&a, &b) - s.miwd(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn region_expected_miwd_caches_and_is_symmetric() {
        let s = two_rooms();
        let d1 = s.region_expected_miwd(RegionId(0), RegionId(2));
        let d2 = s.region_expected_miwd(RegionId(2), RegionId(0));
        assert!((d1 - d2).abs() < 1e-9);
        assert!(d1 > 0.0 && d1.is_finite());
        assert_eq!(s.region_expected_miwd(RegionId(1), RegionId(1)), 0.0);
    }

    #[test]
    fn candidate_regions_cover_uncertainty() {
        let s = two_rooms();
        let p = IndoorPoint::new(0, Point2::new(9.0, 5.0)); // near A/corridor border
        let mut out = Vec::new();
        s.candidate_regions(&p, 3.0, &mut out);
        assert!(out.contains(&RegionId(0)));
        assert!(out.contains(&RegionId(1)));
        assert!(!out.contains(&RegionId(2)));
    }

    #[test]
    fn circle_overlap_splits_across_regions() {
        let s = two_rooms();
        let c = Circle::new(Point2::new(10.0, 5.0), 2.0);
        let a = s.region_circle_overlap(RegionId(0), 0, c);
        let h = s.region_circle_overlap(RegionId(1), 0, c);
        // Circle straddles the A/corridor boundary: halves match.
        assert!((a - h).abs() < 1e-9);
        assert!((a + h - c.area()).abs() < 1e-9);
    }

    #[test]
    fn route_planning_walks_through_doors() {
        let s = two_rooms();
        let from = IndoorPoint::new(0, Point2::new(5.0, 5.0));
        let to = IndoorPoint::new(0, Point2::new(35.0, 5.0));
        let route = s.plan_route(from, to).unwrap();
        assert!((route.total - 30.0).abs() < 1e-9);
        assert_eq!(route.waypoints.first().unwrap().0.xy, from.xy);
        assert_eq!(route.waypoints.last().unwrap().0.xy, to.xy);
        // Cumulative distances are monotone.
        for w in route.waypoints.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn route_total_matches_miwd() {
        let s = two_rooms();
        let from = IndoorPoint::new(0, Point2::new(3.0, 2.0));
        let to = IndoorPoint::new(0, Point2::new(39.0, 9.0));
        let route = s.plan_route(from, to).unwrap();
        assert!((route.total - s.miwd(&from, &to)).abs() < 1e-6);
    }

    #[test]
    fn build_rejects_overlapping_partitions() {
        let mk_part = |id: u32, x0: f64| Partition {
            id: PartitionId(id),
            floor: 0,
            rect: Rect::new(Point2::new(x0, 0.0), Point2::new(x0 + 10.0, 10.0)),
            region: RegionId(0),
            doors: vec![],
        };
        let parts = vec![mk_part(0, 0.0), mk_part(1, 5.0)];
        let regions = vec![Region {
            id: RegionId(0),
            name: "r".into(),
            kind: RegionKind::Shop,
            partitions: vec![],
            area: 0.0,
            floor: 0,
        }];
        let err = IndoorSpace::build(parts, vec![], regions).unwrap_err();
        assert_eq!(err, IndoorError::OverlappingPartitions(0, 1));
    }
}
