//! Standing dashboard: hold top-k queries open while visitors stream in.
//!
//! A mall dashboard shows "most popular shops" and "shops visited
//! together" all day. Re-running both queries from scratch after every
//! batch of arrivals re-pays the full index evaluation; a **standing
//! query** is registered once and folded forward incrementally from each
//! seal's summary — and stays byte-identical to the full re-run at every
//! seal. The same dashboard refresh also shows the two other read paths:
//! a [`QueryBatch`] evaluating several one-shot queries in a single shard
//! fan-out, and the engine's result cache serving repeats between seals.
//!
//! Run with: `cargo run --release --example standing_dashboard`

use indoor_semantics::mobility::TimePeriod;
use indoor_semantics::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    let venue = BuildingGenerator::mall().generate(&mut rng).unwrap();
    let dataset = Dataset::generate(
        "dashboard",
        &venue,
        SimulationConfig::quick(),
        PositioningConfig::wifi_mall(),
        None,
        30,
        &mut rng,
    );
    let model = C2mn::from_weights(&venue, C2mnConfig::quick_test(), Weights::uniform(1.0));
    let engine = EngineBuilder::new()
        .threads(2)
        .base_seed(23)
        .build(model)
        .unwrap();

    // The dashboard's two standing questions, open for the whole day.
    let shops: Vec<RegionId> = venue.regions().iter().map(|r| r.id).collect();
    let day = TimePeriod::new(0.0, 1e9);
    let popular = engine.standing_tk_prq(&shops, 5, day);
    let together = engine.standing_tk_frpq(&shops, 3, day);

    // Visitors arrive in waves; each seal publishes a batch and updates
    // both standing queries incrementally.
    for (wave, chunk) in dataset.sequences.chunks(10).enumerate() {
        let mut session = engine.ingest();
        session.push_batch(
            chunk
                .iter()
                .map(|s| (s.object_id, s.positioning().collect())),
        );
        session.seal();

        let top = engine.standing_prq_result(popular).unwrap();
        println!(
            "wave {wave}: {} objects sealed, top shops:",
            engine.num_objects()
        );
        for (region, visits) in &top {
            println!("  {region:?}: {visits} visits");
        }
        // The standing ranking equals a full re-run at every seal — the
        // determinism contract the standing_oracle suite pins.
        assert_eq!(top, engine.tk_prq(&shops, 5, day));
        assert_eq!(
            engine.standing_frpq_result(together).unwrap(),
            engine.tk_frpq(&shops, 3, day)
        );
    }

    // One-shot queries for the side panels, batched into a single shard
    // fan-out instead of one dispatch per query.
    let morning = TimePeriod::new(0.0, 43_200.0);
    let evening = TimePeriod::new(43_200.0, 1e9);
    let mut refresh = QueryBatch::new();
    refresh.tk_prq(&shops, 3, morning);
    refresh.tk_prq(&shops, 3, evening);
    refresh.tk_frpq(&shops, 3, morning);
    let answers = engine.run_batch(&refresh);
    println!(
        "side panels: {} answers from one fan-out (morning top: {:?})",
        answers.len(),
        answers[0].clone().into_prq().unwrap().first()
    );

    // Repeats between seals are served from the result cache.
    let before = engine.cache_stats();
    let _ = engine.tk_prq(&shops, 5, day); // cached by the assert above
    let after = engine.cache_stats();
    assert_eq!(after.hits, before.hits + 1);
    println!(
        "cache: {} entries, {} hits / {} misses",
        after.entries, after.hits, after.misses
    );

    // Everything above ran on the engine's persistent pool: its one
    // helper thread was spawned at construction and never again, and the
    // ingest waves and query fan-outs are all visible in the counters.
    let stats = engine.pool_stats();
    println!(
        "pool: {} thread spawned, {} fan-out + {} inline calls, {} items claimed, \
         {} async tasks, {} idle wakeups",
        stats.threads_spawned,
        stats.fanout_calls,
        stats.inline_calls,
        stats.items_claimed,
        stats.async_tasks,
        stats.idle_wakeups
    );
    assert_eq!(stats.threads_spawned, engine.threads() - 1);
    assert!(stats.tasks_executed() > 0, "no work reached the pool");
    assert!(
        stats.fanout_calls + stats.inline_calls > 0,
        "no blocking call dispatched"
    );
}
