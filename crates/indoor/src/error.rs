//! Error type for indoor-space construction and queries.

use std::fmt;

/// Errors raised while constructing or querying an indoor space.
#[derive(Debug, Clone, PartialEq)]
pub enum IndoorError {
    /// A door references a partition id outside the partition table.
    DanglingDoor {
        /// Offending door index.
        door: usize,
        /// The invalid partition index it references.
        partition: usize,
    },
    /// A partition references a region id outside the region table.
    DanglingRegion {
        /// Offending partition index.
        partition: usize,
        /// The invalid region index it references.
        region: usize,
    },
    /// Two partitions on the same floor overlap with positive area.
    OverlappingPartitions(usize, usize),
    /// The accessibility graph is disconnected; MIWD would be infinite
    /// between the two example partitions reported.
    Disconnected(usize, usize),
    /// A generator configuration is invalid (e.g. zero floors).
    InvalidConfig(String),
}

impl fmt::Display for IndoorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndoorError::DanglingDoor { door, partition } => {
                write!(f, "door {door} references unknown partition {partition}")
            }
            IndoorError::DanglingRegion { partition, region } => {
                write!(
                    f,
                    "partition {partition} references unknown region {region}"
                )
            }
            IndoorError::OverlappingPartitions(a, b) => {
                write!(f, "partitions {a} and {b} overlap with positive area")
            }
            IndoorError::Disconnected(a, b) => {
                write!(f, "no indoor path between partitions {a} and {b}")
            }
            IndoorError::InvalidConfig(msg) => write!(f, "invalid generator config: {msg}"),
        }
    }
}

impl std::error::Error for IndoorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = IndoorError::DanglingDoor {
            door: 3,
            partition: 99,
        };
        assert!(e.to_string().contains("door 3"));
        let e = IndoorError::InvalidConfig("zero floors".into());
        assert!(e.to_string().contains("zero floors"));
    }
}
