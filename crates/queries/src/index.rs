//! Per-shard posting index: region → time-bucketed, delta+varint-compressed
//! visit postings.
//!
//! A *visit* is one `Stay` m-semantics triple. The index inverts a shard's
//! objects into one posting list per region, sorted by visit start time,
//! overlaid with equi-width time buckets, and stored **compressed**: each
//! bucket is an independent delta chain (absolute first start, then
//! start-to-start deltas in order-preserving f64 bit space, ZigZag end
//! offsets, raw varint object ids — see [`crate::codec`]). A query with
//! interval `qt` decodes only the buckets that can contain an overlapping
//! visit instead of touching every record in the shard, and the whole list
//! costs a fraction of the 24 raw bytes per posting.

use ism_indoor::RegionId;
use ism_mobility::{MobilityEvent, MobilitySemantics, TimePeriod};
use std::collections::HashMap;

use crate::codec::{from_ordered_bits, ordered_bits, read_varint, unzigzag, write_varint, zigzag};
use crate::topk::QuerySet;

/// One visit posting: the visiting object and the stay interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Posting {
    pub object: u64,
    pub period: TimePeriod,
}

impl Posting {
    #[inline]
    fn overlaps(&self, qt: &TimePeriod) -> bool {
        self.period.overlaps(qt)
    }
}

/// Target number of postings per time bucket.
const POSTINGS_PER_BUCKET: usize = 16;

/// One region's visit postings: sorted by start time, bucketed, and
/// varint-compressed bucket by bucket.
///
/// `offsets` has one entry per bucket boundary: bucket `b` spans the
/// encoded bytes `offsets[b]..offsets[b + 1]`, each bucket restarting its
/// delta chain so it can be decoded without touching earlier buckets.
/// Bucket membership is `bucket_of(start)` — the same clamped floor
/// formula build and query both use, so the two sides can never disagree
/// about which bucket a boundary posting is in. A visit lasting at most
/// `max_duration` and overlapping `qt` must start in `[qt.start −
/// max_duration, qt.end]`, and `bucket_of` is monotone in `t`, so
/// sequentially decoding buckets `bucket_of(qt.start − max_duration) ..=
/// bucket_of(qt.end)` covers every qualifying visit; the per-posting
/// overlap filter rejects the rest.
#[derive(Debug, Clone)]
pub(crate) struct RegionPostings {
    data: Vec<u8>,
    num_postings: usize,
    max_duration: f64,
    t0: f64,
    width: f64,
    offsets: Vec<usize>,
}

impl RegionPostings {
    fn build(mut postings: Vec<Posting>) -> Self {
        // Total order (== numeric order on the finite times the stores
        // produce), so consecutive start-bit deltas are non-negative.
        postings.sort_unstable_by(|a, b| {
            (
                ordered_bits(a.period.start),
                ordered_bits(a.period.end),
                a.object,
            )
                .cmp(&(
                    ordered_bits(b.period.start),
                    ordered_bits(b.period.end),
                    b.object,
                ))
        });
        let max_duration = postings
            .iter()
            .map(|p| p.period.duration())
            .fold(0.0_f64, f64::max);
        let t0 = postings.first().map_or(0.0, |p| p.period.start);
        let t_last = postings.last().map_or(0.0, |p| p.period.start);
        let buckets = postings.len().div_ceil(POSTINGS_PER_BUCKET).max(1);
        let span = t_last - t0;
        // Degenerate spans (single start time) collapse to one bucket.
        let width = if span > 0.0 {
            span / buckets as f64
        } else {
            1.0
        };
        let mut this = RegionPostings {
            data: Vec::with_capacity(postings.len() * 8),
            num_postings: postings.len(),
            max_duration,
            t0,
            width,
            offsets: Vec::with_capacity(buckets + 1),
        };
        // offsets[b + 1] = first encoded byte past bucket b. bucket_of is
        // monotone over the sorted starts, so one forward walk suffices;
        // each bucket opens with an absolute start so decode can begin at
        // any bucket boundary.
        this.offsets.push(0);
        let mut i = 0;
        // analyzer: allow(lib-panic) `i < postings.len()` is checked by the while condition before every access
        for b in 0..buckets {
            let mut prev_start: Option<u64> = None;
            while i < postings.len() && this.bucket_of(postings[i].period.start, buckets) <= b {
                let p = &postings[i];
                let start_bits = ordered_bits(p.period.start);
                match prev_start {
                    None => write_varint(&mut this.data, start_bits),
                    Some(prev) => write_varint(&mut this.data, start_bits - prev),
                }
                let end_offset = ordered_bits(p.period.end).wrapping_sub(start_bits) as i64;
                write_varint(&mut this.data, zigzag(end_offset));
                write_varint(&mut this.data, p.object);
                prev_start = Some(start_bits);
                i += 1;
            }
            this.offsets.push(this.data.len());
        }
        this
    }

    fn num_buckets(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Encoded size in bytes (compression diagnostics; the raw equivalent
    /// is 24 bytes per posting).
    fn encoded_bytes(&self) -> usize {
        self.data.len()
    }

    /// The bucket whose range contains time `t`, clamped into
    /// `[0, buckets)`. The single bucket-assignment formula shared by
    /// [`RegionPostings::build`] and the candidate scan.
    #[inline]
    fn bucket_of(&self, t: f64, buckets: usize) -> usize {
        let b = ((t - self.t0) / self.width).floor();
        // Clamp in f64 before the usize cast (casts saturate, but clamping
        // keeps the arithmetic explicit and NaN-safe).
        b.clamp(0.0, (buckets - 1) as f64) as usize
    }

    /// Sequentially decodes every posting of buckets `lo..=hi` into `f`,
    /// in sorted order.
    // analyzer: allow(lib-panic) `offsets` has buckets+1 entries and callers clamp `hi` below buckets
    fn for_each_decoded(&self, lo: usize, hi: usize, mut f: impl FnMut(Posting)) {
        let mut pos = self.offsets[lo];
        for b in lo..=hi {
            let bucket_end = self.offsets[b + 1];
            let mut prev_start: Option<u64> = None;
            while pos < bucket_end {
                let start_bits = match prev_start {
                    None => read_varint(&self.data, &mut pos),
                    Some(prev) => prev + read_varint(&self.data, &mut pos),
                };
                let end_bits =
                    start_bits.wrapping_add(unzigzag(read_varint(&self.data, &mut pos)) as u64);
                let object = read_varint(&self.data, &mut pos);
                prev_start = Some(start_bits);
                f(Posting {
                    object,
                    period: TimePeriod::new(
                        from_ordered_bits(start_bits),
                        from_ordered_bits(end_bits),
                    ),
                });
            }
        }
    }

    /// Decodes every posting whose bucket can contain a visit overlapping
    /// `qt` into `f` — the candidate scan behind both queries.
    ///
    /// Out-of-range windows clamp to the nearest bucket rather than
    /// short-circuiting: the cost is one bucket's worth of filtered-out
    /// postings, and it keeps inclusive interval endpoints (`p.end ==
    /// qt.start` etc.) from ever being dropped by float edge arithmetic.
    fn for_each_candidate(&self, qt: &TimePeriod, f: impl FnMut(Posting)) {
        if self.num_postings == 0 {
            return;
        }
        let buckets = self.num_buckets();
        // qt.start − max_duration ≤ qt.end and bucket_of is monotone, so
        // lo ≤ hi always holds.
        let lo = self.bucket_of(qt.start - self.max_duration, buckets);
        let hi = self.bucket_of(qt.end, buckets);
        self.for_each_decoded(lo, hi, f);
    }

    /// Decodes the list back into its raw postings (sorted order), the
    /// hook for amortised per-region rebuilds: appended postings join the
    /// existing ones and [`RegionPostings::build`] re-sorts, re-buckets and
    /// re-encodes just this region.
    fn into_postings(self) -> Vec<Posting> {
        let mut postings = Vec::with_capacity(self.num_postings);
        if self.num_postings > 0 {
            self.for_each_decoded(0, self.num_buckets() - 1, |p| postings.push(p));
        }
        postings
    }

    /// Number of visits overlapping `qt`.
    pub fn count_overlapping(&self, qt: &TimePeriod) -> usize {
        let mut n = 0;
        self.for_each_candidate(qt, |p| {
            if p.overlaps(qt) {
                n += 1;
            }
        });
        n
    }

    /// Calls `f(object)` for every visit overlapping `qt` (one call per
    /// visit, not per distinct object).
    pub fn for_each_overlapping(&self, qt: &TimePeriod, mut f: impl FnMut(u64)) {
        self.for_each_candidate(qt, |p| {
            if p.overlaps(qt) {
                f(p.object);
            }
        });
    }
}

/// One shard's region → postings index.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardIndex {
    regions: HashMap<RegionId, RegionPostings>,
    num_postings: usize,
}

impl ShardIndex {
    /// Inverts a shard's `(object, m-semantics)` entries into per-region
    /// posting lists.
    pub fn build(objects: &[(u64, Vec<MobilitySemantics>)]) -> Self {
        let mut index = ShardIndex::default();
        index.append(objects);
        index
    }

    /// Merges the stays of additional `(object, m-semantics)` entries into
    /// the index without touching regions that receive no new posting.
    ///
    /// Regions that do receive postings are rebuilt from their combined
    /// old + new posting lists ([`RegionPostings::build`] re-sorts,
    /// re-buckets and re-encodes), so an index grown by any sequence of
    /// `append` calls is identical to one [`build`](ShardIndex::build)ed
    /// from scratch over the concatenated entries — the
    /// incremental-maintenance contract the `incremental_oracle` property
    /// suite pins.
    pub fn append(&mut self, objects: &[(u64, Vec<MobilitySemantics>)]) {
        let mut fresh: HashMap<RegionId, Vec<Posting>> = HashMap::new();
        for (object, semantics) in objects {
            for ms in semantics {
                if ms.event == MobilityEvent::Stay {
                    fresh.entry(ms.region).or_default().push(Posting {
                        object: *object,
                        period: ms.period,
                    });
                    self.num_postings += 1;
                }
            }
        }
        for (region, mut postings) in fresh {
            if let Some(existing) = self.regions.remove(&region) {
                let mut merged = existing.into_postings();
                merged.append(&mut postings);
                postings = merged;
            }
            self.regions.insert(region, RegionPostings::build(postings));
        }
    }

    /// Total visit postings in this shard.
    pub fn num_postings(&self) -> usize {
        self.num_postings
    }

    /// Total encoded bytes across this shard's posting lists.
    pub fn encoded_bytes(&self) -> usize {
        self.regions
            .values()
            .map(RegionPostings::encoded_bytes)
            .sum()
    }

    /// Whether `region` has at least one indexed visit posting.
    pub fn has_region(&self, region: RegionId) -> bool {
        self.regions.contains_key(&region)
    }

    /// Per-region visit counts within `qt`, restricted to `query`; only
    /// regions with at least one qualifying visit appear.
    pub fn prq_counts(&self, query: &QuerySet, qt: &TimePeriod) -> Vec<(RegionId, usize)> {
        let mut counts = Vec::new();
        for region in query.iter() {
            if let Some(postings) = self.regions.get(&region) {
                let n = postings.count_overlapping(qt);
                if n > 0 {
                    counts.push((region, n));
                }
            }
        }
        counts
    }

    /// Every `(object, region)` visit within `qt` restricted to `query`,
    /// sorted and deduplicated — the per-shard half of TkFRPQ and the
    /// initial state of a standing TkFRPQ.
    pub fn distinct_visits(&self, query: &QuerySet, qt: &TimePeriod) -> Vec<(u64, RegionId)> {
        let mut visits: Vec<(u64, RegionId)> = Vec::new();
        for region in query.iter() {
            if let Some(postings) = self.regions.get(&region) {
                postings.for_each_overlapping(qt, |object| visits.push((object, region)));
            }
        }
        visits.sort_unstable();
        visits.dedup();
        visits
    }

    /// Per-pair object counts within `qt`, restricted to `query`: each
    /// object contributes 1 to every unordered pair of distinct regions it
    /// stayed at. Objects are hashed whole into a single shard, so per-shard
    /// pair counts sum to the global answer.
    pub fn frpq_counts(
        &self,
        query: &QuerySet,
        qt: &TimePeriod,
    ) -> Vec<((RegionId, RegionId), usize)> {
        let visits = self.distinct_visits(query, qt);
        let mut counts: HashMap<(RegionId, RegionId), usize> = HashMap::new();
        let mut i = 0;
        // analyzer: allow(lib-panic) `a < b < j <= visits.len()` by the loop bounds and while condition
        while i < visits.len() {
            let object = visits[i].0;
            let mut j = i;
            while j < visits.len() && visits[j].0 == object {
                j += 1;
            }
            // visits[i..j] holds this object's distinct regions, ascending.
            for a in i..j {
                for b in a + 1..j {
                    *counts.entry((visits[a].1, visits[b].1)).or_insert(0) += 1;
                }
            }
            i = j;
        }
        // Emit in pair order: the counts accumulate in a HashMap, whose
        // iteration order is arbitrary and must never leak into output.
        let mut counts: Vec<_> = counts.into_iter().collect();
        counts.sort_unstable_by_key(|&(pair, _)| pair);
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posting(object: u64, start: f64, end: f64) -> Posting {
        Posting {
            object,
            period: TimePeriod::new(start, end),
        }
    }

    #[test]
    fn bucketed_count_matches_linear_scan() {
        // 100 postings with varied durations; counts must equal a full scan
        // for windows inside, straddling, and outside the data span.
        let postings: Vec<Posting> = (0..100)
            .map(|i| {
                let start = (i as f64 * 7.3) % 500.0;
                posting(i as u64, start, start + 1.0 + (i % 13) as f64 * 4.0)
            })
            .collect();
        let index = RegionPostings::build(postings.clone());
        for (qs, qe) in [
            (0.0, 500.0),
            (100.0, 120.0),
            (499.0, 600.0),
            (-50.0, -1.0),
            (600.0, 700.0),
            (250.0, 250.0),
        ] {
            let qt = TimePeriod::new(qs, qe);
            let want = postings.iter().filter(|p| p.overlaps(&qt)).count();
            assert_eq!(index.count_overlapping(&qt), want, "qt=[{qs},{qe}]");
        }
    }

    #[test]
    fn empty_and_single_posting_lists() {
        let empty = RegionPostings::build(Vec::new());
        assert_eq!(empty.count_overlapping(&TimePeriod::new(0.0, 1.0)), 0);
        assert_eq!(empty.encoded_bytes(), 0);
        let one = RegionPostings::build(vec![posting(3, 5.0, 9.0)]);
        assert_eq!(one.count_overlapping(&TimePeriod::new(0.0, 5.0)), 1);
        assert_eq!(one.count_overlapping(&TimePeriod::new(9.0, 12.0)), 1);
        assert_eq!(one.count_overlapping(&TimePeriod::new(9.1, 12.0)), 0);
    }

    #[test]
    fn bucket_edge_boundary_postings_are_not_dropped() {
        // Regression: 32 stays starting at 0,10,…,310 (2 buckets), the last
        // lasting exactly max_duration and ending exactly at qt.start. The
        // old candidate-range math computed lo == num_buckets for
        // qt = [315, 400] and returned no candidates, dropping a visit the
        // inclusive overlap rule counts.
        let postings: Vec<Posting> = (0..32)
            .map(|i| posting(i, i as f64 * 10.0, i as f64 * 10.0 + 5.0))
            .collect();
        let index = RegionPostings::build(postings.clone());
        for (qs, qe) in [(315.0, 400.0), (310.0, 310.0), (-20.0, 0.0), (0.0, 0.0)] {
            let qt = TimePeriod::new(qs, qe);
            let want = postings.iter().filter(|p| p.period.overlaps(&qt)).count();
            assert_eq!(index.count_overlapping(&qt), want, "qt=[{qs},{qe}]");
        }
    }

    #[test]
    fn encode_decode_is_identity_and_smaller_than_raw() {
        // Round trip through build → into_postings: exact f64 bits and
        // object ids survive, in sorted order; the encoding beats the
        // 24-byte raw posting layout on a realistic list.
        let mut postings: Vec<Posting> = (0..500)
            .map(|i| {
                let start = (i as f64 * 13.7) % 86_400.0 + 0.125;
                posting(i * 31 % 997, start, start + 30.0 + (i % 50) as f64 * 17.3)
            })
            .collect();
        let built = RegionPostings::build(postings.clone());
        assert!(
            built.encoded_bytes() < postings.len() * 24,
            "{} bytes for {} postings",
            built.encoded_bytes(),
            postings.len()
        );
        postings.sort_unstable_by(|a, b| {
            (
                ordered_bits(a.period.start),
                ordered_bits(a.period.end),
                a.object,
            )
                .cmp(&(
                    ordered_bits(b.period.start),
                    ordered_bits(b.period.end),
                    b.object,
                ))
        });
        let decoded = built.into_postings();
        assert_eq!(decoded.len(), postings.len());
        for (d, w) in decoded.iter().zip(&postings) {
            assert_eq!(d.object, w.object);
            assert_eq!(d.period.start.to_bits(), w.period.start.to_bits());
            assert_eq!(d.period.end.to_bits(), w.period.end.to_bits());
        }
    }

    #[test]
    fn append_matches_from_scratch_build() {
        // Entries split across three appends must index exactly like one
        // build over the concatenation: same counts for every probe window,
        // same posting total, untouched regions included.
        let entry = |object: u64, region: u32, start: f64, stay: bool| {
            (
                object,
                vec![MobilitySemantics {
                    region: RegionId(region),
                    period: TimePeriod::new(start, start + 5.0),
                    event: if stay {
                        MobilityEvent::Stay
                    } else {
                        MobilityEvent::Pass
                    },
                }],
            )
        };
        let all: Vec<(u64, Vec<MobilitySemantics>)> = (0..60)
            .map(|i| entry(i, (i % 4) as u32, (i as f64 * 11.0) % 300.0, i % 5 != 0))
            .collect();
        let reference = ShardIndex::build(&all);
        let mut grown = ShardIndex::build(&all[..20]);
        grown.append(&all[20..35]);
        grown.append(&all[35..35]); // empty append is a no-op
        grown.append(&all[35..]);
        assert_eq!(grown.num_postings(), reference.num_postings());
        let query = QuerySet::new(&(0..4).map(RegionId).collect::<Vec<_>>());
        for (qs, qe) in [(0.0, 300.0), (50.0, 60.0), (295.0, 400.0), (-10.0, 0.0)] {
            let qt = TimePeriod::new(qs, qe);
            let mut want = reference.prq_counts(&query, &qt);
            let mut got = grown.prq_counts(&query, &qt);
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "prq qt=[{qs},{qe}]");
            let mut want = reference.frpq_counts(&query, &qt);
            let mut got = grown.frpq_counts(&query, &qt);
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "frpq qt=[{qs},{qe}]");
        }
    }

    #[test]
    fn identical_start_times_collapse_to_one_bucket() {
        let index = RegionPostings::build((0..40).map(|i| posting(i, 10.0, 20.0)).collect());
        assert_eq!(index.count_overlapping(&TimePeriod::new(0.0, 100.0)), 40);
        assert_eq!(index.count_overlapping(&TimePeriod::new(21.0, 100.0)), 0);
    }

    #[test]
    fn has_region_tracks_stay_postings_only() {
        let entries = vec![(
            1u64,
            vec![
                MobilitySemantics {
                    region: RegionId(0),
                    period: TimePeriod::new(0.0, 5.0),
                    event: MobilityEvent::Stay,
                },
                MobilitySemantics {
                    region: RegionId(1),
                    period: TimePeriod::new(5.0, 6.0),
                    event: MobilityEvent::Pass,
                },
            ],
        )];
        let index = ShardIndex::build(&entries);
        assert!(index.has_region(RegionId(0)));
        assert!(!index.has_region(RegionId(1))); // pass-only region
        assert!(!index.has_region(RegionId(9)));
        assert!(index.encoded_bytes() > 0);
    }
}
