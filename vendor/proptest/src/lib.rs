//! Vendored, offline subset of `proptest`, tuned for reproducibility.
//!
//! Implements the slice of the proptest API this workspace uses —
//! `proptest!`, `prop_compose!`, `prop_assert!`/`prop_assert_eq!`,
//! [`Strategy`] over numeric ranges / tuples / `prop_map`, and
//! [`ProptestConfig::with_cases`] — on top of the vendored deterministic
//! `rand` crate.
//!
//! ## Determinism contract
//!
//! Unlike upstream proptest (which seeds from the OS), every run is fully
//! deterministic:
//!
//! * Case `i` of a test runs with seed `base + i`, where `base` is
//!   [`ProptestConfig::seed`] (default [`DEFAULT_BASE_SEED`]).
//! * `REPRO_SEED=<n>` overrides the base seed and `REPRO_CASES=<n>` the case
//!   count, so a failure printed as `seed = S` replays exactly with
//!   `REPRO_SEED=S REPRO_CASES=1`. (`PROPTEST_SEED`/`PROPTEST_CASES` are
//!   accepted as aliases.)
//! * A checked-in `proptest-regressions/seeds.txt` next to the crate's
//!   `Cargo.toml` (lines `test_name = seed`) is replayed *before* the fresh
//!   cases, pinning past failures forever.
//!
//! Shrinking is intentionally not implemented; the seed of the failing case
//! is reported instead, which is sufficient for a deterministic generator.

use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Base seed used when neither the config nor the environment pins one.
pub const DEFAULT_BASE_SEED: u64 = 0x1CDE_2020_C2F7;

/// A failed test case, produced by `prop_assert!` and friends.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of fresh random cases to run per test.
    pub cases: u32,
    /// Base seed; case `i` runs with seed `seed + i`.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            seed: DEFAULT_BASE_SEED,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` fresh cases from the default base seed.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

fn env_u64(names: &[&str]) -> Option<u64> {
    for name in names {
        if let Ok(raw) = std::env::var(name) {
            let raw = raw.trim();
            let parsed = if let Some(hex) = raw.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                raw.parse()
            };
            match parsed {
                Ok(v) => return Some(v),
                Err(_) => panic!("could not parse {name}={raw} as u64"),
            }
        }
    }
    None
}

/// Seeds pinned in `proptest-regressions/seeds.txt` for `test_name`.
///
/// File format: one `test_name = seed` per line (decimal or `0x` hex);
/// `#` starts a comment. The file lives next to the `Cargo.toml` of the
/// crate whose tests are running (`CARGO_MANIFEST_DIR`).
fn regression_seeds(test_name: &str) -> Vec<u64> {
    let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") else {
        return Vec::new();
    };
    let path = std::path::Path::new(&dir)
        .join("proptest-regressions")
        .join("seeds.txt");
    let Ok(contents) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in contents.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        let Some((name, seed)) = line.split_once('=') else {
            continue;
        };
        if name.trim() != test_name {
            continue;
        }
        let seed = seed.trim();
        let parsed = if let Some(hex) = seed.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            seed.parse()
        };
        match parsed {
            Ok(v) => seeds.push(v),
            Err(_) => panic!("{}: bad seed {seed:?} for {test_name}", path.display()),
        }
    }
    seeds
}

/// Drives one property test: regression seeds first, then fresh cases.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// Builds a runner for the test `name`, applying `REPRO_*` /
    /// `PROPTEST_*` environment overrides on top of `config`.
    pub fn new(mut config: ProptestConfig, name: &'static str) -> Self {
        if let Some(cases) = env_u64(&["REPRO_CASES", "PROPTEST_CASES"]) {
            config.cases = cases as u32;
        }
        if let Some(seed) = env_u64(&["REPRO_SEED", "PROPTEST_SEED"]) {
            config.seed = seed;
        }
        TestRunner { config, name }
    }

    /// Runs `test` against values generated by `strategy`, panicking with a
    /// replay recipe on the first failing case.
    pub fn run<S, F>(&self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let pinned = regression_seeds(self.name);
        let fresh = (0..u64::from(self.config.cases)).map(|i| self.config.seed.wrapping_add(i));
        for (source, seed) in pinned
            .into_iter()
            .map(|s| ("regression", s))
            .chain(fresh.map(|s| ("fresh", s)))
        {
            let mut rng = strategy::new_rng(seed);
            let value = strategy.generate(&mut rng);
            let outcome = catch_unwind(AssertUnwindSafe(|| (test)(value)));
            let failure = match outcome {
                Ok(Ok(())) => continue,
                Ok(Err(e)) => e.message,
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| panic.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    format!("panicked: {msg}")
                }
            };
            panic!(
                "property test `{}` failed ({source} case, seed = {seed}): {failure}\n\
                 replay with: REPRO_SEED={seed} REPRO_CASES=1 cargo test {}\n\
                 pin it by adding `{} = {seed}` to proptest-regressions/seeds.txt",
                self.name, self.name, self.name
            );
        }
    }
}

/// Prelude mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest, ProptestConfig,
        TestCaseError, TestRunner,
    };
}

/// Defines property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ [$config] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ([$config:expr] $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let runner = $crate::TestRunner::new($config, stringify!($name));
                let strategy = ($($strat,)+);
                runner.run(&strategy, |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Composes strategies into a named strategy-returning function.
/// Mirrors `proptest::prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($args:tt)*)
        ($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy::Map::new(($($strat,)+), move |($($pat,)+)| $body)
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?} != {:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn config_with_cases() {
        let c = ProptestConfig::with_cases(17);
        assert_eq!(c.cases, 17);
        assert_eq!(c.seed, crate::DEFAULT_BASE_SEED);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Generated range values respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        /// Tuple + prop_map composition works.
        #[test]
        fn mapped_tuple(v in (0u64..5, 0u64..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 8);
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0i32..10, b in 0i32..10) -> (i32, i32) {
            (a.min(b), a.max(b))
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn composed_pair_ordered((lo, hi) in arb_pair()) {
            prop_assert!(lo <= hi);
        }
    }

    #[test]
    #[should_panic(expected = "replay with")]
    fn failure_reports_seed() {
        let runner = TestRunner::new(ProptestConfig::with_cases(4), "always_fails");
        runner.run(&(0u64..10,), |(_x,)| Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut out = Vec::new();
            let runner = TestRunner::new(ProptestConfig::with_cases(16), "det");
            runner.run(&(0u64..1000,), |(x,)| {
                out.push(x);
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
