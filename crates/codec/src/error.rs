//! Typed errors for decoding and persistence.

use std::fmt;
use std::path::PathBuf;

/// A decode-side failure. Corrupt, truncated, or hostile input always
/// surfaces as one of these variants — never as a panic or an unbounded
/// allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a value (or a declared length) could be read.
    Truncated {
        /// Bytes the decoder needed at the failure point.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// The file does not start with the `b"ISMB"` magic.
    BadMagic {
        /// The four bytes found where the magic should be.
        found: [u8; 4],
    },
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u16,
        /// Highest version this build can read.
        supported: u16,
    },
    /// The artifact kind byte does not match what the caller expected
    /// (e.g. opening a seal log as an engine snapshot).
    WrongKind {
        /// Kind the caller asked for.
        expected: u8,
        /// Kind recorded in the file.
        found: u8,
    },
    /// A frame's CRC-32 did not match its payload.
    BadChecksum {
        /// Zero-based index of the failing frame within the artifact.
        frame: usize,
    },
    /// A field decoded to a value outside its domain (bad enum tag,
    /// overlong varint, out-of-range id, …).
    InvalidValue {
        /// Which field or invariant failed.
        what: &'static str,
    },
    /// Decoding finished but input bytes were left over.
    TrailingBytes {
        /// Number of unread bytes.
        trailing: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {available} available"
                )
            }
            CodecError::BadMagic { found } => {
                write!(f, "bad magic {found:?} (expected b\"ISMB\")")
            }
            CodecError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads <= {supported})"
                )
            }
            CodecError::WrongKind { expected, found } => {
                write!(f, "wrong artifact kind {found} (expected {expected})")
            }
            CodecError::BadChecksum { frame } => write!(f, "checksum mismatch in frame {frame}"),
            CodecError::InvalidValue { what } => write!(f, "invalid value: {what}"),
            CodecError::TrailingBytes { trailing } => {
                write!(f, "{trailing} trailing bytes after decoded value")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A persistence failure: an I/O error or a decode error, annotated with
/// the path involved. I/O causes are flattened to `ErrorKind` + message so
/// the type stays `PartialEq`/`Eq` and can be embedded in the workspace's
/// comparable error enums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io {
        /// File the operation targeted.
        path: PathBuf,
        /// Operation that failed (`"read"`, `"write"`, `"rename"`, …).
        op: &'static str,
        /// `std::io::Error` kind, stringified.
        kind: String,
    },
    /// The file was read but its contents failed to decode.
    Codec {
        /// File that failed to decode.
        path: PathBuf,
        /// The decode failure.
        source: CodecError,
    },
}

impl PersistError {
    /// Wraps an `io::Error` for an operation on `path`.
    pub fn io(path: &std::path::Path, op: &'static str, err: &std::io::Error) -> Self {
        PersistError::Io {
            path: path.to_path_buf(),
            op,
            kind: err.to_string(),
        }
    }

    /// Wraps a decode failure for the file at `path`.
    pub fn codec(path: &std::path::Path, source: CodecError) -> Self {
        PersistError::Codec {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, op, kind } => {
                write!(f, "{op} {}: {kind}", path.display())
            }
            PersistError::Codec { path, source } => {
                write!(f, "decode {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Codec { source, .. } => Some(source),
            PersistError::Io { .. } => None,
        }
    }
}
