//! CLI for the workspace determinism lint.
//!
//! ```text
//! cargo run -p ism-analyzer -- lint            # report findings
//! cargo run -p ism-analyzer -- lint --deny     # exit 1 on any finding (CI)
//! cargo run -p ism-analyzer -- lint --verbose  # also list suppressions
//! cargo run -p ism-analyzer -- lint --root P   # lint workspace at P
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use ism_analyzer::{lint_path, workspace_sources};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let command = args.next();
    if command.as_deref() != Some("lint") {
        eprintln!("usage: ism-analyzer lint [--deny] [--verbose] [--root <workspace>]");
        return ExitCode::from(2);
    }
    let mut deny = false;
    let mut verbose = false;
    let mut root = PathBuf::from(".");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--verbose" => verbose = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let files = workspace_sources(&root);
    if files.is_empty() {
        eprintln!("no workspace sources under {}", root.display());
        return ExitCode::from(2);
    }

    let mut findings = 0usize;
    let mut suppressed = 0usize;
    let mut files_linted = 0usize;
    for file in &files {
        let report = match lint_path(file) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: unreadable: {e}", file.display());
                findings += 1;
                continue;
            }
        };
        files_linted += 1;
        for f in &report.findings {
            println!("{f}");
            findings += 1;
        }
        for (f, reason) in &report.suppressed {
            suppressed += 1;
            if verbose {
                println!("{f} — suppressed: {reason}");
            }
        }
    }
    println!(
        "ism-analyzer: {files_linted} files, {findings} finding{}, {suppressed} suppressed \
         (run with --verbose to list suppressions)",
        if findings == 1 { "" } else { "s" },
    );
    if deny && findings > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
