//! ST-DBSCAN: density-based clustering of spatio-temporal points.
//!
//! Implements the algorithm of Birant & Kut, *"ST-DBSCAN: An algorithm for
//! clustering spatial–temporal data"* (DKE 2007), as used by the C2MN paper
//! for two purposes:
//!
//! 1. the **event matching feature** `fem`, which maps each positioning
//!    record's density class (core / border / noise) to a stay/pass
//!    affinity, and
//! 2. the **initial event configuration** of the alternate learning
//!    algorithm (noise points → pass, clustered points → stay).
//!
//! Two points are neighbours when their planar distance is at most `eps_s`,
//! their time distance at most `eps_t`, and they lie on the same floor. A
//! point is a *core* point when its neighbourhood (including itself) holds
//! at least `min_pts` points; non-core points adjacent to a core point are
//! *border* points; the rest is *noise*.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use ism_geometry::Point2;
use serde::{Deserialize, Serialize};

/// A clustering input sample: planar position, timestamp, floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StPoint {
    /// Planar coordinates in metres.
    pub xy: Point2,
    /// Timestamp in seconds.
    pub t: f64,
    /// Floor number; points on different floors are never neighbours.
    pub floor: u16,
}

impl StPoint {
    /// Creates a sample.
    pub const fn new(xy: Point2, t: f64, floor: u16) -> Self {
        StPoint { xy, t, floor }
    }
}

/// Parameters of ST-DBSCAN (the paper uses `εs = 8 m`, `εt = 60 s`,
/// `ptm = 4` on the real data).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StDbscanParams {
    /// Maximum spatial distance between neighbours, in metres.
    pub eps_s: f64,
    /// Maximum temporal distance between neighbours, in seconds.
    pub eps_t: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Default for StDbscanParams {
    fn default() -> Self {
        // The paper's real-data setting.
        StDbscanParams {
            eps_s: 8.0,
            eps_t: 60.0,
            min_pts: 4,
        }
    }
}

/// Density class of a point after clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DensityClass {
    /// Dense interior point of a cluster.
    Core,
    /// Non-core point adjacent to a core point.
    Border,
    /// Point belonging to no cluster.
    Noise,
}

/// Result of a clustering run.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Density class per input point.
    pub classes: Vec<DensityClass>,
    /// Cluster index per input point (`None` for noise).
    pub clusters: Vec<Option<u32>>,
    /// Number of clusters found.
    pub num_clusters: usize,
}

impl ClusterResult {
    /// Indices of the points in the given cluster.
    pub fn members(&self, cluster: u32) -> impl Iterator<Item = usize> + '_ {
        self.clusters
            .iter()
            .enumerate()
            .filter(move |(_, c)| **c == Some(cluster))
            .map(|(i, _)| i)
    }
}

/// The ST-DBSCAN clustering algorithm.
#[derive(Debug, Clone, Copy)]
pub struct StDbscan {
    params: StDbscanParams,
}

impl StDbscan {
    /// Creates the algorithm with the given parameters.
    pub fn new(params: StDbscanParams) -> Self {
        StDbscan { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &StDbscanParams {
        &self.params
    }

    /// Clusters `points`, which must be sorted by non-decreasing time (as
    /// positioning sequences naturally are).
    ///
    /// Runs in `O(n · w)` where `w` is the maximum number of points inside a
    /// `2 eps_t` time window.
    pub fn run(&self, points: &[StPoint]) -> ClusterResult {
        let n = points.len();
        debug_assert!(
            points.windows(2).all(|w| w[0].t <= w[1].t),
            "ST-DBSCAN input must be time-sorted"
        );
        let mut neighbours: Vec<Vec<u32>> = vec![Vec::new(); n];
        let eps_s_sq = self.params.eps_s * self.params.eps_s;

        // Sliding temporal window; only forward pairs are examined, the
        // symmetric entry is pushed for both.
        let mut lo = 0usize;
        for i in 0..n {
            while points[i].t - points[lo].t > self.params.eps_t {
                lo += 1;
            }
            for j in lo..i {
                if points[i].floor == points[j].floor
                    && points[i].xy.distance_sq(points[j].xy) <= eps_s_sq
                {
                    neighbours[i].push(j as u32);
                    neighbours[j].push(i as u32);
                }
            }
        }

        let is_core: Vec<bool> = neighbours
            .iter()
            .map(|nb| nb.len() + 1 >= self.params.min_pts)
            .collect();

        let mut clusters: Vec<Option<u32>> = vec![None; n];
        let mut num_clusters = 0u32;
        let mut stack: Vec<u32> = Vec::new();
        for i in 0..n {
            if !is_core[i] || clusters[i].is_some() {
                continue;
            }
            // Expand a new cluster from this unassigned core point.
            let cid = num_clusters;
            num_clusters += 1;
            clusters[i] = Some(cid);
            stack.push(i as u32);
            while let Some(u) = stack.pop() {
                if !is_core[u as usize] {
                    continue; // border points do not propagate
                }
                for &v in &neighbours[u as usize] {
                    if clusters[v as usize].is_none() {
                        clusters[v as usize] = Some(cid);
                        stack.push(v);
                    }
                }
            }
        }

        let classes: Vec<DensityClass> = (0..n)
            .map(|i| {
                if is_core[i] {
                    DensityClass::Core
                } else if clusters[i].is_some() {
                    DensityClass::Border
                } else {
                    DensityClass::Noise
                }
            })
            .collect();

        ClusterResult {
            classes,
            clusters,
            num_clusters: num_clusters as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64, t: f64) -> StPoint {
        StPoint::new(Point2::new(x, y), t, 0)
    }

    fn params(eps_s: f64, eps_t: f64, min_pts: usize) -> StDbscanParams {
        StDbscanParams {
            eps_s,
            eps_t,
            min_pts,
        }
    }

    #[test]
    fn empty_input() {
        let r = StDbscan::new(StDbscanParams::default()).run(&[]);
        assert_eq!(r.num_clusters, 0);
        assert!(r.classes.is_empty());
    }

    #[test]
    fn single_dense_cluster() {
        let pts: Vec<StPoint> = (0..6).map(|i| pt(0.1 * i as f64, 0.0, i as f64)).collect();
        let r = StDbscan::new(params(2.0, 10.0, 3)).run(&pts);
        assert_eq!(r.num_clusters, 1);
        assert!(r.classes.iter().all(|&c| c == DensityClass::Core));
        assert!(r.clusters.iter().all(|c| *c == Some(0)));
    }

    #[test]
    fn sparse_points_are_noise() {
        let pts: Vec<StPoint> = (0..5)
            .map(|i| pt(100.0 * i as f64, 0.0, i as f64))
            .collect();
        let r = StDbscan::new(params(2.0, 10.0, 3)).run(&pts);
        assert_eq!(r.num_clusters, 0);
        assert!(r.classes.iter().all(|&c| c == DensityClass::Noise));
    }

    #[test]
    fn temporal_split_separates_clusters() {
        // Two bursts at the same location, separated by a large time gap.
        let mut pts: Vec<StPoint> = (0..4).map(|i| pt(0.0, 0.0, i as f64)).collect();
        pts.extend((0..4).map(|i| pt(0.0, 0.0, 1000.0 + i as f64)));
        let r = StDbscan::new(params(2.0, 10.0, 3)).run(&pts);
        assert_eq!(r.num_clusters, 2);
        assert_ne!(r.clusters[0], r.clusters[7]);
    }

    #[test]
    fn border_points_classified() {
        // Six points on a line spaced 0.2 m apart are all core with
        // eps_s = 1.1, min_pts = 5. A seventh point 1.0 m past the end
        // reaches only one core point → border.
        let mut pts: Vec<StPoint> = (0..6).map(|i| pt(0.2 * i as f64, 0.0, i as f64)).collect();
        pts.push(pt(2.0, 0.0, 6.0));
        let r = StDbscan::new(params(1.1, 100.0, 5)).run(&pts);
        for i in 0..6 {
            assert_eq!(r.classes[i], DensityClass::Core, "point {i}");
        }
        assert_eq!(r.classes[6], DensityClass::Border);
        assert_eq!(r.clusters[6], r.clusters[5]);
    }

    #[test]
    fn floors_are_isolated() {
        let mut pts: Vec<StPoint> = (0..4).map(|i| pt(0.0, 0.0, i as f64)).collect();
        for (i, p) in pts.iter_mut().enumerate() {
            if i % 2 == 1 {
                p.floor = 1;
            }
        }
        let r = StDbscan::new(params(2.0, 10.0, 3)).run(&pts);
        // Two points per floor, min_pts 3 → nobody is core.
        assert_eq!(r.num_clusters, 0);
    }

    #[test]
    fn cluster_members_iterator() {
        let pts: Vec<StPoint> = (0..5).map(|i| pt(0.0, 0.0, i as f64)).collect();
        let r = StDbscan::new(params(1.0, 10.0, 3)).run(&pts);
        assert_eq!(r.num_clusters, 1);
        let members: Vec<usize> = r.members(0).collect();
        assert_eq!(members, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn two_spatial_clusters_with_interleaved_times() {
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(pt(0.0, 0.0, i as f64));
            pts.push(pt(50.0, 0.0, i as f64 + 0.5));
        }
        pts.sort_by(|a, b| a.t.partial_cmp(&b.t).unwrap());
        let r = StDbscan::new(params(2.0, 10.0, 3)).run(&pts);
        assert_eq!(r.num_clusters, 2);
    }

    #[test]
    fn min_pts_one_makes_everything_core() {
        let pts = vec![pt(0.0, 0.0, 0.0), pt(100.0, 0.0, 50.0)];
        let r = StDbscan::new(params(1.0, 1.0, 1)).run(&pts);
        assert_eq!(r.num_clusters, 2);
        assert!(r.classes.iter().all(|&c| c == DensityClass::Core));
    }
}
