//! The unified error type of the engine API.

use ism_c2mn::TrainError;
use ism_codec::PersistError;
use ism_queries::StoreError;
use std::fmt;

/// Any failure of the [`SemanticsEngine`](crate::SemanticsEngine) API —
/// the single error surface replacing the panicking paths of the
/// hand-wired pipeline (training failures, store shard-count mismatches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Model training failed (e.g. an empty training set or a malformed
    /// labelled sequence).
    Train(TrainError),
    /// A storage-layer invariant was violated (e.g. an initial store whose
    /// shard count contradicts the builder's configuration).
    Store(StoreError),
    /// Durability failed: a snapshot or seal-log file could not be
    /// written, read, or decoded (corrupt artifacts report through here —
    /// they never panic).
    Persist(PersistError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Train(e) => write!(f, "training failed: {e}"),
            EngineError::Store(e) => write!(f, "store error: {e}"),
            EngineError::Persist(e) => write!(f, "persistence failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Train(e) => Some(e),
            EngineError::Store(e) => Some(e),
            EngineError::Persist(e) => Some(e),
        }
    }
}

impl From<PersistError> for EngineError {
    fn from(e: PersistError) -> Self {
        EngineError::Persist(e)
    }
}

impl From<TrainError> for EngineError {
    fn from(e: TrainError) -> Self {
        EngineError::Train(e)
    }
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_the_cause() {
        let train: EngineError = TrainError::EmptyTrainingSet.into();
        assert!(train.to_string().contains("training failed"));
        let truth: EngineError = TrainError::TruthNotInCandidates {
            sequence: 1,
            site: 2,
        }
        .into();
        assert!(truth.to_string().contains("sequence 1"));
        let store: EngineError = StoreError::ShardCountMismatch { left: 2, right: 5 }.into();
        assert!(store.to_string().contains("2-shard"));
        use std::error::Error;
        assert!(train.source().is_some() && store.source().is_some());
    }
}
