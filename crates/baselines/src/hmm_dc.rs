//! HMM+DC: grid-observation HMM for regions + density clustering for
//! events (the method previously used by the authors' TRIPS system [12]).

use crate::density_events;
use ism_cluster::StDbscanParams;
use ism_indoor::{IndoorSpace, RegionId};
use ism_mobility::{LabeledSequence, MobilityEvent, PositioningRecord};
use ism_pgm::{Hmm, HmmConfig};
use std::collections::HashMap;

/// HMM+DC parameters.
#[derive(Debug, Clone, Copy)]
pub struct HmmDcConfig {
    /// Grid cell size (m) used to discretise observed locations.
    pub cell_size: f64,
    /// Additive smoothing for the HMM counts.
    pub smoothing: f64,
    /// ST-DBSCAN parameters for event labeling.
    pub dbscan: StDbscanParams,
}

impl Default for HmmDcConfig {
    fn default() -> Self {
        HmmDcConfig {
            cell_size: 8.0,
            smoothing: 0.1,
            dbscan: StDbscanParams::default(),
        }
    }
}

/// The trained HMM+DC baseline.
#[derive(Debug, Clone)]
pub struct HmmDc<'a> {
    space: &'a IndoorSpace,
    config: HmmDcConfig,
    hmm: Hmm,
    /// Grid cell → observation symbol; unseen cells map to the shared
    /// "unknown" symbol (the last one).
    symbols: HashMap<(u16, i32, i32), usize>,
    unknown_symbol: usize,
}

impl<'a> HmmDc<'a> {
    /// Trains the HMM by frequency counting over labelled sequences.
    pub fn train(space: &'a IndoorSpace, train: &[LabeledSequence], config: HmmDcConfig) -> Self {
        // Build the observation alphabet from the training data.
        let mut symbols: HashMap<(u16, i32, i32), usize> = HashMap::new();
        let cell = |r: &PositioningRecord| -> (u16, i32, i32) {
            (
                space.clamp_floor(r.location.floor),
                (r.location.xy.x / config.cell_size).floor() as i32,
                (r.location.xy.y / config.cell_size).floor() as i32,
            )
        };
        for seq in train {
            for rec in &seq.records {
                let key = cell(&rec.record);
                let next = symbols.len();
                symbols.entry(key).or_insert(next);
            }
        }
        let unknown_symbol = symbols.len();

        let data: Vec<(Vec<usize>, Vec<usize>)> = train
            .iter()
            .map(|seq| {
                let states: Vec<usize> = seq.records.iter().map(|r| r.region.index()).collect();
                let obs: Vec<usize> = seq
                    .records
                    .iter()
                    .map(|r| *symbols.get(&cell(&r.record)).unwrap())
                    .collect();
                (states, obs)
            })
            .collect();
        let hmm = Hmm::fit(
            &HmmConfig {
                num_states: space.regions().len(),
                num_symbols: unknown_symbol + 1,
                smoothing: config.smoothing,
            },
            &data,
        );
        HmmDc {
            space,
            config,
            hmm,
            symbols,
            unknown_symbol,
        }
    }

    /// Labels a p-sequence: regions by Viterbi over grid observations,
    /// events by ST-DBSCAN density classes.
    pub fn label(&self, records: &[PositioningRecord]) -> Vec<(RegionId, MobilityEvent)> {
        if records.is_empty() {
            return Vec::new();
        }
        let obs: Vec<usize> = records
            .iter()
            .map(|r| {
                let key = (
                    self.space.clamp_floor(r.location.floor),
                    (r.location.xy.x / self.config.cell_size).floor() as i32,
                    (r.location.xy.y / self.config.cell_size).floor() as i32,
                );
                *self.symbols.get(&key).unwrap_or(&self.unknown_symbol)
            })
            .collect();
        let states = self.hmm.viterbi(&obs);
        let events = density_events(records, &self.config.dbscan);
        states
            .into_iter()
            .map(|s| RegionId(s as u32))
            .zip(events)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_indoor::BuildingGenerator;
    use ism_mobility::{Dataset, PositioningConfig, SimulationConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hmm_dc_learns_reasonable_regions() {
        let mut rng = StdRng::seed_from_u64(1);
        let space = BuildingGenerator::small_office()
            .generate(&mut rng)
            .unwrap();
        let dataset = Dataset::generate(
            "d",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(8.0, 1.0),
            None,
            8,
            &mut rng,
        );
        let (train, test) = dataset.split(0.7, &mut rng);
        let model = HmmDc::train(&space, &train, HmmDcConfig::default());
        let mut correct = 0usize;
        let mut total = 0usize;
        for seq in &test {
            let records: Vec<_> = seq.positioning().collect();
            let labels = model.label(&records);
            assert_eq!(labels.len(), records.len());
            for (lab, truth) in labels.iter().zip(seq.truth_labels()) {
                correct += usize::from(lab.0 == truth.0);
                total += 1;
            }
        }
        assert!(total > 0);
        let ra = correct as f64 / total as f64;
        assert!(ra > 0.3, "HMM+DC region accuracy {ra}");
    }

    #[test]
    fn unseen_cells_fall_back_to_unknown() {
        let mut rng = StdRng::seed_from_u64(2);
        let space = BuildingGenerator::small_office()
            .generate(&mut rng)
            .unwrap();
        let dataset = Dataset::generate(
            "d",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(8.0, 1.0),
            None,
            3,
            &mut rng,
        );
        let model = HmmDc::train(&space, &dataset.sequences, HmmDcConfig::default());
        // A record far outside any training cell.
        use ism_geometry::Point2;
        use ism_indoor::IndoorPoint;
        let rec = PositioningRecord::new(IndoorPoint::new(0, Point2::new(-500.0, -500.0)), 0.0);
        let labels = model.label(&[rec]);
        assert_eq!(labels.len(), 1);
        assert!(labels[0].0.index() < space.regions().len());
    }
}
