//! undocumented-unsafe fixture: every `unsafe` needs a `// SAFETY:`.

pub fn undocumented(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn documented(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is valid and aligned.
    unsafe { *p }
}

// SAFETY: fixture demonstrating a documented unsafe fn.
pub unsafe fn documented_fn() {}

pub unsafe fn undocumented_fn() {}
