//! Vendored, offline subset of the `criterion` bench harness.
//!
//! Supports the `[[bench]] harness = false` workflow this workspace uses:
//! `criterion_group! { name = ..; config = ..; targets = .. }`,
//! `criterion_main!`, `Criterion::default().sample_size(..)
//! .warm_up_time(..).measurement_time(..)` and
//! `bench_function(name, |b| b.iter(..))`.
//!
//! Timing model: per sample, run a batch of iterations sized so one batch
//! takes roughly `measurement_time / sample_size`, then report the median
//! per-iteration time over all samples. No plots, no statistics beyond
//! min/median/max — enough to compare hot paths between commits in CI logs.
//!
//! CLI behaviour mirrors what cargo expects of a bench harness:
//! `--test` (run every benchmark once, used by `cargo test --benches`),
//! `--bench`/`--profile-time` style flags are accepted and ignored, and a
//! bare positional argument filters benchmarks by substring.

use std::time::{Duration, Instant};

/// Bench-harness entry point; collects configuration and runs benchmarks.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
    last_estimate_ns: Option<f64>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            test_mode: false,
            filter: None,
            last_estimate_ns: None,
        }
    }
}

impl Criterion {
    /// Sets how many timing samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets how long to warm up before timing.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the timing budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies harness CLI arguments (`--test`, filters). Called by
    /// `criterion_group!`; not part of upstream's public API surface that
    /// user code touches.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags cargo/criterion pass that carry a value we ignore.
                "--profile-time" | "--save-baseline" | "--baseline" | "--load-baseline"
                | "--sample-size" | "--measurement-time" | "--warm-up-time" | "--color" => {
                    let _ = args.next();
                }
                // Boolean flags we accept and ignore.
                "--bench" | "--nocapture" | "--quiet" | "--verbose" | "--noplot"
                | "--discard-baseline" | "--exact" | "--list" => {}
                other => {
                    if !other.starts_with('-') {
                        self.filter = Some(other.to_string());
                    }
                }
            }
        }
        self
    }

    /// Runs (or, in `--test` mode, smoke-runs) one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Reset up front so a filtered-out bench reads as "did not run"
        // (`last_estimate_ns() == None`) instead of leaking the previous
        // bench's estimate.
        self.last_estimate_ns = None;
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self.last_estimate_ns = bencher.median_ns();
        self
    }

    /// Median per-iteration time (ns) of the most recent
    /// [`Criterion::bench_function`] call, or `None` when that call was
    /// skipped by the CLI filter. In `--test` mode the estimate comes
    /// from the single smoke iteration. Lets harness-less bench binaries
    /// export machine-readable results (e.g. a `BENCH_*.json`).
    pub fn last_estimate_ns(&self) -> Option<f64> {
        self.last_estimate_ns
    }
}

/// Hands the benchmark body a timing loop via [`Bencher::iter`].
pub struct Bencher {
    test_mode: bool,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples for the report.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            // Smoke mode still times its single iteration so callers can
            // export a coarse estimate via `last_estimate_ns`.
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples_ns.clear();
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
            return;
        }

        // Warm-up: also estimates the per-iteration cost so batches can be
        // sized to fill the measurement budget.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let budget = self.measurement_time.as_secs_f64();
        let per_sample = budget / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)).ceil() as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / batch as f64);
        }
    }

    fn median_ns(&self) -> Option<f64> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(sorted[sorted.len() / 2])
    }

    fn report(&self, id: &str) {
        if self.test_mode {
            println!("test {id} ... ok (bench smoke run)");
            return;
        }
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples: body never called iter)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let median = sorted[sorted.len() / 2];
        println!(
            "{id:<40} time: [{} {} {}]",
            format_ns(min),
            format_ns(median),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group. Mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`. Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn filtered_bench_leaves_no_estimate() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.filter = Some("matches-nothing".to_string());
        c.bench_function("first", |b| b.iter(|| std::hint::black_box(1 + 1)));
        assert!(
            c.last_estimate_ns().is_none(),
            "skipped bench must not report an estimate"
        );
    }

    #[test]
    fn last_estimate_tracks_most_recent_bench() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        assert!(c.last_estimate_ns().is_none());
        c.bench_function("first", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let first = c.last_estimate_ns().expect("estimate after bench");
        assert!(first > 0.0);
        c.bench_function("second", |b| {
            b.iter(|| std::thread::sleep(Duration::from_micros(50)))
        });
        let second = c.last_estimate_ns().expect("estimate after bench");
        assert!(second > first);
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with(" s"));
    }
}
