//! Side-by-side comparison of all annotation methods on one dataset —
//! a miniature of the paper's Table IV.
//!
//! Run with: `cargo run --release --example method_comparison`

use indoor_semantics::baselines::{HmmDcConfig, SapConfig, SmotConfig};
use indoor_semantics::eval::{AccuracyAccumulator, PAPER_LAMBDA};
use indoor_semantics::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let venue = BuildingGenerator::small_office()
        .generate(&mut rng)
        .unwrap();
    let dataset = Dataset::generate(
        "cmp",
        &venue,
        SimulationConfig::quick(),
        PositioningConfig::synthetic(10.0, 2.5),
        None,
        14,
        &mut rng,
    );
    let (train, test) = dataset.split(0.7, &mut rng);

    let smot = Smot::new(&venue, SmotConfig::default());
    let hmm_dc = HmmDc::train(&venue, &train, HmmDcConfig::default());
    let sapdv = SapDv::new(&venue, SapConfig::default());
    let sapda = SapDa::new(&venue, SapConfig::default());
    let cmn = C2mn::train(
        &venue,
        &train,
        &C2mnConfig::quick_test().with_structure(ModelStructure::cmn()),
        &mut rng,
    )
    .unwrap();
    let c2mn = C2mn::train(&venue, &train, &C2mnConfig::quick_test(), &mut rng).unwrap();

    println!(
        "{:<8} {:>6} {:>6} {:>6} {:>6}",
        "method", "RA", "EA", "CA", "PA"
    );
    let eval = |name: &str, label: &mut dyn FnMut(&[_]) -> Vec<(_, _)>| {
        let mut acc = AccuracyAccumulator::new();
        for seq in &test {
            let records: Vec<_> = seq.positioning().collect();
            acc.add(&label(&records), seq.truth_labels());
        }
        let m = acc.finish();
        println!(
            "{:<8} {:>6.3} {:>6.3} {:>6.3} {:>6.3}",
            name,
            m.region,
            m.event,
            m.combined(PAPER_LAMBDA),
            m.perfect
        );
    };
    eval("SMoT", &mut |r| smot.label(r));
    eval("HMM+DC", &mut |r| hmm_dc.label(r));
    eval("SAPDV", &mut |r| sapdv.label(r));
    eval("SAPDA", &mut |r| sapda.label(r));
    let mut rng2 = StdRng::seed_from_u64(4);
    eval("CMN", &mut |r| cmn.label(r, &mut rng2));
    let mut rng3 = StdRng::seed_from_u64(4);
    eval("C2MN", &mut |r| c2mn.label(r, &mut rng3));
}
