//! Vendored no-op replacements for serde's derive macros.
//!
//! The build environment has no crates.io access —
//! `#[derive(Serialize, Deserialize)]` only needs to *compile*. These
//! derives accept the `#[serde(...)]` helper attribute and expand to
//! nothing.
//!
//! Real persistence does not go through serde at all: the workspace's
//! durable formats (engine snapshots, seal logs, train checkpoints) are
//! hand-rolled on `ism-codec`'s `Encode`/`Decode` traits, which give
//! deterministic byte-exact round-trips and typed errors on corrupt
//! input. Keep these derives as compile-only stubs; new persisted types
//! should implement `ism_codec::{Encode, Decode}` instead.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
