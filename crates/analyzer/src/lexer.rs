//! A minimal Rust tokenizer: enough lexical structure for the lint rules
//! to reason about *code* tokens without being fooled by comments,
//! strings, raw strings, char literals, or lifetimes. Not a parser — it
//! produces a flat token stream plus a separate comment list.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `for`, `unsafe`, `r#try`, …).
    Ident,
    /// A lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// String / raw string / byte string / char / numeric literal.
    Literal,
    /// A single punctuation character (`.`, `:`, `[`, `!`, …).
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A comment (line or block), with the line it starts on. Doc comments
/// (`///`, `//!`) are comments too.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Lines (1-based) on which at least one token sits.
    pub fn token_lines(&self) -> std::collections::BTreeSet<u32> {
        self.tokens.iter().map(|t| t.line).collect()
    }
}

/// Tokenizes `source`. Invalid code lexes loosely rather than erroring:
/// the analyzer runs on a compiling workspace, so the precise error
/// behaviour of rustc's lexer is not needed.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.iter().filter(|&&c| c == '\n').count() as u32
        };
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: chars[start..i].iter().collect(),
                    line: start_line,
                });
            }
            '"' => {
                let start_line = line;
                let consumed = lex_string(&chars[i..]);
                bump_lines!(&chars[i..i + consumed]);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: chars[i..i + consumed].iter().collect(),
                    line: start_line,
                });
                i += consumed;
            }
            'r' | 'b' if is_literal_prefix(&chars[i..]) => {
                let start_line = line;
                let consumed = lex_prefixed_literal(&chars[i..]);
                bump_lines!(&chars[i..i + consumed]);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: chars[i..i + consumed].iter().collect(),
                    line: start_line,
                });
                i += consumed;
            }
            '\'' => {
                // Lifetime vs char literal: `'a` followed by a non-quote
                // is a lifetime; everything else is a char literal.
                let next = chars.get(i + 1).copied();
                let after = chars.get(i + 2).copied();
                let is_lifetime =
                    matches!(next, Some(c) if c.is_alphabetic() || c == '_') && after != Some('\'');
                if is_lifetime {
                    let start = i;
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: chars[start..i].iter().collect(),
                        line,
                    });
                } else {
                    let start = i;
                    i += 1;
                    if chars.get(i) == Some(&'\\') {
                        i += 2; // escape + escaped char
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1; // \u{…} and friends
                        }
                    } else if i < chars.len() {
                        i += 1;
                    }
                    if chars.get(i) == Some(&'\'') {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: chars[start..i].iter().collect(),
                        line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // Fractional part — but not a `..` range.
                if chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Does the slice start a raw/byte string literal (`r"`, `r#"`, `b"`,
/// `br"`, `br#"`, `b'`)? (`r#ident` raw identifiers return false.)
fn is_literal_prefix(s: &[char]) -> bool {
    let mut j = 1;
    if s[0] == 'b' && s.get(1) == Some(&'r') {
        j = 2;
    }
    if s[0] == 'b' && s.get(1) == Some(&'\'') {
        return true;
    }
    match s.get(j) {
        Some('"') => true,
        Some('#') => {
            // Skip hashes; raw string iff a quote follows them.
            let mut k = j;
            while s.get(k) == Some(&'#') {
                k += 1;
            }
            s.get(k) == Some(&'"') && (s[0] == 'r' || (s[0] == 'b' && s[1] == 'r'))
        }
        _ => false,
    }
}

/// Length of a plain `"…"` string starting at `s[0] == '"'`.
fn lex_string(s: &[char]) -> usize {
    let mut i = 1;
    while i < s.len() {
        match s[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    s.len()
}

/// Length of an `r`/`b`/`br`-prefixed literal starting at `s[0]`.
fn lex_prefixed_literal(s: &[char]) -> usize {
    let mut i = 1;
    if s[0] == 'b' && s.get(1) == Some(&'r') {
        i = 2;
    }
    if s[0] == 'b' && s.get(1) == Some(&'\'') {
        // Byte char literal: b'x' / b'\n'.
        let mut j = 2;
        if s.get(j) == Some(&'\\') {
            j += 2;
        } else {
            j += 1;
        }
        while j < s.len() && s[j] != '\'' {
            j += 1;
        }
        return (j + 1).min(s.len());
    }
    let raw = s[1] == 'r' || s[0] == 'r';
    if raw {
        let mut hashes = 0;
        while s.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
        debug_assert_eq!(s.get(i), Some(&'"'));
        i += 1;
        // Scan for `"` followed by the same number of hashes.
        while i < s.len() {
            if s[i] == '"'
                && s[i + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&c| c == '#')
                    .count()
                    == hashes
            {
                return i + 1 + hashes;
            }
            i += 1;
        }
        return s.len();
    }
    // b"…": plain string body after the prefix.
    i + lex_string(&s[i..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
            // unwrap in a comment
            /* HashMap::iter in a block /* nested */ comment */
            let s = "thread_rng() in a string";
            let r = r#"Instant::now in a raw "string""#;
            real_ident();
        "##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "r", "real_ident"]);
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'x'"));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        // `r#type` must not be eaten as a raw string.
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type".to_string()) || ids.contains(&"r".to_string()));
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = \"one\ntwo\";\nlet b = 1;";
        let toks = lex(src).tokens;
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn numeric_literals_including_floats_and_ranges() {
        let toks = lex("a[1..2]; let x = 1.5e3; let h = 0xff_u32;").tokens;
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert!(lits.contains(&"1"));
        assert!(lits.contains(&"2"));
        assert!(lits.contains(&"0xff_u32"));
    }
}
