//! Quickstart: generate a venue, simulate labelled mobility data, train a
//! C2MN wrapped in a `SemanticsEngine`, stream a test sequence in, and
//! read its m-semantics back out.
//!
//! Run with: `cargo run --release --example quickstart`

use indoor_semantics::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. A small synthetic office venue (6 shops around a corridor).
    let venue = BuildingGenerator::small_office()
        .generate(&mut rng)
        .unwrap();
    println!(
        "venue: {} regions, {} partitions, {} doors",
        venue.regions().len(),
        venue.partitions().len(),
        venue.doors().len()
    );

    // 2. Simulate objects and observe them with a noisy positioning system.
    let dataset = Dataset::generate(
        "quickstart",
        &venue,
        SimulationConfig::quick(),
        PositioningConfig::synthetic(8.0, 2.0),
        None,
        10,
        &mut rng,
    );
    let (train, test) = dataset.split(0.7, &mut rng);
    println!(
        "dataset: {} train / {} test sequences, {} records total",
        train.len(),
        test.len(),
        dataset.stats().num_records
    );

    // 3. Train the coupled conditional Markov network (Algorithm 1) and
    //    build the engine owning it in one step.
    let engine = EngineBuilder::new()
        .shards(4)
        .base_seed(7)
        .train(&venue, &train, &C2mnConfig::quick_test(), &mut rng)
        .unwrap();
    println!(
        "trained in {:.2}s over {} iterations (converged: {}), engine on {} threads",
        engine.model().report().train_seconds,
        engine.model().report().iterations,
        engine.model().report().converged,
        engine.threads()
    );
    println!("weights: {:?}", engine.model().weights().0);

    // 4. Stream the test sequences in; sealing publishes them.
    let mut session = engine.ingest();
    for seq in &test {
        session.push(seq.object_id, seq.positioning().collect());
    }
    let ingested = session.seal();
    println!(
        "\ningested {ingested} sequences into {} objects",
        engine.num_objects()
    );

    // 5. Read one object's m-semantics back from the live store.
    let seq = &test[0];
    let semantics = engine.semantics_of(seq.object_id).unwrap();
    println!("m-semantics of object {}:", seq.object_id);
    for ms in semantics {
        let name = &venue.region(ms.region).name;
        println!(
            "  {:>7.0}s – {:>7.0}s  {:<14} {:?}",
            ms.period.start, ms.period.end, name, ms.event
        );
    }

    // 6. Measure labeling accuracy on that sequence (offline helper).
    let records: Vec<_> = seq.positioning().collect();
    let labels = engine.label_batch(&[records]).remove(0);
    let mut acc = indoor_semantics::eval::AccuracyAccumulator::new();
    acc.add(&labels, seq.truth_labels());
    let m = acc.finish();
    println!(
        "\naccuracy on this sequence: RA={:.3} EA={:.3} CA={:.3} PA={:.3}",
        m.region,
        m.event,
        combined_accuracy(&m, indoor_semantics::eval::PAPER_LAMBDA),
        perfect_accuracy(&m)
    );
}
