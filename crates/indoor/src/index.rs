//! Per-floor uniform grid index for fast point → partition lookups.
//!
//! The paper indexes partitions with an R-tree; for rectangular partitions a
//! uniform grid achieves the same O(1) point lookups with a far simpler
//! structure and no tuning beyond the cell size.

use crate::{Partition, PartitionId};
use ism_geometry::{Point2, Rect};

/// A uniform grid over one floor mapping cells to overlapping partitions.
#[derive(Debug, Clone)]
pub struct FloorGrid {
    bounds: Rect,
    cell: f64,
    nx: usize,
    ny: usize,
    /// Cell-major buckets of partition ids overlapping each cell.
    buckets: Vec<Vec<PartitionId>>,
}

impl FloorGrid {
    /// Builds a grid over `bounds` with the given cell size, inserting every
    /// partition whose rect overlaps a cell.
    pub fn build(bounds: Rect, cell: f64, partitions: &[&Partition]) -> Self {
        let cell = cell.max(0.5);
        let nx = ((bounds.width() / cell).ceil() as usize).max(1);
        let ny = ((bounds.height() / cell).ceil() as usize).max(1);
        let mut grid = FloorGrid {
            bounds,
            cell,
            nx,
            ny,
            buckets: vec![Vec::new(); nx * ny],
        };
        for p in partitions {
            let (x0, y0) = grid.cell_of_clamped(p.rect.min);
            let (x1, y1) = grid.cell_of_clamped(p.rect.max);
            for cy in y0..=y1 {
                for cx in x0..=x1 {
                    grid.buckets[cy * nx + cx].push(p.id);
                }
            }
        }
        grid
    }

    #[inline]
    fn cell_of_clamped(&self, p: Point2) -> (usize, usize) {
        let cx = ((p.x - self.bounds.min.x) / self.cell).floor() as isize;
        let cy = ((p.y - self.bounds.min.y) / self.cell).floor() as isize;
        (
            cx.clamp(0, self.nx as isize - 1) as usize,
            cy.clamp(0, self.ny as isize - 1) as usize,
        )
    }

    /// Partitions whose grid cell contains `p` (candidates for exact tests).
    #[inline]
    pub fn candidates_at(&self, p: Point2) -> &[PartitionId] {
        let (cx, cy) = self.cell_of_clamped(p);
        &self.buckets[cy * self.nx + cx]
    }

    /// Appends (deduplicated) partitions overlapping the query rectangle.
    pub fn candidates_in_rect(&self, query: &Rect, out: &mut Vec<PartitionId>) {
        let (x0, y0) = self.cell_of_clamped(query.min);
        let (x1, y1) = self.cell_of_clamped(query.max);
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                for &pid in &self.buckets[cy * self.nx + cx] {
                    if !out.contains(&pid) {
                        out.push(pid);
                    }
                }
            }
        }
    }

    /// The bounding rectangle this grid covers.
    #[inline]
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegionId;

    fn mk_partition(id: u32, rect: Rect) -> Partition {
        Partition {
            id: PartitionId(id),
            floor: 0,
            rect,
            region: RegionId(0),
            doors: vec![],
        }
    }

    #[test]
    fn point_lookup_hits_the_right_partition() {
        let a = mk_partition(0, Rect::from_origin_size(0.0, 0.0, 10.0, 10.0));
        let b = mk_partition(1, Rect::from_origin_size(10.0, 0.0, 10.0, 10.0));
        let refs = [&a, &b];
        let grid = FloorGrid::build(Rect::from_origin_size(0.0, 0.0, 20.0, 10.0), 4.0, &refs);
        let c = grid.candidates_at(Point2::new(2.0, 2.0));
        assert!(c.contains(&PartitionId(0)));
        let c = grid.candidates_at(Point2::new(18.0, 2.0));
        assert!(c.contains(&PartitionId(1)));
    }

    #[test]
    fn rect_query_deduplicates() {
        let a = mk_partition(0, Rect::from_origin_size(0.0, 0.0, 20.0, 10.0));
        let refs = [&a];
        let grid = FloorGrid::build(Rect::from_origin_size(0.0, 0.0, 20.0, 10.0), 2.0, &refs);
        let mut out = Vec::new();
        grid.candidates_in_rect(&Rect::from_origin_size(1.0, 1.0, 15.0, 8.0), &mut out);
        assert_eq!(out, vec![PartitionId(0)]);
    }

    #[test]
    fn out_of_bounds_points_clamp() {
        let a = mk_partition(0, Rect::from_origin_size(0.0, 0.0, 10.0, 10.0));
        let refs = [&a];
        let grid = FloorGrid::build(Rect::from_origin_size(0.0, 0.0, 10.0, 10.0), 5.0, &refs);
        // Point far outside still returns the nearest cell's candidates.
        let c = grid.candidates_at(Point2::new(-100.0, -100.0));
        assert!(c.contains(&PartitionId(0)));
    }
}
