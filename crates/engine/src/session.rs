//! Streaming ingest sessions.

use crate::SemanticsEngine;
use ism_mobility::PositioningRecord;

/// A streaming annotation session: p-sequences go in one at a time,
/// annotated m-semantics come out the other end already sharded into the
/// engine's live store.
///
/// Sessions borrow the engine *shared*, so several can run at once — all
/// of them stamp into one engine-wide submission queue, which is what
/// makes the interleaving unobservable (see the determinism contract).
/// A pushed sequence is handed to an idle worker **immediately**
/// (decode-during-arrival); when no worker keeps up, the bounded queue
/// fills and the buffered chunk fans out synchronously, so at most
/// `queue_capacity` submitted-but-undecoded sequences are ever buffered.
/// Dropping or [`seal`](IngestSession::seal)ing the session flushes the
/// queue, waits for in-flight decodes, and seals the store, making
/// everything ingested engine-wide visible to queries.
///
/// ## Determinism contract
///
/// Sequence number `i` of the engine's lifetime (counted across sessions
/// in push order) is decoded with the seed `sequence_seed(base_seed, i)`
/// — a function of the global sequence index only — and decoded results
/// commit to the store in global index order through a reorder buffer.
/// Push chunking, queue capacity, thread count, and session interleaving
/// are therefore unobservable: the sealed store is byte-identical to
/// annotating the whole stream offline with
/// [`BatchAnnotator::annotate_into_store`], which the `streaming_oracle`
/// and `concurrent_sessions` property suites pin.
///
/// [`BatchAnnotator::annotate_into_store`]: ism_c2mn::BatchAnnotator::annotate_into_store
#[derive(Debug)]
pub struct IngestSession<'e, 'a> {
    engine: &'e SemanticsEngine<'a>,
    pushed: u64,
    sealed: bool,
}

impl<'e, 'a> IngestSession<'e, 'a> {
    pub(crate) fn new(engine: &'e SemanticsEngine<'a>) -> Self {
        IngestSession {
            engine,
            pushed: 0,
            sealed: false,
        }
    }

    /// Submits one object's p-sequence for annotation.
    ///
    /// If a worker is idle the sequence starts decoding immediately and
    /// the call returns; otherwise it buffers, and the push that fills
    /// the queue decodes the buffered chunk on the engine's pool before
    /// returning (the bound is the memory contract: at most
    /// `queue_capacity` undecoded sequences are ever held).
    pub fn push(&mut self, object_id: u64, records: Vec<PositioningRecord>) {
        self.engine.submit(object_id, records);
        self.pushed += 1;
    }

    /// Submits a batch of `(object_id, p-sequence)` pairs in order.
    pub fn push_batch<I>(&mut self, entries: I)
    where
        I: IntoIterator<Item = (u64, Vec<PositioningRecord>)>,
    {
        for (object_id, records) in entries {
            self.push(object_id, records);
        }
    }

    /// Decodes everything currently buffered engine-wide and waits for
    /// every in-flight pipelined decode to commit, without sealing the
    /// store. Queries still don't see the results until a session ends.
    pub fn flush(&mut self) {
        self.engine.flush_ingest();
    }

    /// Sequences pushed into this session so far.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Sequences buffered engine-wide but not yet dispatched for decode.
    pub fn queued(&self) -> usize {
        self.engine.state().queue.len()
    }

    /// Ends the session: flushes the queue, seals the engine's store (the
    /// incremental per-shard merge), and returns how many sequences this
    /// session pushed. Sealing is an engine-wide barrier — sequences
    /// pushed by other live sessions so far are published too. Dropping
    /// the session without calling `seal` does the same — no pushed
    /// sequence is ever lost.
    pub fn seal(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        self.sealed = true;
        self.engine.flush_ingest();
        self.engine.seal_store();
        self.pushed
    }
}

impl Drop for IngestSession<'_, '_> {
    fn drop(&mut self) {
        // Skip the flush-and-seal during panic unwinding: decoding the
        // remaining queue would likely re-panic (same model, same pool)
        // and turn a clean panic into a double-panic abort.
        if !self.sealed && !std::thread::panicking() {
            self.finish();
        }
    }
}
