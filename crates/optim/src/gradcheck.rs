//! Central-difference gradient verification.

use crate::Objective;

/// Returns the maximum relative error between the analytic gradient of
/// `obj` at `x` and a central finite-difference estimate with step `h`.
///
/// The relative error at coordinate `i` is
/// `|g_i − ĝ_i| / max(1, |g_i|, |ĝ_i|)`. Useful in tests of hand-derived
/// gradients (the learning code's pseudo-likelihood gradient is verified
/// this way).
pub fn max_gradient_error<O: Objective + ?Sized>(obj: &mut O, x: &[f64], h: f64) -> f64 {
    let n = obj.dim();
    let mut grad = vec![0.0; n];
    let mut scratch = vec![0.0; n];
    obj.eval(x, &mut grad);

    let mut xp = x.to_vec();
    let mut worst = 0.0f64;
    for i in 0..n {
        let orig = xp[i];
        xp[i] = orig + h;
        let fp = obj.eval(&xp, &mut scratch);
        xp[i] = orig - h;
        let fm = obj.eval(&xp, &mut scratch);
        xp[i] = orig;
        let est = (fp - fm) / (2.0 * h);
        let denom = 1.0f64.max(grad[i].abs()).max(est.abs());
        worst = worst.max((grad[i] - est).abs() / denom);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_gradient_passes() {
        let mut obj = (3usize, |x: &[f64], g: &mut [f64]| {
            let mut v = 0.0;
            for i in 0..3 {
                v += (i as f64 + 1.0) * x[i] * x[i] + x[i].sin();
                g[i] = 2.0 * (i as f64 + 1.0) * x[i] + x[i].cos();
            }
            v
        });
        let err = max_gradient_error(&mut obj, &[0.3, -1.2, 2.5], 1e-5);
        assert!(err < 1e-6, "err = {err}");
    }

    #[test]
    fn wrong_gradient_detected() {
        let mut obj = (2usize, |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * x[0];
            g[1] = 0.0; // wrong: missing the derivative of x₁²
            x[0] * x[0] + x[1] * x[1]
        });
        let err = max_gradient_error(&mut obj, &[1.0, 1.0], 1e-5);
        assert!(err > 0.5, "err = {err}");
    }
}
