//! Coupled conditional Markov networks (C2MN) for indoor mobility
//! semantics annotation — the primary contribution of the reproduced paper.
//!
//! Given an indoor positioning sequence, a C2MN jointly infers the
//! sequences of **semantic regions** and **mobility events** (stay/pass) by
//! modelling four categories of probabilistic dependencies (matching,
//! transition, synchronization, segmentation — Fig. 3) with eight feature
//! functions tailored to indoor topology and mobility behaviour (Table II).
//!
//! * [`C2mnConfig`] — every hyper-parameter of §V, with the paper's real
//!   and synthetic presets;
//! * [`ModelStructure`] — which clique templates are active, yielding the
//!   paper's structural variants (CMN, C2MN/Tran, C2MN/Syn, C2MN/ES,
//!   C2MN/SS);
//! * [`SequenceContext`] / [`CoupledNetwork`] — the unrolled network over
//!   one p-sequence with cached features and exact Markov-blanket local
//!   potentials;
//! * [`Trainer`] — the training session API for the alternate learning
//!   algorithm (Algorithm 1): pseudo-likelihood with MCMC (Gibbs) sampling
//!   and L-BFGS steps, alternating which target chain is configured. The
//!   per-sequence sampling fans out over a worker pool with seeds derived
//!   from [`train_seed`]`(base_seed, iteration, sequence)`, so the learned
//!   weights are byte-identical for any thread count; an observer hook
//!   reports per-iteration progress and can stop early, and
//!   [`TrainCheckpoint`]s resume interrupted runs exactly.
//!   [`C2mn::train`] remains as a thin sequential convenience wrapper;
//! * [`C2mn::annotate`] — joint decoding (annealed Gibbs + ICM) followed by
//!   label-and-merge into m-semantics. Decoding runs the memoized kernel:
//!   per-site candidate rows are cached in a
//!   [`SweepCache`](ism_pgm::SweepCache) and refilled only when the site's
//!   Markov blanket changed, with cross-chain invalidation
//!   ([`invalidate_events_after_region_sweep`] /
//!   [`invalidate_regions_after_event_sweep`]) between half-sweeps —
//!   byte-identical to the naive loop, which
//!   [`C2mn::label_with_naive`] keeps compiled as the reference oracle;
//! * [`BatchAnnotator`] — the parallel batch engine: shards a batch of
//!   p-sequences across scoped worker threads with per-worker
//!   [`DecodeScratch`] buffers and per-sequence seeds derived from
//!   `(base_seed, sequence_index)`, making output byte-identical for any
//!   thread count.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod config;
mod context;
mod error;
mod features;
mod model;
mod network;
mod persist;
mod prep;
mod sample;
mod step;
mod structure;
mod trainer;

pub use batch::{sequence_seed, BatchAnnotator};
pub use config::{C2mnConfig, FirstConfigured};
pub use context::SequenceContext;
pub use error::TrainError;
pub use model::{C2mn, DecodeScratch};
pub use network::{
    invalidate_events_after_region_sweep, invalidate_regions_after_event_sweep, CoupledNetwork,
    EventSites, RegionSites,
};
pub use persist::ModelSnapshot;
pub use sample::train_seed;
pub use structure::{ModelStructure, Weights, NUM_FEATURES};
pub use trainer::{
    SampledChain, TrainCheckpoint, TrainControl, TrainOutcome, TrainProgress, TrainReport, Trainer,
};
