//! Figures 5 & 6: combined / perfect accuracy of the C2MN family vs the
//! training-data fraction (40–80 %).

use ism_bench::{
    evaluate_accuracy, f3, mall_dataset, print_table, train_c2mn_family, Method, Scale,
    C2MN_VARIANTS,
};
use ism_eval::PAPER_LAMBDA;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let (space, dataset) = mall_dataset(&scale, 1);
    let mut ca_rows = Vec::new();
    let mut pa_rows = Vec::new();
    for frac in [0.4, 0.5, 0.6, 0.7, 0.8] {
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = dataset.split(frac, &mut rng);
        let family = train_c2mn_family(
            &space,
            &train,
            &scale.c2mn_config(),
            &C2MN_VARIANTS,
            3,
            &scale.pool(),
        );
        let mut ca_row = vec![format!("{:.0}%", frac * 100.0)];
        let mut pa_row = vec![format!("{:.0}%", frac * 100.0)];
        for (name, model) in &family {
            let method = Method::batched(name, model, scale.threads);
            let acc = evaluate_accuracy(&method, &test, 4);
            ca_row.push(f3(acc.combined(PAPER_LAMBDA)));
            pa_row.push(f3(acc.perfect));
        }
        ca_rows.push(ca_row);
        pa_rows.push(pa_row);
    }
    let headers: Vec<&str> = std::iter::once("train%")
        .chain(C2MN_VARIANTS.iter().map(|(n, _)| *n))
        .collect();
    print_table("Figure 5 — CA vs training fraction", &headers, &ca_rows);
    print_table("Figure 6 — PA vs training fraction", &headers, &pa_rows);
}
