//! Batched query fan-out: N queries share one worker-pool dispatch.
//!
//! `BENCH_queries.json` recorded the bug this module fixes: sharded
//! TkPRQ/TkFRPQ ran at 0.79× with 2 threads versus 1, because every single
//! query paid a full `WorkerPool::map_reduce` dispatch (scoped thread
//! spawns + joins) for a few hundred microseconds of index work. A
//! [`QueryBatch`] amortises that dispatch: the batch fans out over the
//! store's shards **once**, each worker evaluating *every* query of the
//! batch against each shard it claims, and per-query partial counts merge
//! commutatively exactly like the single-query path — so batch answers are
//! byte-identical to running each query alone, and to the flat sequential
//! reference.
//!
//! Two additional dispatch rules keep small calls cheap:
//!
//! * Queries whose region set is empty or matches no indexed region are
//!   answered with an empty ranking up front and never enter the fan-out
//!   (a batch of only such queries does no dispatch at all).
//! * The worker count is capped by estimated work and by the host's
//!   available parallelism ([`WorkerPool::capped`]): a batch carrying
//!   less index work than roughly [`FANOUT_WORK_THRESHOLD`]
//!   posting-query units per extra worker evaluates sequentially on the
//!   calling thread, and CPU-bound index work never spawns more workers
//!   than the host has cores. Capping never changes results — the merge
//!   is commutative — only where they are computed.

use ism_indoor::RegionId;
use ism_mobility::TimePeriod;
use ism_runtime::WorkerPool;
use std::collections::HashMap;

use crate::store::ShardedSemanticsStore;
use crate::topk::{rank, QuerySet};

/// Estimated work (total postings × batch queries) a worker must amortise
/// before the batch fans out to it. Below one unit the batch runs
/// sequentially; the cap grows by one worker per additional unit, up to
/// the host's available parallelism.
const FANOUT_WORK_THRESHOLD: usize = 1 << 17;

/// The answer to one batched query, in the batch's submission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryAnswer {
    /// A TkPRQ ranking: `(region, visit count)` by count desc, id asc.
    Prq(Vec<(RegionId, usize)>),
    /// A TkFRPQ ranking: `(region pair, object count)` by count desc,
    /// pair asc.
    Frpq(Vec<((RegionId, RegionId), usize)>),
}

impl QueryAnswer {
    /// The TkPRQ ranking, if this answers a TkPRQ.
    pub fn into_prq(self) -> Option<Vec<(RegionId, usize)>> {
        match self {
            QueryAnswer::Prq(v) => Some(v),
            QueryAnswer::Frpq(_) => None,
        }
    }

    /// The TkFRPQ ranking, if this answers a TkFRPQ.
    pub fn into_frpq(self) -> Option<Vec<((RegionId, RegionId), usize)>> {
        match self {
            QueryAnswer::Frpq(v) => Some(v),
            QueryAnswer::Prq(_) => None,
        }
    }
}

/// One prepared query of a batch.
#[derive(Debug, Clone)]
enum Prepared {
    Prq {
        query: QuerySet,
        k: usize,
        qt: TimePeriod,
    },
    Frpq {
        query: QuerySet,
        k: usize,
        qt: TimePeriod,
    },
}

/// Per-query partial counts while a batch is in flight.
#[derive(Debug)]
enum Partial {
    Prq(HashMap<RegionId, usize>),
    Frpq(HashMap<(RegionId, RegionId), usize>),
}

/// A set of TkPRQ / TkFRPQ queries evaluated in one shard fan-out.
///
/// Submission order is answer order. A batch is reusable: [`run`] borrows
/// it immutably, so one prepared dashboard batch can be re-evaluated
/// against a growing store.
///
/// [`run`]: QueryBatch::run
#[derive(Debug, Clone, Default)]
#[must_use = "a QueryBatch does nothing until `run`"]
pub struct QueryBatch {
    queries: Vec<Prepared>,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        QueryBatch::default()
    }

    /// Adds a TkPRQ (top-k popular regions of `query` within `qt`);
    /// returns its answer slot.
    pub fn tk_prq(&mut self, query: &[RegionId], k: usize, qt: TimePeriod) -> usize {
        self.queries.push(Prepared::Prq {
            query: QuerySet::new(query),
            k,
            qt,
        });
        self.queries.len() - 1
    }

    /// Adds a TkFRPQ (top-k frequently co-visited region pairs of `query`
    /// within `qt`); returns its answer slot.
    pub fn tk_frpq(&mut self, query: &[RegionId], k: usize, qt: TimePeriod) -> usize {
        self.queries.push(Prepared::Frpq {
            query: QuerySet::new(query),
            k,
            qt,
        });
        self.queries.len() - 1
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Evaluates every query of the batch in one fan-out over `store`'s
    /// shards, returning answers in submission order.
    ///
    /// Empty-region and unmatched-region queries are answered without
    /// touching the shards; if nothing remains, no dispatch happens at
    /// all. Results are byte-identical to evaluating each query alone
    /// against the flat sequential reference, for any shard, thread and
    /// batch composition.
    pub fn run(&self, store: &ShardedSemanticsStore, pool: &WorkerPool) -> Vec<QueryAnswer> {
        // One worker per FANOUT_WORK_THRESHOLD units of estimated work,
        // and never more workers than the host has cores: index evaluation
        // is CPU-bound, so an extra worker beyond either limit only adds
        // spawn overhead. Capping never changes results (the merge is
        // commutative), only where they are computed — tiny batches stay
        // on the calling thread entirely.
        let estimated_work = store.num_postings().saturating_mul(self.queries.len());
        let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
        let cap = (estimated_work / FANOUT_WORK_THRESHOLD)
            .max(1)
            .min(hardware);
        self.run_with_pool(store, &pool.capped(cap))
    }

    /// [`run`](QueryBatch::run) without the dispatch cap — the fan-out
    /// uses `pool` exactly as given. Kept separate so tests exercise the
    /// multi-worker merge path even on single-core hosts.
    pub(crate) fn run_with_pool(
        &self,
        store: &ShardedSemanticsStore,
        pool: &WorkerPool,
    ) -> Vec<QueryAnswer> {
        let mut answers: Vec<Option<QueryAnswer>> = Vec::with_capacity(self.queries.len());
        // (slot, query) pairs that actually need index work: non-empty
        // region sets intersecting at least one indexed posting list.
        let mut live: Vec<(usize, &Prepared)> = Vec::new();
        for (slot, prepared) in self.queries.iter().enumerate() {
            let (query, kind_is_prq) = match prepared {
                Prepared::Prq { query, .. } => (query, true),
                Prepared::Frpq { query, .. } => (query, false),
            };
            // A PRQ needs ≥ 1 matching query region, an FRPQ ≥ 2 query
            // regions; otherwise the empty ranking is already known.
            let trivially_empty = query.is_empty() || (!kind_is_prq && query.len() < 2);
            if trivially_empty || !store.has_any_region(query) {
                answers.push(Some(if kind_is_prq {
                    QueryAnswer::Prq(Vec::new())
                } else {
                    QueryAnswer::Frpq(Vec::new())
                }));
            } else {
                answers.push(None);
                live.push((slot, prepared));
            }
        }
        if !live.is_empty() {
            let init = || {
                live.iter()
                    .map(|(_, prepared)| match prepared {
                        Prepared::Prq { .. } => Partial::Prq(HashMap::new()),
                        Prepared::Frpq { .. } => Partial::Frpq(HashMap::new()),
                    })
                    .collect::<Vec<Partial>>()
            };
            let partials = pool.map_reduce(
                store.num_shards(),
                init,
                |accs: &mut Vec<Partial>, s| {
                    let index = store.shard(s).index();
                    for ((_, prepared), acc) in live.iter().zip(accs.iter_mut()) {
                        match (prepared, acc) {
                            (Prepared::Prq { query, qt, .. }, Partial::Prq(counts)) => {
                                for (region, n) in index.prq_counts(query, qt) {
                                    *counts.entry(region).or_insert(0) += n;
                                }
                            }
                            (Prepared::Frpq { query, qt, .. }, Partial::Frpq(counts)) => {
                                for (pair, n) in index.frpq_counts(query, qt) {
                                    *counts.entry(pair).or_insert(0) += n;
                                }
                            }
                            _ => unreachable!("partial kinds follow query kinds"),
                        }
                    }
                },
                |totals, accs| {
                    for (total, acc) in totals.iter_mut().zip(accs) {
                        match (total, acc) {
                            (Partial::Prq(t), Partial::Prq(a)) => merge_into(t, a),
                            (Partial::Frpq(t), Partial::Frpq(a)) => merge_into(t, a),
                            _ => unreachable!("partial kinds follow query kinds"),
                        }
                    }
                },
            );
            for ((slot, prepared), partial) in live.iter().zip(partials) {
                let answer = match (prepared, partial) {
                    (Prepared::Prq { k, .. }, Partial::Prq(counts)) => {
                        QueryAnswer::Prq(rank(counts, *k))
                    }
                    (Prepared::Frpq { k, .. }, Partial::Frpq(counts)) => {
                        QueryAnswer::Frpq(rank(counts, *k))
                    }
                    _ => unreachable!("partial kinds follow query kinds"),
                };
                // analyzer: allow(lib-panic) `slot` was assigned from this vec's enumeration during prepare
                answers[*slot] = Some(answer);
            }
        }
        answers
            .into_iter()
            // analyzer: allow(lib-panic) the loop above answered every prepared slot exactly once
            .map(|a| a.expect("every slot answered"))
            .collect()
    }
}

/// Sums `other` into `total` key-wise (commutative, so worker scheduling
/// is unobservable).
fn merge_into<K: std::hash::Hash + Eq>(total: &mut HashMap<K, usize>, other: HashMap<K, usize>) {
    for (key, n) in other {
        *total.entry(key).or_insert(0) += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SemanticsStore;
    use crate::topk::{tk_frpq, tk_prq};
    use ism_mobility::{MobilityEvent, MobilitySemantics};

    fn ms(region: u32, start: f64, end: f64) -> MobilitySemantics {
        MobilitySemantics {
            region: RegionId(region),
            period: TimePeriod::new(start, end),
            event: MobilityEvent::Stay,
        }
    }

    fn sample() -> SemanticsStore {
        let mut store = SemanticsStore::new();
        for i in 0..40u64 {
            store.insert(
                i,
                vec![
                    ms(i as u32 % 5, i as f64 * 3.0, i as f64 * 3.0 + 10.0),
                    ms(
                        (i as u32 + 1) % 5,
                        i as f64 * 3.0 + 20.0,
                        i as f64 * 3.0 + 25.0,
                    ),
                ],
            );
        }
        store
    }

    #[test]
    fn batch_answers_match_single_queries_in_order() {
        let flat = sample();
        let sharded = ShardedSemanticsStore::from_store(&flat, 4);
        let pool = WorkerPool::new(2);
        let all: Vec<RegionId> = (0..5).map(RegionId).collect();
        let some = vec![RegionId(1), RegionId(3)];
        let qt_a = TimePeriod::new(0.0, 60.0);
        let qt_b = TimePeriod::new(30.0, 200.0);

        let mut batch = QueryBatch::new();
        assert!(batch.is_empty());
        let s0 = batch.tk_prq(&all, 3, qt_a);
        let s1 = batch.tk_frpq(&all, 4, qt_b);
        let s2 = batch.tk_prq(&some, 2, qt_b);
        let s3 = batch.tk_frpq(&some, 2, qt_a);
        assert_eq!((s0, s1, s2, s3), (0, 1, 2, 3));
        assert_eq!(batch.len(), 4);

        let answers = batch.run(&sharded, &pool);
        assert_eq!(
            answers[0].clone().into_prq().unwrap(),
            tk_prq(&flat, &all, 3, qt_a)
        );
        assert_eq!(
            answers[1].clone().into_frpq().unwrap(),
            tk_frpq(&flat, &all, 4, qt_b)
        );
        assert_eq!(
            answers[2].clone().into_prq().unwrap(),
            tk_prq(&flat, &some, 2, qt_b)
        );
        assert_eq!(
            answers[3].clone().into_frpq().unwrap(),
            tk_frpq(&flat, &some, 2, qt_a)
        );
        // Kind accessors reject the other kind.
        assert!(answers[0].clone().into_frpq().is_none());
        assert!(answers[1].clone().into_prq().is_none());
    }

    #[test]
    fn empty_and_unknown_region_queries_short_circuit() {
        let sharded = ShardedSemanticsStore::from_store(&sample(), 3);
        let pool = WorkerPool::new(2);
        let qt = TimePeriod::new(0.0, 1e6);
        let mut batch = QueryBatch::new();
        batch.tk_prq(&[], 5, qt);
        batch.tk_frpq(&[], 5, qt);
        batch.tk_prq(&[RegionId(999)], 5, qt); // no such region indexed
        batch.tk_frpq(&[RegionId(999), RegionId(777)], 5, qt);
        let answers = batch.run(&sharded, &pool);
        assert_eq!(answers[0], QueryAnswer::Prq(Vec::new()));
        assert_eq!(answers[1], QueryAnswer::Frpq(Vec::new()));
        assert_eq!(answers[2], QueryAnswer::Prq(Vec::new()));
        assert_eq!(answers[3], QueryAnswer::Frpq(Vec::new()));
    }

    #[test]
    fn forced_multi_worker_fanout_matches_sequential() {
        // `run` caps workers by work and host cores, so on small stores or
        // single-core hosts the merge path never multi-threads; pin its
        // correctness by bypassing the cap.
        let flat = sample();
        let sharded = ShardedSemanticsStore::from_store(&flat, 5);
        let all: Vec<RegionId> = (0..5).map(RegionId).collect();
        let qt = TimePeriod::new(0.0, 200.0);
        let mut batch = QueryBatch::new();
        batch.tk_prq(&all, 4, qt);
        batch.tk_frpq(&all, 4, qt);
        let sequential = batch.run_with_pool(&sharded, &WorkerPool::new(1));
        for threads in [2, 4, 8] {
            let parallel = batch.run_with_pool(&sharded, &WorkerPool::new(threads));
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn batch_is_reusable_across_store_growth() {
        let pool = WorkerPool::new(1);
        let qt = TimePeriod::new(0.0, 1e6);
        let all: Vec<RegionId> = (0..5).map(RegionId).collect();
        let mut batch = QueryBatch::new();
        batch.tk_prq(&all, 5, qt);

        let mut live = ShardedSemanticsStore::new(3);
        live.append(1, vec![ms(0, 0.0, 10.0)]);
        live.seal();
        let first = batch.run(&live, &pool);
        assert_eq!(first[0], QueryAnswer::Prq(vec![(RegionId(0), 1)]));
        live.append(2, vec![ms(0, 5.0, 15.0)]);
        live.seal();
        let second = batch.run(&live, &pool);
        assert_eq!(second[0], QueryAnswer::Prq(vec![(RegionId(0), 2)]));
    }
}
