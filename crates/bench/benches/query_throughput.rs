//! Semantic query throughput: queries/second of the sharded TkPRQ / TkFRPQ
//! engine at 1, 2 and 4 worker threads — query-at-a-time and batched
//! ([`QueryBatch`]) — plus the flat full-scan reference and per-query
//! latency percentiles, over a millions-of-postings synthetic workload.
//!
//! Besides the usual criterion console report, the bench writes
//! `BENCH_queries.json` at the repository root so CI can archive the perf
//! trajectory across commits (the query-side companion of
//! `BENCH_annotate.json`). The JSON carries the original fields
//! (`results`, `flat_full_scan_queries_per_sec`, …) plus `batched_results`
//! (the shared-dispatch fan-out this store was sized to exercise),
//! `latency_us` (p50/p99 per query kind), and the compressed-index
//! footprint. In `--test` (smoke) mode each configuration runs once and
//! the JSON carries coarse single-run estimates.

use criterion::Criterion;
use ism_indoor::RegionId;
use ism_mobility::{MobilityEvent, MobilitySemantics, TimePeriod};
use ism_queries::{
    tk_frpq, tk_frpq_sharded, tk_prq, tk_prq_sharded, QueryBatch, SemanticsStore,
    ShardedSemanticsStore, DEFAULT_SHARDS,
};
use ism_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::{Duration, Instant};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const NUM_OBJECTS: u64 = 50_000;
const NUM_REGIONS: u32 = 120;
const K: usize = 20;
/// Queries per [`QueryBatch`] in the batched benchmarks (one dashboard
/// refresh: 8 TkPRQ + 8 TkFRPQ over varied region sets and windows).
const BATCH_SIZE: usize = 16;
/// Single-query runs sampled for the latency percentiles.
const LATENCY_SAMPLES: usize = 200;
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_queries.json");

/// A synthetic store standing in for a day of annotated mall traffic:
/// `NUM_OBJECTS` timelines of stays/passes over `NUM_REGIONS` regions
/// spanning [0, 86400] — roughly two million visit postings, enough that
/// a single query's candidate scan is real work and the fan-out heuristics
/// actually engage.
fn workload_store() -> SemanticsStore {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let mut store = SemanticsStore::new();
    for object in 0..NUM_OBJECTS {
        let mut t = rng.random_range(0.0..3600.0);
        let mut timeline = Vec::new();
        while t < 86_400.0 {
            let duration = rng.random_range(30.0..1800.0);
            timeline.push(MobilitySemantics {
                region: RegionId(rng.random_range(0..NUM_REGIONS)),
                period: TimePeriod::new(t, t + duration),
                event: if rng.random_bool(0.6) {
                    MobilityEvent::Stay
                } else {
                    MobilityEvent::Pass
                },
            });
            t += duration + rng.random_range(10.0..600.0);
        }
        store.insert(object, timeline);
    }
    store
}

/// One TkPRQ + one TkFRPQ over a two-hour window and a 60-region query set
/// (≈ half the venue, like the paper's 101-of-202 setup).
fn run_pair(store: &ShardedSemanticsStore, query: &[RegionId], qt: TimePeriod, pool: &WorkerPool) {
    black_box(tk_prq_sharded(store, query, K, qt, pool));
    black_box(tk_frpq_sharded(store, query, K, qt, pool));
}

/// A dashboard-refresh batch: `BATCH_SIZE` queries over staggered windows
/// and rotating region sets, all sharing one fan-out.
fn dashboard_batch() -> QueryBatch {
    let mut batch = QueryBatch::new();
    for i in 0..BATCH_SIZE as u32 / 2 {
        let query: Vec<RegionId> = (0..NUM_REGIONS / 2)
            .map(|r| RegionId((r + i * 7) % NUM_REGIONS))
            .collect();
        let qt = TimePeriod::new(28_800.0 + i as f64 * 1800.0, 36_000.0 + i as f64 * 1800.0);
        batch.tk_prq(&query, K, qt);
        batch.tk_frpq(&query, K, qt);
    }
    batch
}

/// `(p50, p99)` of `samples` in microseconds.
fn percentiles_us(mut samples: Vec<f64>) -> (f64, f64) {
    samples.sort_unstable_by(f64::total_cmp);
    let at = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
    (at(0.50), at(0.99))
}

/// Seconds per run, as the fastest of `n` timed runs after one warm-up.
/// The JSON throughput figures use this minimum rather than criterion's
/// median: on a shared host, background interference only ever *adds*
/// time, so the minimum is the stable estimator for comparing thread
/// counts of the same workload.
fn time_min<F: FnMut()>(n: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut c = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args();

    let flat = workload_store();
    let sharded = ShardedSemanticsStore::from_store(&flat, DEFAULT_SHARDS);
    let query: Vec<RegionId> = (0..NUM_REGIONS / 2).map(RegionId).collect();
    let qt = TimePeriod::new(36_000.0, 43_200.0);

    // Flat full-scan reference (one TkPRQ + one TkFRPQ, single core).
    c.bench_function("queries/flat_full_scan_pair", |b| {
        b.iter(|| {
            black_box(tk_prq(black_box(&flat), &query, K, qt));
            black_box(tk_frpq(black_box(&flat), &query, K, qt));
        })
    });
    let flat_qps = Some(
        2.0 / time_min(6, || {
            black_box(tk_prq(black_box(&flat), &query, K, qt));
            black_box(tk_frpq(black_box(&flat), &query, K, qt));
        }),
    );

    // Query-at-a-time dispatch (each call is a batch of one).
    let mut throughputs: Vec<(usize, f64)> = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = WorkerPool::new(threads);
        c.bench_function(&format!("queries/sharded_pair_{threads}_threads"), |b| {
            b.iter(|| run_pair(black_box(&sharded), &query, qt, &pool))
        });
        let secs = time_min(16, || run_pair(black_box(&sharded), &query, qt, &pool));
        throughputs.push((threads, 2.0 / secs));
    }

    // Batched dispatch: BATCH_SIZE queries share one shard fan-out.
    let batch = dashboard_batch();
    let mut batched: Vec<(usize, f64)> = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = WorkerPool::new(threads);
        c.bench_function(
            &format!("queries/batched_{BATCH_SIZE}_{threads}_threads"),
            |b| b.iter(|| black_box(batch.run(black_box(&sharded), &pool))),
        );
        let secs = time_min(10, || {
            black_box(batch.run(black_box(&sharded), &pool));
        });
        batched.push((threads, BATCH_SIZE as f64 / secs));
    }

    // Per-query latency percentiles at 2 threads (the configuration the
    // old dispatch regressed at).
    let pool = WorkerPool::new(2);
    let mut prq_us = Vec::with_capacity(LATENCY_SAMPLES);
    let mut frpq_us = Vec::with_capacity(LATENCY_SAMPLES);
    for _ in 0..LATENCY_SAMPLES {
        let t0 = Instant::now();
        black_box(tk_prq_sharded(&sharded, &query, K, qt, &pool));
        prq_us.push(t0.elapsed().as_secs_f64() * 1e6);
        let t0 = Instant::now();
        black_box(tk_frpq_sharded(&sharded, &query, K, qt, &pool));
        frpq_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }

    write_report(
        &sharded,
        flat_qps,
        &throughputs,
        &batched,
        percentiles_us(prq_us),
        percentiles_us(frpq_us),
    );
}

/// `[{threads, queries_per_sec, speedup_vs_1_thread}, …]` JSON entries.
fn result_entries(throughputs: &[(usize, f64)]) -> String {
    // Speedups are relative to the measured 1-thread run; when a CLI
    // filter skipped it, report `null` rather than a made-up baseline.
    let baseline = throughputs
        .iter()
        .find(|&&(threads, _)| threads == 1)
        .map(|&(_, qps)| qps);
    throughputs
        .iter()
        .map(|&(threads, qps)| {
            let speedup = baseline.map_or("null".to_string(), |base| format!("{:.3}", qps / base));
            format!(
                "    {{\"threads\": {threads}, \"queries_per_sec\": {qps:.3}, \
                 \"speedup_vs_1_thread\": {speedup}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

/// Emits `BENCH_queries.json` (hand-rolled JSON: the vendored serde does
/// not serialize).
fn write_report(
    store: &ShardedSemanticsStore,
    flat_qps: Option<f64>,
    throughputs: &[(usize, f64)],
    batched: &[(usize, f64)],
    prq_latency: (f64, f64),
    frpq_latency: (f64, f64),
) {
    let flat = flat_qps.map_or("null".to_string(), |qps| format!("{qps:.3}"));
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"query_throughput\",\n  \"workload\": \"synthetic_day\",\n  \
         \"num_objects\": {},\n  \"num_postings\": {},\n  \"index_bytes\": {},\n  \
         \"shards\": {},\n  \"k\": {K},\n  \"host_parallelism\": {available},\n  \
         \"flat_full_scan_queries_per_sec\": {flat},\n  \
         \"latency_us\": {{\n    \
         \"tk_prq\": {{\"p50\": {:.1}, \"p99\": {:.1}}},\n    \
         \"tk_frpq\": {{\"p50\": {:.1}, \"p99\": {:.1}}}\n  }},\n  \
         \"results\": [\n{}\n  ],\n  \"batch_size\": {BATCH_SIZE},\n  \
         \"batched_results\": [\n{}\n  ]\n}}\n",
        store.len(),
        store.num_postings(),
        store.index_bytes(),
        store.num_shards(),
        prq_latency.0,
        prq_latency.1,
        frpq_latency.0,
        frpq_latency.1,
        result_entries(throughputs),
        result_entries(batched),
    );
    match std::fs::write(OUT_PATH, &json) {
        Ok(()) => println!("wrote {OUT_PATH}"),
        Err(e) => eprintln!("could not write {OUT_PATH}: {e}"),
    }
}
