//! `ism-codec` impls for the persisted model surface: [`Weights`],
//! [`C2mnConfig`], [`TrainCheckpoint`], and the [`ModelSnapshot`] that a
//! trained [`C2mn`] round-trips through.
//!
//! Layouts are field-by-field and explicit — no derive magic — so the
//! on-disk format is exactly what this module spells out, versioned by the
//! artifact header. Weights and every other `f64` persist as raw IEEE-754
//! bit patterns: a reloaded model is *bit*-equal to the saved one, which is
//! what the cross-process byte-exact-resume tests pin.

use std::path::Path;

use ism_cluster::StDbscanParams;
use ism_codec::{
    read_artifact, write_artifact, write_varint, ArtifactKind, CodecError, Decode, Encode,
    PersistError, Reader,
};
use ism_indoor::{IndoorSpace, RegionId};
use ism_mobility::MobilityEvent;

use crate::structure::NUM_FEATURES;
use crate::{C2mn, C2mnConfig, FirstConfigured, ModelStructure, TrainCheckpoint, Weights};

impl Encode for Weights {
    fn encode(&self, out: &mut Vec<u8>) {
        for w in &self.0 {
            w.encode(out);
        }
    }
}

impl Decode for Weights {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mut w = [0.0f64; NUM_FEATURES];
        for slot in &mut w {
            *slot = r.f64_bits()?;
        }
        Ok(Weights(w))
    }
}

/// The four template toggles pack into one bitmask byte.
impl Encode for ModelStructure {
    fn encode(&self, out: &mut Vec<u8>) {
        let bits = u8::from(self.transitions)
            | u8::from(self.synchronizations) << 1
            | u8::from(self.event_segmentation) << 2
            | u8::from(self.space_segmentation) << 3;
        out.push(bits);
    }
}

impl Decode for ModelStructure {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bits = r.u8()?;
        if bits & !0x0F != 0 {
            return Err(CodecError::InvalidValue {
                what: "model structure bitmask",
            });
        }
        Ok(ModelStructure {
            transitions: bits & 1 != 0,
            synchronizations: bits & 2 != 0,
            event_segmentation: bits & 4 != 0,
            space_segmentation: bits & 8 != 0,
        })
    }
}

impl Encode for FirstConfigured {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            FirstConfigured::Events => 0,
            FirstConfigured::Regions => 1,
        });
    }
}

impl Decode for FirstConfigured {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(FirstConfigured::Events),
            1 => Ok(FirstConfigured::Regions),
            _ => Err(CodecError::InvalidValue {
                what: "first-configured tag",
            }),
        }
    }
}

// `StDbscanParams` belongs to `ism-cluster`, which does not depend on the
// codec; its three fields encode inline here instead.
fn encode_dbscan(out: &mut Vec<u8>, p: &StDbscanParams) {
    p.eps_s.encode(out);
    p.eps_t.encode(out);
    p.min_pts.encode(out);
}

fn decode_dbscan(r: &mut Reader<'_>) -> Result<StDbscanParams, CodecError> {
    Ok(StDbscanParams {
        eps_s: r.f64_bits()?,
        eps_t: r.f64_bits()?,
        min_pts: usize::decode(r)?,
    })
}

impl Encode for C2mnConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.structure.encode(out);
        self.uncertainty_radius.encode(out);
        self.alpha.encode(out);
        self.beta.encode(out);
        self.gamma_st.encode(out);
        self.gamma_ec.encode(out);
        self.speed_norm.encode(out);
        self.sigma_sq.encode(out);
        self.delta.encode(out);
        self.max_iter.encode(out);
        self.mcmc_m.encode(out);
        self.mcmc_burn_in.encode(out);
        self.inner_lbfgs_iters.encode(out);
        self.step_cap.encode(out);
        encode_dbscan(out, &self.dbscan);
        self.first_configured.encode(out);
        self.max_candidates.encode(out);
        self.anneal_sweeps.encode(out);
        self.anneal_t_start.encode(out);
        self.anneal_t_end.encode(out);
        self.use_frequency_prior.encode(out);
        self.time_decay_transition.encode(out);
        self.time_decay_consistency.encode(out);
    }
}

impl Decode for C2mnConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(C2mnConfig {
            structure: ModelStructure::decode(r)?,
            uncertainty_radius: r.f64_bits()?,
            alpha: r.f64_bits()?,
            beta: r.f64_bits()?,
            gamma_st: r.f64_bits()?,
            gamma_ec: r.f64_bits()?,
            speed_norm: r.f64_bits()?,
            sigma_sq: r.f64_bits()?,
            delta: r.f64_bits()?,
            max_iter: usize::decode(r)?,
            mcmc_m: usize::decode(r)?,
            mcmc_burn_in: usize::decode(r)?,
            inner_lbfgs_iters: usize::decode(r)?,
            step_cap: r.f64_bits()?,
            dbscan: decode_dbscan(r)?,
            first_configured: FirstConfigured::decode(r)?,
            max_candidates: usize::decode(r)?,
            anneal_sweeps: usize::decode(r)?,
            anneal_t_start: r.f64_bits()?,
            anneal_t_end: r.f64_bits()?,
            use_frequency_prior: bool::decode(r)?,
            time_decay_transition: Option::<f64>::decode(r)?,
            time_decay_consistency: Option::<f64>::decode(r)?,
        })
    }
}

impl Encode for TrainCheckpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.weights.encode(out);
        self.next_iteration.encode(out);
        self.events_cfg.encode(out);
        write_varint(out, self.regions_cfg.len() as u64);
        for regions in &self.regions_cfg {
            regions.encode(out);
        }
        let flags = u8::from(self.region_converged)
            | u8::from(self.event_converged) << 1
            | u8::from(self.did_region_step) << 2
            | u8::from(self.did_event_step) << 3;
        out.push(flags);
    }
}

impl Decode for TrainCheckpoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let weights = Weights::decode(r)?;
        let next_iteration = usize::decode(r)?;
        let events_cfg = Vec::<Vec<MobilityEvent>>::decode(r)?;
        let n = r.count_prefix(1)?;
        let mut regions_cfg = Vec::with_capacity(n);
        for _ in 0..n {
            regions_cfg.push(Vec::<RegionId>::decode(r)?);
        }
        let flags = r.u8()?;
        if flags & !0x0F != 0 {
            return Err(CodecError::InvalidValue {
                what: "checkpoint flag bitmask",
            });
        }
        Ok(TrainCheckpoint {
            weights,
            next_iteration,
            events_cfg,
            regions_cfg,
            region_converged: flags & 1 != 0,
            event_converged: flags & 2 != 0,
            did_region_step: flags & 4 != 0,
            did_event_step: flags & 8 != 0,
        })
    }
}

impl TrainCheckpoint {
    /// Atomically writes this checkpoint as a
    /// [`ArtifactKind::TrainCheckpoint`] artifact.
    /// [`Trainer::checkpoint_to`](crate::Trainer::checkpoint_to) calls this
    /// after every outer iteration; it is public for callers that manage
    /// checkpoint files themselves.
    pub fn save_to(&self, path: &Path) -> Result<(), PersistError> {
        write_artifact(path, ArtifactKind::TrainCheckpoint, &self.to_bytes())
    }

    /// Reads a checkpoint artifact written by [`TrainCheckpoint::save_to`].
    /// Corrupt or truncated files fail with a typed
    /// [`PersistError::Codec`]; they never panic.
    pub fn load_from(path: &Path) -> Result<Self, PersistError> {
        let payload = read_artifact(path, ArtifactKind::TrainCheckpoint)?;
        Self::from_bytes(&payload).map_err(|e| PersistError::codec(path, e))
    }
}

/// The persistable state of a trained [`C2mn`]: configuration, learned
/// weights, and the historical region frequencies the frequency prior uses.
///
/// The venue itself is *not* part of the snapshot — a model is bound to an
/// [`IndoorSpace`] by reference, and reattaching happens at
/// [`C2mn::from_snapshot`]. The in-memory training report does not persist
/// either: it describes the run that produced the weights, not the weights
/// themselves, and a reloaded model starts with a default report.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// The model configuration.
    pub config: C2mnConfig,
    /// The learned template weights.
    pub weights: Weights,
    /// Normalised historical region frequency (empty when the model was
    /// built without training data).
    pub region_freq: Vec<f64>,
}

impl Encode for ModelSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.config.encode(out);
        self.weights.encode(out);
        self.region_freq.encode(out);
    }
}

impl Decode for ModelSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ModelSnapshot {
            config: C2mnConfig::decode(r)?,
            weights: Weights::decode(r)?,
            region_freq: Vec::<f64>::decode(r)?,
        })
    }
}

impl<'a> C2mn<'a> {
    /// Captures the persistable state of this model.
    pub fn snapshot(&self) -> ModelSnapshot {
        ModelSnapshot {
            config: self.config().clone(),
            weights: self.weights().clone(),
            region_freq: self.region_freq_slice().to_vec(),
        }
    }

    /// Rebinds a persisted model to a venue. Weights, configuration, and
    /// region frequencies are restored bit-exactly; the training report
    /// resets to default (see [`ModelSnapshot`]).
    pub fn from_snapshot(space: &'a IndoorSpace, snapshot: ModelSnapshot) -> Self {
        C2mn::from_parts(
            space,
            snapshot.config,
            snapshot.weights,
            snapshot.region_freq,
            crate::TrainReport::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelStructure;

    #[test]
    fn config_round_trips_every_preset() {
        for config in [
            C2mnConfig::paper_real(),
            C2mnConfig::paper_synthetic(),
            C2mnConfig::quick_test().with_structure(ModelStructure::cmn()),
        ] {
            let decoded = C2mnConfig::from_bytes(&config.to_bytes()).unwrap();
            // C2mnConfig has no PartialEq (floats + nested params); compare
            // through the deterministic encoding instead.
            assert_eq!(decoded.to_bytes(), config.to_bytes());
        }
    }

    #[test]
    fn config_with_decay_options_round_trips() {
        let mut config = C2mnConfig::quick_test();
        config.time_decay_transition = Some(0.125);
        config.time_decay_consistency = Some(1e-3);
        config.use_frequency_prior = true;
        let decoded = C2mnConfig::from_bytes(&config.to_bytes()).unwrap();
        assert_eq!(decoded.time_decay_transition, Some(0.125));
        assert_eq!(decoded.time_decay_consistency, Some(1e-3));
        assert!(decoded.use_frequency_prior);
        assert_eq!(decoded.to_bytes(), config.to_bytes());
    }

    #[test]
    fn weights_round_trip_bit_exactly() {
        let mut w = Weights::uniform(0.5);
        w.0[3] = -1.25e-300;
        w.0[7] = f64::from_bits(0x7FF0_0000_0000_0001); // signalling-ish NaN
        let decoded = Weights::from_bytes(&w.to_bytes()).unwrap();
        assert_eq!(decoded.0.map(f64::to_bits), w.0.map(f64::to_bits));
    }

    #[test]
    fn structure_bitmask_rejects_garbage() {
        assert!(matches!(
            ModelStructure::from_bytes(&[0xF0]),
            Err(CodecError::InvalidValue { .. })
        ));
    }

    #[test]
    fn checkpoint_round_trips() {
        let cp = TrainCheckpoint {
            weights: Weights::uniform(0.75),
            next_iteration: 17,
            events_cfg: vec![
                vec![MobilityEvent::Stay, MobilityEvent::Pass],
                vec![MobilityEvent::Pass],
            ],
            regions_cfg: vec![vec![RegionId(4), RegionId(0)], vec![RegionId(9)]],
            region_converged: true,
            event_converged: false,
            did_region_step: true,
            did_event_step: true,
        };
        let decoded = TrainCheckpoint::from_bytes(&cp.to_bytes()).unwrap();
        assert_eq!(decoded, cp);
        // Re-encoding is byte-identical (deterministic format).
        assert_eq!(decoded.to_bytes(), cp.to_bytes());
    }
}
