//! Core indoor entities: partitions, doors, regions, indoor points.

use crate::{DoorId, PartitionId, RegionId};
use ism_geometry::{Point2, Rect};
use serde::{Deserialize, Serialize};

/// A location inside a building: a 2-D point plus a floor number.
///
/// This mirrors the paper's positioning triple `(x, y, f)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndoorPoint {
    /// Floor number (0-based).
    pub floor: u16,
    /// Planar coordinates on the floor, in metres.
    pub xy: Point2,
}

impl IndoorPoint {
    /// Creates an indoor point.
    #[inline]
    pub const fn new(floor: u16, xy: Point2) -> Self {
        IndoorPoint { floor, xy }
    }

    /// Planar Euclidean distance, ignoring floor difference.
    #[inline]
    pub fn planar_distance(&self, other: &IndoorPoint) -> f64 {
        self.xy.distance(other.xy)
    }
}

/// An indoor partition: a rectangular room or hallway segment on one floor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    /// Identifier (dense index into [`crate::IndoorSpace`] storage).
    pub id: PartitionId,
    /// Floor the partition lies on.
    pub floor: u16,
    /// Footprint of the partition.
    pub rect: Rect,
    /// The semantic region this partition belongs to.
    pub region: RegionId,
    /// Doors opening into this partition.
    pub doors: Vec<DoorId>,
}

impl Partition {
    /// Whether the partition contains the point (same floor and inside rect).
    #[inline]
    pub fn contains(&self, p: &IndoorPoint) -> bool {
        self.floor == p.floor && self.rect.contains(p.xy)
    }
}

/// How a door connects its two partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DoorKind {
    /// Ordinary door/opening between two partitions on the same floor.
    Horizontal,
    /// Staircase (or elevator) connection between two floors; traversal
    /// incurs an extra vertical walking cost.
    Staircase,
}

/// A door (or virtual opening) connecting exactly two partitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Door {
    /// Identifier (dense index).
    pub id: DoorId,
    /// Kind of connection.
    pub kind: DoorKind,
    /// Planar position of the door.
    pub position: Point2,
    /// Floor of the door (for staircases: the lower floor).
    pub floor: u16,
    /// The two partitions the door connects.
    pub partitions: [PartitionId; 2],
    /// Extra walking cost for traversing the door itself (0 for horizontal
    /// doors, the stair length for staircases).
    pub traversal_cost: f64,
}

impl Door {
    /// The partition on the other side of the door.
    ///
    /// Returns `None` when `from` is not adjacent to this door.
    #[inline]
    pub fn other_side(&self, from: PartitionId) -> Option<PartitionId> {
        if self.partitions[0] == from {
            Some(self.partitions[1])
        } else if self.partitions[1] == from {
            Some(self.partitions[0])
        } else {
            None
        }
    }

    /// Location of the door opening as an [`IndoorPoint`] on the given side.
    #[inline]
    pub fn point_on(&self, floor: u16) -> IndoorPoint {
        IndoorPoint::new(floor, self.position)
    }
}

/// Category of a semantic region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionKind {
    /// A destination region (shop, office, gate…) where stays happen.
    Shop,
    /// Hallway/corridor region, traversed by passes.
    Corridor,
    /// Staircase region connecting floors.
    Staircase,
}

/// A semantic region: one or more partitions carrying shared semantics.
///
/// Regions are non-overlapping and — in this implementation — jointly cover
/// the venue, so every indoor point has a well-defined ground-truth region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Region {
    /// Identifier (dense index).
    pub id: RegionId,
    /// Human-readable name (e.g. `"F2-Shop13"`).
    pub name: String,
    /// Category of the region.
    pub kind: RegionKind,
    /// Partitions making up the region.
    pub partitions: Vec<PartitionId>,
    /// Total floor area of the region (m²).
    pub area: f64,
    /// Floor of the region's first partition (regions never span floors
    /// except staircases, whose `floor` is the lower floor).
    pub floor: u16,
}

impl Region {
    /// Whether this region is a destination where objects can stay.
    #[inline]
    pub fn is_destination(&self) -> bool {
        self.kind == RegionKind::Shop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn door_other_side() {
        let d = Door {
            id: DoorId(0),
            kind: DoorKind::Horizontal,
            position: Point2::new(1.0, 1.0),
            floor: 0,
            partitions: [PartitionId(4), PartitionId(9)],
            traversal_cost: 0.0,
        };
        assert_eq!(d.other_side(PartitionId(4)), Some(PartitionId(9)));
        assert_eq!(d.other_side(PartitionId(9)), Some(PartitionId(4)));
        assert_eq!(d.other_side(PartitionId(1)), None);
    }

    #[test]
    fn partition_containment_is_floor_aware() {
        let p = Partition {
            id: PartitionId(0),
            floor: 2,
            rect: Rect::from_origin_size(0.0, 0.0, 10.0, 10.0),
            region: RegionId(0),
            doors: vec![],
        };
        assert!(p.contains(&IndoorPoint::new(2, Point2::new(5.0, 5.0))));
        assert!(!p.contains(&IndoorPoint::new(1, Point2::new(5.0, 5.0))));
        assert!(!p.contains(&IndoorPoint::new(2, Point2::new(15.0, 5.0))));
    }

    #[test]
    fn region_destination_flag() {
        let mk = |kind| Region {
            id: RegionId(0),
            name: "r".into(),
            kind,
            partitions: vec![],
            area: 0.0,
            floor: 0,
        };
        assert!(mk(RegionKind::Shop).is_destination());
        assert!(!mk(RegionKind::Corridor).is_destination());
        assert!(!mk(RegionKind::Staircase).is_destination());
    }
}
