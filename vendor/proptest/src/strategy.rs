//! Value-generation strategies: numeric ranges, tuples, `prop_map`, `Just`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies. Deterministic per case seed.
pub type TestRng = StdRng;

/// Builds the per-case RNG for `seed`.
pub fn new_rng(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// A recipe for generating values of `Self::Value`.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this offline subset generates values directly and relies on
/// per-case seeds for reproduction instead.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map::new(self, f)
    }
}

/// Strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adaptor applying a function to another strategy's output.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F> Map<S, F> {
    /// Wraps `source` so its values are passed through `f`.
    ///
    /// The bounds are stated here (not only on the `Strategy` impl) so the
    /// closure's argument type is known at the construction site — this is
    /// what lets `prop_compose!` use untyped closure patterns.
    pub fn new<O>(source: S, f: F) -> Self
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        Map { source, f }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategy_bounds() {
        let mut rng = new_rng(1);
        for _ in 0..1000 {
            let v = (5usize..9).generate(&mut rng);
            assert!((5..9).contains(&v));
            let f = (0.5f64..0.75).generate(&mut rng);
            assert!((0.5..0.75).contains(&f));
        }
    }

    #[test]
    fn just_is_constant() {
        let mut rng = new_rng(2);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }

    #[test]
    fn map_applies() {
        let mut rng = new_rng(3);
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = new_rng(4);
        let (a, b, c, d) = (0u8..2, 10i32..12, 0.0f64..1.0, 5usize..6).generate(&mut rng);
        assert!(a < 2);
        assert!((10..12).contains(&b));
        assert!((0.0..1.0).contains(&c));
        assert_eq!(d, 5);
    }
}
