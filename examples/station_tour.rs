//! The paper's Figure 1 scenario: a tourist wandering a station-like venue.
//!
//! We follow a single object, print its raw positioning records, and show
//! how the streaming engine turns them into when-where-what m-semantics —
//! the tourist's sequence is pushed through an ingest session the way a
//! live feed would deliver it — including the stay/pass distinction at the
//! same region.
//!
//! Run with: `cargo run --release --example station_tour`

use indoor_semantics::mobility::{PositioningSampler, Simulator};
use indoor_semantics::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let venue = BuildingGenerator::small_office()
        .generate(&mut rng)
        .unwrap();

    // Training corpus.
    let dataset = Dataset::generate(
        "station",
        &venue,
        SimulationConfig::quick(),
        PositioningConfig::synthetic(10.0, 2.0),
        None,
        10,
        &mut rng,
    );
    let engine = EngineBuilder::new()
        .shards(2)
        .base_seed(42)
        .train(
            &venue,
            &dataset.sequences,
            &C2mnConfig::quick_test(),
            &mut rng,
        )
        .unwrap();

    // One fresh "tourist" trajectory.
    let sim = Simulator::new(&venue, SimulationConfig::quick());
    let tour = sim.simulate_object(99, &mut rng);
    let sampler = PositioningSampler::new(&venue, PositioningConfig::synthetic(10.0, 2.0));
    let observed = sampler.observe(&tour, &mut rng);
    let records: Vec<_> = observed.positioning().collect();

    println!("raw positioning records (first 10 of {}):", records.len());
    for r in records.iter().take(10) {
        println!(
            "  ({:6.2}, {:6.2}, F{})  t={:.0}s",
            r.location.xy.x, r.location.xy.y, r.location.floor, r.t
        );
    }

    // Stream the tourist in and read the annotation back from the store.
    let mut session = engine.ingest();
    session.push(99, records.clone());
    session.seal();
    let semantics = engine.semantics_of(99).expect("tourist was ingested");
    println!("\nannotated m-semantics (what the analyst sees):");
    for ms in semantics {
        println!(
            "  ({:<14} {:>6.0}s – {:>6.0}s, {:?})",
            venue.region(ms.region).name,
            ms.period.start,
            ms.period.end,
            ms.event
        );
    }

    // Ground-truth comparison.
    let truth: Vec<_> = observed.truth_labels().collect();
    let times: Vec<f64> = records.iter().map(|r| r.t).collect();
    let true_ms = indoor_semantics::mobility::merge_labels(&times, &truth);
    println!("\nground truth ({} m-semantics):", true_ms.len());
    for ms in &true_ms {
        println!(
            "  ({:<14} {:>6.0}s – {:>6.0}s, {:?})",
            venue.region(ms.region).name,
            ms.period.start,
            ms.period.end,
            ms.event
        );
    }
}
