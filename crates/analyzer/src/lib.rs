//! `ism-analyzer` — the workspace determinism lint.
//!
//! The repo's determinism contract (byte-identical output across thread
//! counts, shard layouts, and restarts) rests on conventions: seeded RNG
//! only, no hash-order-dependent output, no clock reads on kernel paths,
//! panic-free library crates, and documented `unsafe`. This crate
//! machine-checks them. It is dependency-free by design — a hand-rolled
//! tokenizer ([`lexer`]) and token-stream rules ([`rules`]), because the
//! build environment has no crates.io access (no `syn`).
//!
//! Run it with `cargo run -p ism-analyzer -- lint [--deny]`; see the
//! README's "Static analysis" section for the rule catalog and the
//! `// analyzer: allow(<rule>) <reason>` pragma syntax.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::{lint_file, lint_path, FileReport, Finding, RULES};

/// The `.rs` files the lint covers: every `src/` tree of the workspace —
/// root façade, `crates/*`, and `vendor/*` — in sorted order. Test
/// directories, benches, and examples are not library surface.
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.join("src")];
    for group in ["crates", "vendor"] {
        let Ok(entries) = std::fs::read_dir(root.join(group)) else {
            continue;
        };
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    let mut files = Vec::new();
    for dir in dirs {
        collect_rs(&dir, &mut files);
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
