//! Batch annotation throughput: sequences/second of [`BatchAnnotator`] at
//! 1, 2 and 4 worker threads over a mall workload, plus streaming-ingest
//! throughput of the `ism-engine` [`IngestSession`] front-end against the
//! offline `annotate_into_store` reference (both produce byte-identical
//! stores — the measurement is pure overhead accounting), plus training
//! throughput of the pool-parallel [`Trainer`] at the same thread counts
//! (all thread counts learn byte-identical weights — again pure speedup
//! accounting).
//!
//! A **serving** section measures latency-mode ingest: per-sequence
//! annotation latency (push → commit to the live store) under Poisson
//! arrivals at 1, 2 and 4 threads, with the arrival rate calibrated to
//! ~60% of the measured single-thread decode rate. With ≥ 2 threads the
//! persistent pool picks each arrival up on an idle worker immediately
//! (pipelined ingest); at 1 thread arrivals queue until the bounded
//! submission queue fills — the p50/p99 gap between the two is the
//! latency win the serving path exists for.
//!
//! Besides the usual criterion console report, the bench writes
//! `BENCH_annotate.json` at the repository root so CI can archive the perf
//! trajectory across commits. In `--test` (smoke) mode each configuration
//! runs once and the JSON carries coarse single-run estimates.
//!
//! [`IngestSession`]: ism_engine::IngestSession

use criterion::Criterion;
use ism_bench::positioning_batch;
use ism_c2mn::{BatchAnnotator, C2mn, Trainer};
use ism_engine::{EngineBuilder, SemanticsEngine};
use ism_indoor::BuildingGenerator;
use ism_mobility::{Dataset, PositioningConfig, PositioningRecord, SimulationConfig};
use ism_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::{Duration, Instant};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const SHARDS: usize = 8;
const QUEUE_CAPACITY: usize = 8;
/// Queue capacity of the serving (latency-mode) runs: small, so a
/// sequence never waits long for a fill-triggered batch even when no
/// worker is idle.
const SERVING_QUEUE_CAPACITY: usize = 4;
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_annotate.json");

fn main() {
    let mut c = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args();

    // A mall workload sized so a full measurement finishes in seconds:
    // a trained model plus a batch of ~100-record test sequences.
    let mut rng = StdRng::seed_from_u64(1);
    let space = BuildingGenerator::mall().generate(&mut rng).unwrap();
    let dataset = Dataset::generate(
        "bench",
        &space,
        SimulationConfig::quick(),
        PositioningConfig::wifi_mall(),
        None,
        16,
        &mut rng,
    );
    let config = ism_c2mn::C2mnConfig::quick_test();
    let model = C2mn::train(&space, &dataset.sequences, &config, &mut rng).unwrap();
    let sequences = positioning_batch(&dataset.sequences);
    let object_ids: Vec<u64> = dataset.sequences.iter().map(|s| s.object_id).collect();
    let num_records: usize = sequences.iter().map(|s| s.len()).sum();

    let mut throughputs: Vec<(usize, f64)> = Vec::new();
    for threads in THREAD_COUNTS {
        let engine = BatchAnnotator::new(&model, threads, 7);
        c.bench_function(&format!("annotate/mall_batch_{threads}_threads"), |b| {
            b.iter(|| engine.label_batch(black_box(&sequences)))
        });
        if let Some(ns) = c.last_estimate_ns() {
            throughputs.push((threads, sequences.len() as f64 / (ns / 1e9)));
        }
    }

    // Streaming ingest (session push + incremental seal into the live
    // store) vs the offline annotate-into-store reference, per thread
    // count. Each iteration builds a fresh engine so the store always
    // starts empty; the model clone is parameters-only and cheap. Both
    // sides clone the batch inside the timed region — the session consumes
    // owned sequences, so the offline side clones too to keep the ratio a
    // comparison of engine machinery rather than harness allocation.
    let mut ingest: Vec<(usize, Option<f64>, Option<f64>)> = Vec::new();
    for threads in THREAD_COUNTS {
        let annotator = BatchAnnotator::new(&model, threads, 7);
        c.bench_function(&format!("ingest/offline_store_{threads}_threads"), |b| {
            b.iter(|| {
                let batch = sequences.clone();
                annotator.annotate_into_store(black_box(&batch), &object_ids, SHARDS)
            })
        });
        let offline = c
            .last_estimate_ns()
            .map(|ns| sequences.len() as f64 / (ns / 1e9));
        c.bench_function(&format!("ingest/streaming_{threads}_threads"), |b| {
            b.iter(|| {
                let engine = EngineBuilder::new()
                    .threads(threads)
                    .shards(SHARDS)
                    .base_seed(7)
                    .queue_capacity(QUEUE_CAPACITY)
                    .build(model.clone())
                    .unwrap();
                let mut session = engine.ingest();
                for (id, seq) in object_ids.iter().zip(&sequences) {
                    session.push(*id, seq.clone());
                }
                session.seal();
                black_box(engine.num_objects())
            })
        });
        let streaming = c
            .last_estimate_ns()
            .map(|ns| sequences.len() as f64 / (ns / 1e9));
        ingest.push((threads, streaming, offline));
    }

    // Pool-parallel training (per-sequence MCMC sampling fanned out over
    // the worker pool): training sequences/sec per thread count. Weights
    // are byte-identical at every thread count, so this measures pure
    // parallel speedup of Algorithm 1's sampling stage.
    let train_seqs = &dataset.sequences;
    let mut train: Vec<(usize, Option<f64>)> = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = WorkerPool::new(threads);
        c.bench_function(&format!("train/mall_{threads}_threads"), |b| {
            b.iter(|| {
                Trainer::new(&space, config.clone())
                    .seed(7)
                    .pool(&pool)
                    .run(black_box(train_seqs))
                    .unwrap()
                    .model
            })
        });
        let tp = c
            .last_estimate_ns()
            .map(|ns| train_seqs.len() as f64 / (ns / 1e9));
        train.push((threads, tp));
    }

    // Serving latency under Poisson arrivals. Calibrate the offered load
    // to ~60% of the measured single-thread decode rate so the 1-thread
    // run is loaded but stable, then replay the identical (seeded)
    // arrival schedule at every thread count.
    let smoke = std::env::args().any(|a| a == "--test");
    let serving_arrivals = if smoke { 8 } else { 64 };
    let calibrate = Instant::now();
    BatchAnnotator::new(&model, 1, 7).label_batch(&sequences);
    let mean_service = calibrate.elapsed().as_secs_f64() / sequences.len() as f64;
    let arrival_rate = 0.6 / mean_service.max(1e-9);
    let mut serving: Vec<(usize, f64, f64)> = Vec::new();
    for threads in THREAD_COUNTS {
        let latencies = serve_poisson(
            &model,
            threads,
            arrival_rate,
            serving_arrivals,
            &object_ids,
            &sequences,
        );
        let (p50, p99) = (percentile(&latencies, 50.0), percentile(&latencies, 99.0));
        println!(
            "serving/poisson_{threads}_threads: p50 {p50:.3} ms, p99 {p99:.3} ms \
             ({arrival_rate:.1} arrivals/sec)"
        );
        serving.push((threads, p50, p99));
    }

    write_report(
        &throughputs,
        &ingest,
        &train,
        &serving,
        arrival_rate,
        serving_arrivals,
        sequences.len(),
        num_records,
    );
}

/// Replays `total` Poisson arrivals (seeded, identical across thread
/// counts) into a fresh latency-mode engine and returns the per-sequence
/// latency in milliseconds: push instant → the instant the sequence's
/// commit was observed via [`SemanticsEngine::sequences_committed`].
///
/// The submitting client observes commits between arrivals (closed loop):
/// when a push blocks on backpressure the schedule slips, so reported
/// latency is decode + queueing as the client experiences it.
fn serve_poisson(
    model: &C2mn<'_>,
    threads: usize,
    arrival_rate: f64,
    total: usize,
    object_ids: &[u64],
    sequences: &[Vec<PositioningRecord>],
) -> Vec<f64> {
    let engine = EngineBuilder::new()
        .threads(threads)
        .shards(SHARDS)
        .base_seed(7)
        .queue_capacity(SERVING_QUEUE_CAPACITY)
        .build(model.clone())
        .unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let mut session = engine.ingest();
    let mut pushed_at: Vec<Instant> = Vec::with_capacity(total);
    let mut committed_at: Vec<Option<Instant>> = vec![None; total];
    let mut observed = 0u64;
    let start = Instant::now();
    let mut next_arrival = 0.0f64;
    for i in 0..total {
        let u: f64 = rng.random();
        next_arrival += -(1.0 - u).ln() / arrival_rate;
        loop {
            observe_commits(&engine, &mut observed, &mut committed_at);
            let now = start.elapsed().as_secs_f64();
            if now >= next_arrival {
                break;
            }
            let remaining = next_arrival - now;
            std::thread::sleep(Duration::from_secs_f64(remaining.min(2e-4)));
        }
        pushed_at.push(Instant::now());
        session.push(
            object_ids[i % object_ids.len()],
            sequences[i % sequences.len()].clone(),
        );
        observe_commits(&engine, &mut observed, &mut committed_at);
    }
    while (observed as usize) < total {
        observe_commits(&engine, &mut observed, &mut committed_at);
        std::thread::sleep(Duration::from_micros(100));
    }
    session.seal();
    pushed_at
        .iter()
        .zip(&committed_at)
        .map(|(pushed, committed)| {
            committed
                .expect("every arrival commits")
                .saturating_duration_since(*pushed)
                .as_secs_f64()
                * 1e3
        })
        .collect()
}

/// Timestamps every commit whose global index became visible since the
/// last call.
fn observe_commits(
    engine: &SemanticsEngine<'_>,
    observed: &mut u64,
    committed_at: &mut [Option<Instant>],
) {
    let committed = engine.sequences_committed();
    let now = Instant::now();
    while *observed < committed && (*observed as usize) < committed_at.len() {
        committed_at[*observed as usize] = Some(now);
        *observed += 1;
    }
}

/// Nearest-rank percentile (`p` in 0..=100) of unsorted samples.
fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("null".to_string(), |x| format!("{x:.3}"))
}

/// Emits `BENCH_annotate.json` (hand-rolled JSON: the vendored serde does
/// not serialize).
#[allow(clippy::too_many_arguments)]
fn write_report(
    throughputs: &[(usize, f64)],
    ingest: &[(usize, Option<f64>, Option<f64>)],
    train: &[(usize, Option<f64>)],
    serving: &[(usize, f64, f64)],
    arrival_rate: f64,
    serving_arrivals: usize,
    num_sequences: usize,
    num_records: usize,
) {
    // Speedups are relative to the measured 1-thread run; when a CLI
    // filter skipped it, report `null` rather than a made-up baseline.
    let baseline = throughputs
        .iter()
        .find(|&&(threads, _)| threads == 1)
        .map(|&(_, tp)| tp);
    let entries: Vec<String> = throughputs
        .iter()
        .map(|&(threads, tp)| {
            let speedup = baseline.map_or("null".to_string(), |base| format!("{:.3}", tp / base));
            format!(
                "    {{\"threads\": {threads}, \"sequences_per_sec\": {tp:.3}, \
                 \"speedup_vs_1_thread\": {speedup}}}"
            )
        })
        .collect();
    let ingest_entries: Vec<String> = ingest
        .iter()
        .map(|&(threads, streaming, offline)| {
            let ratio = match (streaming, offline) {
                (Some(s), Some(o)) if o > 0.0 => format!("{:.3}", s / o),
                _ => "null".to_string(),
            };
            format!(
                "    {{\"threads\": {threads}, \
                 \"streaming_sequences_per_sec\": {}, \
                 \"offline_sequences_per_sec\": {}, \
                 \"streaming_vs_offline\": {ratio}}}",
                fmt_opt(streaming),
                fmt_opt(offline)
            )
        })
        .collect();
    // Speedups relative to the measured 1-thread training run; `null`
    // when a CLI filter skipped it.
    let train_baseline = train
        .iter()
        .find(|&&(threads, _)| threads == 1)
        .and_then(|&(_, tp)| tp);
    let train_entries: Vec<String> = train
        .iter()
        .map(|&(threads, tp)| {
            let speedup = match (tp, train_baseline) {
                (Some(tp), Some(base)) if base > 0.0 => format!("{:.3}", tp / base),
                _ => "null".to_string(),
            };
            format!(
                "    {{\"threads\": {threads}, \
                 \"train_sequences_per_sec\": {}, \
                 \"speedup_vs_1_thread\": {speedup}}}",
                fmt_opt(tp)
            )
        })
        .collect();
    let serving_entries: Vec<String> = serving
        .iter()
        .map(|&(threads, p50, p99)| {
            format!(
                "    {{\"threads\": {threads}, \"p50_latency_ms\": {p50:.3}, \
                 \"p99_latency_ms\": {p99:.3}}}"
            )
        })
        .collect();
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"annotate_throughput\",\n  \"workload\": \"mall\",\n  \
         \"num_sequences\": {num_sequences},\n  \"num_records\": {num_records},\n  \
         \"host_parallelism\": {available},\n  \"queue_capacity\": {QUEUE_CAPACITY},\n  \
         \"shards\": {SHARDS},\n  \"results\": [\n{}\n  ],\n  \
         \"ingest_results\": [\n{}\n  ],\n  \
         \"train_results\": [\n{}\n  ],\n  \
         \"serving_arrival_rate_per_sec\": {arrival_rate:.3},\n  \
         \"serving_arrivals\": {serving_arrivals},\n  \
         \"serving_queue_capacity\": {SERVING_QUEUE_CAPACITY},\n  \
         \"serving_results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
        ingest_entries.join(",\n"),
        train_entries.join(",\n"),
        serving_entries.join(",\n")
    );
    match std::fs::write(OUT_PATH, &json) {
        Ok(()) => println!("wrote {OUT_PATH}"),
        Err(e) => eprintln!("could not write {OUT_PATH}: {e}"),
    }
}
