//! The `Encode` / `Decode` traits and impls for primitive types.
//!
//! Each workspace crate implements these for its own types (the orphan rule
//! keeps the impls next to the private fields they serialize); this module
//! only covers the building blocks every impl composes from.

use crate::error::CodecError;
use crate::primitives::{write_f64_bits, write_u16, write_u32, write_u64, write_varint};
use crate::reader::Reader;

/// A value that serializes to the `ism-codec` byte format.
///
/// Encoding is infallible and deterministic: equal values produce equal
/// bytes, and every emitted value occupies at least one byte (the container
/// impls rely on that to bound decode-side allocations).
pub trait Encode {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// A value that deserializes from the `ism-codec` byte format.
pub trait Decode: Sized {
    /// Reads one value from `r`, leaving the cursor just past it.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Decodes a value that must occupy the whole buffer.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl Encode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u8()
    }
}

impl Encode for u16 {
    fn encode(&self, out: &mut Vec<u8>) {
        write_u16(out, *self);
    }
}

impl Decode for u16 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u16()
    }
}

impl Encode for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        write_u32(out, *self);
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u32()
    }
}

impl Encode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        write_u64(out, *self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
}

/// `usize` encodes as a varint: counts and indexes are usually small, and
/// the width-independent encoding keeps artifacts portable across
/// pointer widths.
impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, *self as u64);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        usize::try_from(r.varint()?).map_err(|_| CodecError::InvalidValue {
            what: "usize overflow",
        })
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.boolean()
    }
}

/// `f64` encodes as its raw bit pattern: bit-exact for every value
/// including NaNs and signed zeros, which is what byte-exact resume needs.
impl Encode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        write_f64_bits(out, *self);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.f64_bits()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(CodecError::InvalidValue { what: "option tag" }),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        // Every encodable value is at least one byte, so a count larger
        // than the remaining input is provably corrupt — reject it before
        // reserving capacity.
        let count = r.count_prefix(1)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitive_round_trips() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u16::MAX);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(-0.0f64);
        round_trip(f64::NEG_INFINITY);
        round_trip(Some(42u64));
        round_trip(None::<u64>);
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<f64>::new());
        round_trip(vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[test]
    fn nan_round_trips_bit_exactly() {
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let bytes = weird.to_bytes();
        assert_eq!(f64::from_bytes(&bytes).unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn corrupt_vec_count_is_rejected_without_allocating() {
        // A count of u64::MAX/4 with no payload must fail fast.
        let mut bytes = Vec::new();
        write_varint(&mut bytes, u64::MAX / 4);
        assert!(Vec::<u64>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut bytes = 7u32.to_bytes();
        bytes.push(0);
        assert!(matches!(
            u32::from_bytes(&bytes),
            Err(CodecError::TrailingBytes { trailing: 1 })
        ));
    }
}
