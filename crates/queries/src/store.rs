//! Semantics stores: the flat reference store and the sharded, indexed
//! store the parallel query engine runs on.

use ism_indoor::RegionId;
use ism_mobility::{MobilityEvent, MobilitySemantics, TimePeriod};
use ism_runtime::WorkerPool;
use std::collections::HashMap;
use std::fmt;

use crate::index::ShardIndex;
use crate::topk::QuerySet;

/// Default shard count for stores built without an explicit choice —
/// matches the experiment harness default (`REPRO_SHARDS`).
pub const DEFAULT_SHARDS: usize = 8;

/// Errors of store construction and maintenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// Two sharded builders/stores with different shard counts were
    /// combined; objects would hash to different shards on each side.
    ShardCountMismatch {
        /// Shard count of the receiving side.
        left: usize,
        /// Shard count of the absorbed side.
        right: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::ShardCountMismatch { left, right } => write!(
                f,
                "shard count mismatch: cannot combine {left}-shard and {right}-shard stores"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// What one [`seal`](ShardedSemanticsStore::seal_summarized) published.
///
/// The summary is the seal hook consumers build on: `new_stays` is the
/// exact posting feed a standing query folds in to stay byte-identical to
/// a full re-evaluation, and `touched_regions` is the invalidation signal
/// for result caches — a cached answer stays valid precisely when its
/// query regions are disjoint from every touched region.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SealSummary {
    /// Pending entries merged into the sealed objects.
    pub merged: usize,
    /// Every newly published visit posting `(object, region, stay
    /// interval)`, in shard order (pending order within a shard).
    pub new_stays: Vec<(u64, RegionId, TimePeriod)>,
    /// The distinct regions that received at least one new posting,
    /// ascending.
    pub touched_regions: Vec<RegionId>,
}

/// One shard's seal contribution: `(merged count, new stay postings)`.
type SealPart = (usize, Vec<(u64, RegionId, TimePeriod)>);

impl SealSummary {
    fn from_parts(parts: Vec<SealPart>) -> Self {
        let mut summary = SealSummary::default();
        for (merged, stays) in parts {
            summary.merged += merged;
            summary.new_stays.extend(stays);
        }
        let mut touched: Vec<RegionId> = summary.new_stays.iter().map(|&(_, r, _)| r).collect();
        touched.sort_unstable();
        touched.dedup();
        summary.touched_regions = touched;
        summary
    }
}

/// M-semantics of a set of objects, the input to the semantic queries.
///
/// This is the *flat reference* store: queries against it scan every record
/// sequentially. [`ShardedSemanticsStore`] is the indexed, parallel
/// counterpart; both produce byte-identical query results.
#[derive(Debug, Clone, Default)]
pub struct SemanticsStore {
    objects: Vec<(u64, Vec<MobilitySemantics>)>,
    by_id: HashMap<u64, usize>,
}

impl SemanticsStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one object's annotated m-semantics sequence.
    ///
    /// Inserting an `object_id` that is already present *extends* that
    /// object's existing sequence instead of creating a second entry — two
    /// entries for one object would double-count it in
    /// [`tk_frpq`](crate::tk_frpq), which counts *objects* per region pair.
    pub fn insert(&mut self, object_id: u64, semantics: Vec<MobilitySemantics>) {
        extend_or_push(&mut self.objects, &mut self.by_id, object_id, semantics);
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterates over `(object, m-semantics)` entries — the same shape as
    /// [`ShardedSemanticsStore::iter_shard`], so code written against one
    /// store works against the other.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[MobilitySemantics])> {
        self.objects.iter().map(|(id, sem)| (*id, sem.as_slice()))
    }

    /// The m-semantics of `object_id`, if present.
    // analyzer: allow(lib-panic) `by_id` values are maintained as valid indices into `objects`
    pub fn get(&self, object_id: u64) -> Option<&[MobilitySemantics]> {
        self.by_id
            .get(&object_id)
            .map(|&i| self.objects[i].1.as_slice())
    }
}

/// The shard an object hashes to in a store with `num_shards` shards.
///
/// SplitMix64-style finalisation of the object id, reduced modulo the shard
/// count: deterministic, stable across runs and platforms, and part of the
/// public contract so external builders ([`ShardedStoreBuilder`], the batch
/// annotation engine) place objects identically.
pub fn shard_of(object_id: u64, num_shards: usize) -> usize {
    let mut z = object_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % num_shards.max(1) as u64) as usize
}

/// One shard: its sealed objects, the region→visit posting index over
/// them, and a pending segment of appended-but-unsealed entries.
#[derive(Debug, Clone, Default)]
pub(crate) struct Shard {
    pub(crate) objects: Vec<(u64, Vec<MobilitySemantics>)>,
    by_id: HashMap<u64, usize>,
    index: ShardIndex,
    pub(crate) pending: Vec<(u64, Vec<MobilitySemantics>)>,
}

impl Shard {
    pub(crate) fn build(objects: Vec<(u64, Vec<MobilitySemantics>)>) -> Self {
        let index = ShardIndex::build(&objects);
        let by_id = objects
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (*id, i))
            .collect();
        Shard {
            objects,
            by_id,
            index,
            pending: Vec::new(),
        }
    }

    /// Merges the pending segment into the sealed objects and posting
    /// index. Only this shard is touched: the index absorbs the new
    /// postings region by region ([`ShardIndex::append`]), and shards
    /// without pending entries skip the call entirely. Returns how many
    /// pending entries were merged and the visit postings they published.
    fn seal(&mut self) -> (usize, Vec<(u64, RegionId, TimePeriod)>) {
        if self.pending.is_empty() {
            return (0, Vec::new());
        }
        let pending = std::mem::take(&mut self.pending);
        let mut stays = Vec::new();
        for (object, semantics) in &pending {
            for ms in semantics {
                if ms.event == MobilityEvent::Stay {
                    stays.push((*object, ms.region, ms.period));
                }
            }
        }
        self.index.append(&pending);
        let n = pending.len();
        for (object_id, semantics) in pending {
            extend_or_push(&mut self.objects, &mut self.by_id, object_id, semantics);
        }
        (n, stays)
    }

    pub fn index(&self) -> &ShardIndex {
        &self.index
    }
}

/// A [`SemanticsStore`] split into `S` shards, each carrying a region→visit
/// posting index bucketed by time (see [`crate::index`]).
///
/// Objects are hashed whole into one shard by [`shard_of`], so per-shard
/// partial answers of both top-k queries merge by plain summation. Queries
/// fan out across an [`ism_runtime::WorkerPool`] via
/// [`tk_prq_sharded`](crate::tk_prq_sharded) /
/// [`tk_frpq_sharded`](crate::tk_frpq_sharded); results are byte-identical
/// for any shard count and any thread count, and equal to the flat
/// sequential reference.
///
/// The store is **live**: [`append`](ShardedSemanticsStore::append) stages
/// new entries in per-shard pending segments and
/// [`seal`](ShardedSemanticsStore::seal) /
/// [`seal_with`](ShardedSemanticsStore::seal_with) merges them into the
/// posting indexes incrementally — only the shards (and, within a shard,
/// only the posting regions) that received entries are touched, never the
/// full store. The `incremental_oracle` property suite pins a store grown
/// by appends equal to one rebuilt from scratch.
#[derive(Debug, Clone)]
pub struct ShardedSemanticsStore {
    pub(crate) shards: Vec<Shard>,
}

impl ShardedSemanticsStore {
    /// Creates an empty store with `num_shards` shards (clamped to ≥ 1),
    /// ready for incremental [`append`](ShardedSemanticsStore::append) +
    /// [`seal`](ShardedSemanticsStore::seal) ingestion.
    pub fn new(num_shards: usize) -> Self {
        ShardedSemanticsStore {
            shards: (0..num_shards.max(1)).map(|_| Shard::default()).collect(),
        }
    }

    /// Shards a flat store. Object order within each shard follows the flat
    /// store's insertion order.
    pub fn from_store(store: &SemanticsStore, num_shards: usize) -> Self {
        let mut builder = ShardedStoreBuilder::new(num_shards);
        for (object_id, semantics) in store.iter() {
            builder.insert(object_id, semantics.to_vec());
        }
        builder.build()
    }

    /// Appends one object's m-semantics to its shard's **pending segment**.
    ///
    /// Pending entries are invisible to queries and accessors until the
    /// next [`seal`](ShardedSemanticsStore::seal) /
    /// [`seal_with`](ShardedSemanticsStore::seal_with) merges them into the
    /// sealed objects and posting index. Appending an `object_id` that is
    /// already sealed extends that object's entry at seal time — the same
    /// duplicate folding as [`SemanticsStore::insert`] — so a store grown
    /// by any sequence of appends and seals equals one built from scratch
    /// over the same entries in the same order.
    // analyzer: allow(lib-panic) `shard_of` returns a value below `num_shards` by construction
    pub fn append(&mut self, object_id: u64, semantics: Vec<MobilitySemantics>) {
        let shard = shard_of(object_id, self.shards.len());
        self.shards[shard].pending.push((object_id, semantics));
    }

    /// Entries appended but not yet sealed, across all shards.
    pub fn num_pending(&self) -> usize {
        self.shards.iter().map(|s| s.pending.len()).sum()
    }

    /// Merges every shard's pending segment into its sealed objects and
    /// posting index, sequentially. Only shards with pending entries do any
    /// work, and each rebuilds only the posting regions that received new
    /// visits — never the whole store. Returns the number of entries
    /// merged.
    pub fn seal(&mut self) -> usize {
        self.seal_summarized().merged
    }

    /// [`seal`](ShardedSemanticsStore::seal) with the per-shard merges
    /// fanned out over `pool`. Output is identical to the sequential seal.
    pub fn seal_with(&mut self, pool: &WorkerPool) -> usize {
        self.seal_summarized_with(pool).merged
    }

    /// [`seal`](ShardedSemanticsStore::seal) reporting what it published:
    /// the [`SealSummary`] carries every new visit posting and the
    /// distinct touched regions, the feed for standing queries and
    /// cache invalidation.
    pub fn seal_summarized(&mut self) -> SealSummary {
        SealSummary::from_parts(self.shards.iter_mut().map(Shard::seal).collect())
    }

    /// [`seal_summarized`](ShardedSemanticsStore::seal_summarized) with
    /// the per-shard merges fanned out over `pool`. Output (store and
    /// summary alike) is identical to the sequential seal.
    pub fn seal_summarized_with(&mut self, pool: &WorkerPool) -> SealSummary {
        // Nothing pending: skip the fan-out (thread spawns + per-shard
        // moves) that sequential seal's per-shard early exit avoids.
        if self.num_pending() == 0 {
            return SealSummary::default();
        }
        // `run` hands workers shared references, so each shard travels to
        // its worker through a take-once mutex slot (same pattern as
        // [`ShardedStoreBuilder::build_with`]).
        let slots: Vec<parking_lot::Mutex<Option<Shard>>> = std::mem::take(&mut self.shards)
            .into_iter()
            .map(|s| parking_lot::Mutex::new(Some(s)))
            .collect();
        // analyzer: allow(lib-panic) `run` hands out `s < slots.len()`, each exactly once — the take-once slot holds by the same claim
        let sealed = pool.run(slots.len(), |s| {
            let mut shard = slots[s].lock().take().expect("each shard taken once");
            let part = shard.seal();
            (shard, part)
        });
        let mut parts = Vec::with_capacity(sealed.len());
        self.shards = sealed
            .into_iter()
            .map(|(shard, part)| {
                parts.push(part);
                shard
            })
            .collect();
        SealSummary::from_parts(parts)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of sealed objects across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.objects.len()).sum()
    }

    /// Whether the store holds no sealed objects.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.objects.is_empty())
    }

    /// The sealed m-semantics of `object_id`, if present.
    // analyzer: allow(lib-panic) `shard_of` is below `num_shards` and `by_id` values index `objects`
    pub fn get(&self, object_id: u64) -> Option<&[MobilitySemantics]> {
        let shard = &self.shards[shard_of(object_id, self.shards.len())];
        shard
            .by_id
            .get(&object_id)
            .map(|&i| shard.objects[i].1.as_slice())
    }

    /// Iterates every sealed `(object, m-semantics)` entry, shard by shard.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[MobilitySemantics])> {
        (0..self.shards.len()).flat_map(|s| self.iter_shard(s))
    }

    /// Total number of indexed visit postings (stay events).
    pub fn num_postings(&self) -> usize {
        self.shards.iter().map(|s| s.index.num_postings()).sum()
    }

    /// Total encoded bytes of the compressed posting lists (the raw
    /// equivalent is 24 bytes per posting — compression diagnostics).
    pub fn index_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.index.encoded_bytes()).sum()
    }

    /// Whether any region of `query` has at least one indexed posting in
    /// any shard — the guard that lets unmatched queries skip the fan-out.
    pub(crate) fn has_any_region(&self, query: &QuerySet) -> bool {
        self.shards
            .iter()
            .any(|s| query.iter().any(|r| s.index.has_region(r)))
    }

    /// Objects per shard, in shard order (diagnostics / balance checks).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.objects.len()).collect()
    }

    /// Iterates `(object, m-semantics)` entries of shard `s`.
    // analyzer: allow(lib-panic) `s < num_shards()` is the documented API contract of the shard accessors
    pub fn iter_shard(&self, s: usize) -> impl Iterator<Item = (u64, &[MobilitySemantics])> {
        self.shards[s]
            .objects
            .iter()
            .map(|(id, sem)| (*id, sem.as_slice()))
    }

    /// Iterates the **pending** (appended but unsealed) entries of shard
    /// `s`, in append order. This is the exact per-shard segment the next
    /// seal will merge — the engine's durability layer writes it as one
    /// seal-log frame before sealing.
    // analyzer: allow(lib-panic) `s < num_shards()` is the documented API contract of the shard accessors
    pub fn pending_of_shard(&self, s: usize) -> impl Iterator<Item = (u64, &[MobilitySemantics])> {
        self.shards[s]
            .pending
            .iter()
            .map(|(id, sem)| (*id, sem.as_slice()))
    }

    // analyzer: allow(lib-panic) `s < num_shards()` is the documented API contract of the shard accessors
    pub(crate) fn shard(&self, s: usize) -> &Shard {
        &self.shards[s]
    }

    /// Per-shard partial TkPRQ counts, evaluated on `pool` and merged by
    /// key. Exposed through [`tk_prq_sharded`](crate::tk_prq_sharded).
    pub(crate) fn prq_partials(
        &self,
        query: &QuerySet,
        qt: &TimePeriod,
        pool: &WorkerPool,
    ) -> HashMap<RegionId, usize> {
        pool.map_reduce(
            self.num_shards(),
            HashMap::new,
            |acc: &mut HashMap<RegionId, usize>, s| {
                for (region, n) in self.shard(s).index().prq_counts(query, qt) {
                    *acc.entry(region).or_insert(0) += n;
                }
            },
            merge_counts,
        )
    }
}

/// Extends an existing object's entry or appends a new one — the single
/// definition of duplicate-object-id folding, shared by
/// [`SemanticsStore::insert`] and [`ShardedStoreBuilder`] coalescing so
/// flat and sharded stores can never diverge on duplicate handling.
// analyzer: allow(lib-panic) `by_id` values are maintained as valid indices into `objects`
fn extend_or_push(
    objects: &mut Vec<(u64, Vec<MobilitySemantics>)>,
    by_id: &mut HashMap<u64, usize>,
    object_id: u64,
    semantics: Vec<MobilitySemantics>,
) {
    match by_id.get(&object_id) {
        Some(&i) => objects[i].1.extend(semantics),
        None => {
            by_id.insert(object_id, objects.len());
            objects.push((object_id, semantics));
        }
    }
}

/// Sums `other` into `total` key-wise — the commutative reduction behind
/// both queries, which is what makes the merge order unobservable.
fn merge_counts<K: std::hash::Hash + Eq>(total: &mut HashMap<K, usize>, other: HashMap<K, usize>) {
    for (key, n) in other {
        *total.entry(key).or_insert(0) += n;
    }
}

/// Accumulates `(object, m-semantics)` entries into shard-partitioned parts
/// and builds a [`ShardedSemanticsStore`].
///
/// Parallel producers each fill their own builder (tagging entries with
/// [`ShardedStoreBuilder::insert_at`] item indices), [`merge`] the partial
/// builders, and [`build`] once: entries are re-ordered by their tags
/// before indexing, so the result is identical to sequential insertion in
/// tag order no matter which worker produced what.
///
/// [`merge`]: ShardedStoreBuilder::merge
/// [`build`]: ShardedStoreBuilder::build
#[derive(Debug, Clone)]
#[must_use = "a builder does nothing until `build`/`build_with` finalises it"]
pub struct ShardedStoreBuilder {
    parts: Vec<Vec<TaggedEntry>>,
    next_order: u64,
}

impl Default for ShardedStoreBuilder {
    /// A builder targeting [`DEFAULT_SHARDS`] shards.
    fn default() -> Self {
        ShardedStoreBuilder::new(DEFAULT_SHARDS)
    }
}

/// One builder entry: `(order tag, object, semantics)`.
type TaggedEntry = (u64, u64, Vec<MobilitySemantics>);

impl ShardedStoreBuilder {
    /// Creates a builder targeting `num_shards` shards (clamped to ≥ 1).
    pub fn new(num_shards: usize) -> Self {
        ShardedStoreBuilder {
            parts: vec![Vec::new(); num_shards.max(1)],
            next_order: 0,
        }
    }

    /// Number of shards the built store will have.
    pub fn num_shards(&self) -> usize {
        self.parts.len()
    }

    /// Adds one entry with the next sequential order tag (single-producer
    /// use; matches [`SemanticsStore::insert`] order semantics).
    pub fn insert(&mut self, object_id: u64, semantics: Vec<MobilitySemantics>) {
        let order = self.next_order;
        self.next_order += 1;
        self.insert_at(order, object_id, semantics);
    }

    /// Adds one entry tagged with an explicit `order` (parallel producers
    /// tag with the item index they processed).
    // analyzer: allow(lib-panic) `shard_of` returns a value below `parts.len()` by construction
    pub fn insert_at(&mut self, order: u64, object_id: u64, semantics: Vec<MobilitySemantics>) {
        let shard = shard_of(object_id, self.parts.len());
        self.parts[shard].push((order, object_id, semantics));
        self.next_order = self.next_order.max(order + 1);
    }

    /// Absorbs another builder's entries.
    ///
    /// Both builders must target the same shard count — objects hash to
    /// shards by [`shard_of`]`(id, num_shards)`, so entries binned under a
    /// different count would land in the wrong shard. A mismatch returns
    /// [`StoreError::ShardCountMismatch`] and leaves `self` unchanged
    /// (`other` is consumed either way).
    pub fn merge(&mut self, other: ShardedStoreBuilder) -> Result<(), StoreError> {
        if self.parts.len() != other.parts.len() {
            return Err(StoreError::ShardCountMismatch {
                left: self.parts.len(),
                right: other.parts.len(),
            });
        }
        for (into, from) in self.parts.iter_mut().zip(other.parts) {
            into.extend(from);
        }
        self.next_order = self.next_order.max(other.next_order);
        Ok(())
    }

    /// Finalises into a sharded store, building shard indexes sequentially.
    #[must_use = "build returns the finished store; the builder is consumed"]
    pub fn build(self) -> ShardedSemanticsStore {
        let shards = self
            .parts
            .into_iter()
            .map(|part| Shard::build(Self::coalesce(part)))
            .collect();
        ShardedSemanticsStore { shards }
    }

    /// Finalises into a sharded store, fanning the per-shard index builds
    /// out over `pool`. Output is identical to [`ShardedStoreBuilder::build`].
    #[must_use = "build_with returns the finished store; the builder is consumed"]
    pub fn build_with(self, pool: &WorkerPool) -> ShardedSemanticsStore {
        // `run` hands workers shared references, so each part travels to
        // its worker through a take-once mutex slot.
        let parts: Vec<parking_lot::Mutex<Option<Vec<TaggedEntry>>>> = self
            .parts
            .into_iter()
            .map(|p| parking_lot::Mutex::new(Some(p)))
            .collect();
        // analyzer: allow(lib-panic) `run` hands out `s < parts.len()`, each exactly once — the take-once slot holds by the same claim
        let shards = pool.run(parts.len(), |s| {
            let part = parts[s].lock().take().expect("each shard part taken once");
            Shard::build(Self::coalesce(part))
        });
        ShardedSemanticsStore { shards }
    }

    /// Orders a shard's entries by tag and folds duplicate object ids into
    /// one entry each (first occurrence wins the position, later semantics
    /// extend it) — the same semantics as repeated
    /// [`SemanticsStore::insert`] calls.
    fn coalesce(mut part: Vec<TaggedEntry>) -> Vec<(u64, Vec<MobilitySemantics>)> {
        part.sort_unstable_by_key(|(order, object, _)| (*order, *object));
        let mut objects: Vec<(u64, Vec<MobilitySemantics>)> = Vec::with_capacity(part.len());
        let mut by_id: HashMap<u64, usize> = HashMap::new();
        for (_, object_id, semantics) in part {
            extend_or_push(&mut objects, &mut by_id, object_id, semantics);
        }
        objects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_mobility::MobilityEvent::Stay;

    fn ms(region: u32, start: f64, end: f64) -> MobilitySemantics {
        MobilitySemantics {
            region: RegionId(region),
            period: TimePeriod::new(start, end),
            event: Stay,
        }
    }

    #[test]
    fn insert_extends_existing_object() {
        // Regression: two inserts under one object id used to create two
        // entries, double-counting the object in TkFRPQ.
        let mut store = SemanticsStore::new();
        store.insert(7, vec![ms(0, 0.0, 10.0)]);
        store.insert(9, vec![ms(1, 0.0, 10.0)]);
        store.insert(7, vec![ms(2, 20.0, 30.0)]);
        assert_eq!(store.len(), 2);
        let entry = store.iter().find(|(id, _)| *id == 7).unwrap();
        assert_eq!(entry.1.len(), 2);
        assert_eq!(entry.1[1].region, RegionId(2));
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for id in 0..1000u64 {
            let s = shard_of(id, 7);
            assert!(s < 7);
            assert_eq!(s, shard_of(id, 7));
        }
        // Zero shards clamps rather than dividing by zero.
        assert_eq!(shard_of(42, 0), 0);
    }

    #[test]
    fn from_store_conserves_objects_and_postings() {
        let mut store = SemanticsStore::new();
        for id in 0..50u64 {
            store.insert(id, vec![ms(id as u32 % 5, id as f64, id as f64 + 3.0)]);
        }
        for num_shards in [1, 3, 8, 64] {
            let sharded = ShardedSemanticsStore::from_store(&store, num_shards);
            assert_eq!(sharded.num_shards(), num_shards);
            assert_eq!(sharded.len(), 50);
            assert_eq!(sharded.num_postings(), 50);
            assert_eq!(sharded.shard_sizes().iter().sum::<usize>(), 50);
            let mut seen: Vec<u64> = (0..num_shards)
                .flat_map(|s| sharded.iter_shard(s).map(|(id, _)| id))
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn builder_order_tags_make_merge_order_unobservable() {
        // Two producers splitting the items [0..20) arbitrarily must build
        // the same store as sequential insertion, including duplicate
        // folding, regardless of merge direction.
        let semantics = |i: u64| vec![ms(i as u32 % 4, i as f64, i as f64 + 2.0)];
        let object = |i: u64| i % 6; // duplicates across items
        let sequential = {
            let mut b = ShardedStoreBuilder::new(3);
            for i in 0..20u64 {
                b.insert_at(i, object(i), semantics(i));
            }
            b.build()
        };
        let mut a = ShardedStoreBuilder::new(3);
        let mut b = ShardedStoreBuilder::new(3);
        for i in 0..20u64 {
            let target = if i % 3 == 0 { &mut a } else { &mut b };
            target.insert_at(i, object(i), semantics(i));
        }
        b.merge(a).unwrap(); // reversed merge order on purpose
        let merged = b.build();
        for s in 0..3 {
            let want: Vec<_> = sequential
                .iter_shard(s)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            let got: Vec<_> = merged
                .iter_shard(s)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            assert_eq!(got, want, "shard {s}");
        }
    }

    #[test]
    fn merge_with_mismatched_shard_counts_is_a_typed_error() {
        let mut a = ShardedStoreBuilder::new(3);
        a.insert(1, vec![ms(0, 0.0, 5.0)]);
        let mut b = ShardedStoreBuilder::new(4);
        b.insert(2, vec![ms(1, 0.0, 5.0)]);
        let err = a.merge(b).unwrap_err();
        assert_eq!(err, StoreError::ShardCountMismatch { left: 3, right: 4 });
        assert!(err.to_string().contains("3-shard"));
        // The receiving builder is unchanged by the failed merge.
        assert_eq!(a.build().len(), 1);
    }

    #[test]
    fn default_builder_targets_default_shards() {
        assert_eq!(ShardedStoreBuilder::default().num_shards(), DEFAULT_SHARDS);
    }

    #[test]
    fn append_seal_matches_builder_build() {
        // A store grown incrementally — appends in three slices, sealed
        // after each — must equal the from-scratch builder build, duplicate
        // ids included.
        let semantics = |i: u64| vec![ms(i as u32 % 5, i as f64 * 3.0, i as f64 * 3.0 + 2.0)];
        let object = |i: u64| i % 7;
        let reference = {
            let mut b = ShardedStoreBuilder::new(4);
            for i in 0..30u64 {
                b.insert(object(i), semantics(i));
            }
            b.build()
        };
        let mut live = ShardedSemanticsStore::new(4);
        for (lo, hi) in [(0, 11), (11, 12), (12, 30)] {
            for i in lo..hi {
                live.append(object(i), semantics(i));
            }
            live.seal();
        }
        assert_eq!(live.num_pending(), 0);
        assert_eq!(live.len(), reference.len());
        assert_eq!(live.num_postings(), reference.num_postings());
        for s in 0..4 {
            let want: Vec<_> = reference
                .iter_shard(s)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            let got: Vec<_> = live
                .iter_shard(s)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            assert_eq!(got, want, "shard {s}");
        }
    }

    #[test]
    fn seal_with_matches_sequential_seal() {
        let build_unsealed = || {
            let mut live = ShardedSemanticsStore::new(5);
            for i in 0..40u64 {
                live.append(i % 9, vec![ms(i as u32 % 3, i as f64, i as f64 + 1.0)]);
            }
            live
        };
        let mut sequential = build_unsealed();
        assert_eq!(sequential.seal(), 40);
        let mut parallel = build_unsealed();
        assert_eq!(parallel.seal_with(&WorkerPool::new(4)), 40);
        for s in 0..5 {
            let want: Vec<_> = sequential
                .iter_shard(s)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            let got: Vec<_> = parallel
                .iter_shard(s)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            assert_eq!(got, want, "shard {s}");
        }
    }

    #[test]
    fn pending_entries_are_invisible_until_seal() {
        let mut live = ShardedSemanticsStore::new(3);
        live.append(5, vec![ms(1, 0.0, 10.0)]);
        assert_eq!(live.num_pending(), 1);
        assert!(live.is_empty());
        assert_eq!(live.num_postings(), 0);
        assert_eq!(live.get(5), None);
        assert_eq!(live.seal(), 1);
        assert_eq!(live.num_pending(), 0);
        assert_eq!(live.len(), 1);
        assert_eq!(live.num_postings(), 1);
        assert_eq!(live.get(5).unwrap().len(), 1);
        // A second seal with nothing pending is a no-op.
        assert_eq!(live.seal(), 0);
    }

    #[test]
    fn get_and_iter_cover_sealed_objects() {
        let mut live = ShardedSemanticsStore::new(4);
        for i in 0..20u64 {
            live.append(i, vec![ms(i as u32 % 3, i as f64, i as f64 + 1.0)]);
        }
        live.seal();
        assert_eq!(live.get(7).unwrap()[0].region, RegionId(1));
        assert_eq!(live.get(99), None);
        let mut ids: Vec<u64> = live.iter().map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
        // Appending to an existing object extends its entry at seal time.
        live.append(7, vec![ms(2, 100.0, 110.0)]);
        live.seal();
        assert_eq!(live.get(7).unwrap().len(), 2);
        assert_eq!(live.len(), 20);
    }

    #[test]
    fn build_with_matches_sequential_build() {
        let mut builder = ShardedStoreBuilder::new(5);
        for i in 0..40u64 {
            builder.insert(i, vec![ms(i as u32 % 3, i as f64, i as f64 + 1.0)]);
        }
        let parallel = builder.clone().build_with(&WorkerPool::new(4));
        let sequential = builder.build();
        for s in 0..5 {
            let want: Vec<_> = sequential
                .iter_shard(s)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            let got: Vec<_> = parallel
                .iter_shard(s)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            assert_eq!(got, want, "shard {s}");
        }
    }
}
