//! The public C2MN model: training, labeling, annotation.

use crate::network::{invalidate_events_after_region_sweep, invalidate_regions_after_event_sweep};
use crate::{
    C2mnConfig, CoupledNetwork, EventSites, RegionSites, SequenceContext, TrainError, TrainReport,
    Trainer, Weights,
};
use ism_indoor::{IndoorSpace, RegionId};
use ism_mobility::{
    merge_labels, LabeledSequence, MobilityEvent, MobilitySemantics, PositioningRecord,
};
use ism_pgm::{
    gibbs_sweep_cached, gibbs_sweep_with, icm_sweep, icm_sweep_cached, AnnealSchedule, SweepCache,
    SweepScratch,
};
use rand::Rng;

/// Reusable decode buffers: the per-sequence state vectors, the memoized
/// per-site candidate rows of both chains, and the label snapshots used for
/// cross-chain invalidation.
///
/// [`C2mn::label`] runs dozens of sweeps per sequence; batch workloads
/// decode thousands of sequences. Owning one `DecodeScratch` per worker
/// (see [`crate::BatchAnnotator`]) and routing decoding through
/// [`C2mn::label_with`] replaces those per-sequence/per-sweep allocations
/// with buffers that grow once and are reused — and carries the
/// [`SweepCache`]s that make the sweeps incremental.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    region_state: Vec<usize>,
    event_state: Vec<usize>,
    regions: Vec<RegionId>,
    events: Vec<MobilityEvent>,
    sweep: SweepScratch,
    region_cache: SweepCache,
    event_cache: SweepCache,
    prev_regions: Vec<RegionId>,
    prev_events: Vec<MobilityEvent>,
}

impl DecodeScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        DecodeScratch::default()
    }
}

/// A trained coupled conditional Markov network bound to a venue.
///
/// `Clone` duplicates the learned parameters (weights, region frequencies,
/// training report) while sharing the borrowed venue — cheap relative to
/// training, and what lets an owning engine (`ism-engine`) take the model
/// while the caller keeps a copy.
#[derive(Debug, Clone)]
pub struct C2mn<'a> {
    space: &'a IndoorSpace,
    config: C2mnConfig,
    weights: Weights,
    region_freq: Vec<f64>,
    report: TrainReport,
}

impl<'a> C2mn<'a> {
    /// Trains a model on fully-labelled sequences using the alternate
    /// learning algorithm (Algorithm 1).
    ///
    /// A thin convenience wrapper over [`Trainer`]: the base seed is drawn
    /// from `rng` and the sampling runs sequentially. Use a [`Trainer`]
    /// directly for pool-parallel sampling, explicit seeds, warm starts,
    /// per-iteration observation, or checkpoint/resume.
    pub fn train<R: Rng + ?Sized>(
        space: &'a IndoorSpace,
        train: &[LabeledSequence],
        config: &C2mnConfig,
        rng: &mut R,
    ) -> Result<Self, TrainError> {
        Trainer::new(space, config.clone())
            .seed(rng.random::<u64>())
            .run(train)
            .map(|outcome| outcome.model)
    }

    /// Assembles a trained model from its parts (the [`Trainer`] output).
    pub(crate) fn from_parts(
        space: &'a IndoorSpace,
        config: C2mnConfig,
        weights: Weights,
        region_freq: Vec<f64>,
        report: TrainReport,
    ) -> Self {
        C2mn {
            space,
            config,
            weights,
            region_freq,
            report,
        }
    }

    /// Builds a model from explicit weights (tests, ablations, and loading
    /// previously trained parameters).
    pub fn from_weights(space: &'a IndoorSpace, config: C2mnConfig, weights: Weights) -> Self {
        C2mn {
            space,
            config,
            weights,
            region_freq: Vec::new(),
            report: TrainReport::default(),
        }
    }

    /// The learned template weights.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// The model configuration.
    pub fn config(&self) -> &C2mnConfig {
        &self.config
    }

    /// Training diagnostics.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// The venue this model is bound to.
    pub fn space(&self) -> &'a IndoorSpace {
        self.space
    }

    /// Normalised historical region frequency (empty unless trained with
    /// the frequency prior's statistics).
    pub(crate) fn region_freq_slice(&self) -> &[f64] {
        &self.region_freq
    }

    /// Labels every record of a p-sequence with a (region, event) pair by
    /// joint MAP inference: ST-DBSCAN / nearest-neighbour initialisation,
    /// annealed Gibbs sweeps alternating between the two chains, then ICM
    /// to a local optimum.
    pub fn label<R: Rng + ?Sized>(
        &self,
        records: &[PositioningRecord],
        rng: &mut R,
    ) -> Vec<(RegionId, MobilityEvent)> {
        self.label_with(records, rng, &mut DecodeScratch::new())
    }

    /// [`C2mn::label`] routed through caller-owned scratch buffers.
    ///
    /// Output is identical to [`C2mn::label`] for the same RNG state; only
    /// the allocation strategy differs. Batch workloads keep one
    /// [`DecodeScratch`] per worker and reuse it across sequences.
    ///
    /// This is the memoized decode path: both chains sample through a
    /// [`SweepCache`] that refills a site's candidate row only when the
    /// site's Markov blanket changed, and a region half-sweep dirties the
    /// affected event rows (and vice versa) via the snapshot-diff helpers
    /// in [`crate::network`]. The result is byte-identical to the naive
    /// loop, which remains available as [`C2mn::label_with_naive`] and
    /// serves as the test oracle.
    pub fn label_with<R: Rng + ?Sized>(
        &self,
        records: &[PositioningRecord],
        rng: &mut R,
        scratch: &mut DecodeScratch,
    ) -> Vec<(RegionId, MobilityEvent)> {
        if records.is_empty() {
            return Vec::new();
        }
        let ctx = SequenceContext::build(self.space, &self.config, records, &self.region_freq);
        let net = CoupledNetwork::new(&ctx, &self.weights);
        let n = ctx.len();
        // Region flips reach event rows (and vice versa) only through the
        // segmentation features; without them the chains share no cliques
        // and the snapshot-diff pass is skipped.
        let coupled = {
            let s = &self.config.structure;
            s.event_segmentation || s.space_segmentation
        };

        let DecodeScratch {
            region_state,
            event_state,
            regions,
            events,
            sweep: _,
            region_cache,
            event_cache,
            prev_regions,
            prev_events,
        } = scratch;
        region_state.clear();
        region_state.extend_from_slice(&ctx.nearest_idx);
        event_state.clear();
        event_state.extend(ctx.dbscan_events.iter().map(|e| e.index()));
        regions.clear();
        regions.extend(
            ctx.nearest_idx
                .iter()
                .enumerate()
                .map(|(i, &c)| ctx.candidates[i][c]),
        );
        events.clear();
        events.extend_from_slice(&ctx.dbscan_events);
        {
            let rs = RegionSites {
                net: &net,
                events: events.as_slice(),
            };
            region_cache.reset(&rs);
            let es = EventSites {
                net: &net,
                regions: regions.as_slice(),
            };
            event_cache.reset(&es);
        }

        // Annealed coupled Gibbs, cooling geometrically from `t_start` on
        // the first sweep to exactly `t_end` on the last.
        let schedule = AnnealSchedule {
            t_start: self.config.anneal_t_start,
            t_end: self.config.anneal_t_end,
            sweeps: self.config.anneal_sweeps.max(1),
        };
        for k in 0..schedule.sweeps {
            let t = schedule.temperature(k);
            if coupled {
                prev_regions.clear();
                prev_regions.extend_from_slice(regions);
            }
            {
                let rs = RegionSites {
                    net: &net,
                    events: events.as_slice(),
                };
                gibbs_sweep_cached(&rs, region_state, t, rng, region_cache);
            }
            for i in 0..n {
                regions[i] = ctx.candidates[i][region_state[i]];
            }
            if coupled {
                invalidate_events_after_region_sweep(
                    &ctx,
                    prev_regions,
                    regions,
                    events,
                    event_cache,
                );
                prev_events.clear();
                prev_events.extend_from_slice(events);
            }
            {
                let es = EventSites {
                    net: &net,
                    regions: regions.as_slice(),
                };
                gibbs_sweep_cached(&es, event_state, t, rng, event_cache);
            }
            for i in 0..n {
                events[i] = MobilityEvent::ALL[event_state[i]];
            }
            if coupled {
                invalidate_regions_after_event_sweep(
                    &ctx,
                    prev_events,
                    events,
                    regions,
                    region_cache,
                );
            }
        }

        // ICM polish: alternate until a joint fixed point.
        for _ in 0..(2 * n + 4) {
            if coupled {
                prev_regions.clear();
                prev_regions.extend_from_slice(regions);
            }
            let changed_r = {
                let rs = RegionSites {
                    net: &net,
                    events: events.as_slice(),
                };
                icm_sweep_cached(&rs, region_state, region_cache)
            };
            for i in 0..n {
                regions[i] = ctx.candidates[i][region_state[i]];
            }
            if coupled {
                invalidate_events_after_region_sweep(
                    &ctx,
                    prev_regions,
                    regions,
                    events,
                    event_cache,
                );
                prev_events.clear();
                prev_events.extend_from_slice(events);
            }
            let changed_e = {
                let es = EventSites {
                    net: &net,
                    regions: regions.as_slice(),
                };
                icm_sweep_cached(&es, event_state, event_cache)
            };
            for i in 0..n {
                events[i] = MobilityEvent::ALL[event_state[i]];
            }
            if coupled {
                invalidate_regions_after_event_sweep(
                    &ctx,
                    prev_events,
                    events,
                    regions,
                    region_cache,
                );
            }
            if changed_r == 0 && changed_e == 0 {
                break;
            }
        }
        region_cache.flush_stats();
        event_cache.flush_stats();

        regions
            .iter()
            .copied()
            .zip(events.iter().copied())
            .collect()
    }

    /// The pre-memoization decode loop, kept compiled as the reference
    /// oracle: every sweep recomputes every `(site, candidate)` local
    /// log-potential from scratch.
    ///
    /// [`C2mn::label_with`] must produce byte-identical labels for the
    /// same RNG state — the `kernel_oracle` integration suite and the
    /// benchmark's naive-vs-cached comparison both call this.
    pub fn label_with_naive<R: Rng + ?Sized>(
        &self,
        records: &[PositioningRecord],
        rng: &mut R,
        scratch: &mut DecodeScratch,
    ) -> Vec<(RegionId, MobilityEvent)> {
        if records.is_empty() {
            return Vec::new();
        }
        let ctx = SequenceContext::build(self.space, &self.config, records, &self.region_freq);
        let net = CoupledNetwork::new(&ctx, &self.weights);
        let n = ctx.len();

        let DecodeScratch {
            region_state,
            event_state,
            regions,
            events,
            sweep,
            ..
        } = scratch;
        region_state.clear();
        region_state.extend_from_slice(&ctx.nearest_idx);
        event_state.clear();
        event_state.extend(ctx.dbscan_events.iter().map(|e| e.index()));
        regions.clear();
        regions.extend(
            ctx.nearest_idx
                .iter()
                .enumerate()
                .map(|(i, &c)| ctx.candidates[i][c]),
        );
        events.clear();
        events.extend_from_slice(&ctx.dbscan_events);

        let schedule = AnnealSchedule {
            t_start: self.config.anneal_t_start,
            t_end: self.config.anneal_t_end,
            sweeps: self.config.anneal_sweeps.max(1),
        };
        for k in 0..schedule.sweeps {
            let t = schedule.temperature(k);
            {
                let rs = RegionSites {
                    net: &net,
                    events: events.as_slice(),
                };
                gibbs_sweep_with(&rs, region_state, t, rng, sweep);
            }
            for i in 0..n {
                regions[i] = ctx.candidates[i][region_state[i]];
            }
            {
                let es = EventSites {
                    net: &net,
                    regions: regions.as_slice(),
                };
                gibbs_sweep_with(&es, event_state, t, rng, sweep);
            }
            for i in 0..n {
                events[i] = MobilityEvent::ALL[event_state[i]];
            }
        }

        for _ in 0..(2 * n + 4) {
            let changed_r = {
                let rs = RegionSites {
                    net: &net,
                    events: events.as_slice(),
                };
                icm_sweep(&rs, region_state)
            };
            for i in 0..n {
                regions[i] = ctx.candidates[i][region_state[i]];
            }
            let changed_e = {
                let es = EventSites {
                    net: &net,
                    regions: regions.as_slice(),
                };
                icm_sweep(&es, event_state)
            };
            for i in 0..n {
                events[i] = MobilityEvent::ALL[event_state[i]];
            }
            if changed_r == 0 && changed_e == 0 {
                break;
            }
        }

        regions
            .iter()
            .copied()
            .zip(events.iter().copied())
            .collect()
    }

    /// Annotates a p-sequence with m-semantics: label every record, then
    /// merge consecutive records sharing both labels (label-and-merge).
    pub fn annotate<R: Rng + ?Sized>(
        &self,
        records: &[PositioningRecord],
        rng: &mut R,
    ) -> Vec<MobilitySemantics> {
        self.annotate_with(records, rng, &mut DecodeScratch::new())
    }

    /// [`C2mn::annotate`] routed through caller-owned scratch buffers.
    pub fn annotate_with<R: Rng + ?Sized>(
        &self,
        records: &[PositioningRecord],
        rng: &mut R,
        scratch: &mut DecodeScratch,
    ) -> Vec<MobilitySemantics> {
        let labels = self.label_with(records, rng, scratch);
        let times: Vec<f64> = records.iter().map(|r| r.t).collect();
        merge_labels(&times, &labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_indoor::BuildingGenerator;
    use ism_mobility::{Dataset, PositioningConfig, SimulationConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pipeline() -> (ism_indoor::IndoorSpace, Dataset) {
        let mut rng = StdRng::seed_from_u64(1);
        let space = BuildingGenerator::small_office()
            .generate(&mut rng)
            .unwrap();
        let dataset = Dataset::generate(
            "d",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(8.0, 1.5),
            None,
            8,
            &mut rng,
        );
        (space, dataset)
    }

    #[test]
    fn end_to_end_training_and_annotation() {
        let (space, dataset) = pipeline();
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = dataset.split(0.7, &mut rng);
        let config = C2mnConfig::quick_test();
        let model = C2mn::train(&space, &train, &config, &mut rng).unwrap();

        let mut correct_r = 0usize;
        let mut correct_e = 0usize;
        let mut total = 0usize;
        for seq in &test {
            let records: Vec<_> = seq.positioning().collect();
            let labels = model.label(&records, &mut rng);
            assert_eq!(labels.len(), records.len());
            for (lab, truth) in labels.iter().zip(seq.truth_labels()) {
                total += 1;
                correct_r += usize::from(lab.0 == truth.0);
                correct_e += usize::from(lab.1 == truth.1);
            }
        }
        assert!(total > 0);
        let ra = correct_r as f64 / total as f64;
        let ea = correct_e as f64 / total as f64;
        // With low noise in a small venue the model should do well.
        assert!(ra > 0.5, "region accuracy {ra}");
        assert!(ea > 0.6, "event accuracy {ea}");
    }

    #[test]
    fn annotation_merges_runs() {
        let (space, dataset) = pipeline();
        let mut rng = StdRng::seed_from_u64(3);
        let config = C2mnConfig::quick_test();
        let model = C2mn::train(&space, &dataset.sequences, &config, &mut rng).unwrap();
        let records: Vec<_> = dataset.sequences[0].positioning().collect();
        let ms = model.annotate(&records, &mut rng);
        assert!(!ms.is_empty());
        assert!(ms.len() <= records.len());
        // Periods are ordered and disjoint.
        for w in ms.windows(2) {
            assert!(w[0].period.end < w[1].period.start);
        }
        // Adjacent m-semantics differ in at least one label.
        for w in ms.windows(2) {
            assert!(w[0].region != w[1].region || w[0].event != w[1].event);
        }
    }

    #[test]
    fn empty_inputs() {
        let (space, dataset) = pipeline();
        let mut rng = StdRng::seed_from_u64(4);
        let config = C2mnConfig::quick_test();
        assert_eq!(
            C2mn::train(&space, &[], &config, &mut rng).unwrap_err(),
            TrainError::EmptyTrainingSet
        );
        let model = C2mn::train(&space, &dataset.sequences, &config, &mut rng).unwrap();
        assert!(model.label(&[], &mut rng).is_empty());
        assert!(model.annotate(&[], &mut rng).is_empty());
    }

    #[test]
    fn scratch_reuse_matches_fresh_buffers() {
        let (space, dataset) = pipeline();
        let mut rng = StdRng::seed_from_u64(6);
        let config = C2mnConfig::quick_test();
        let model = C2mn::train(&space, &dataset.sequences, &config, &mut rng).unwrap();
        // One scratch reused across sequences must match per-call fresh
        // buffers for identical RNG streams.
        let mut scratch = DecodeScratch::new();
        for (i, seq) in dataset.sequences.iter().take(4).enumerate() {
            let records: Vec<_> = seq.positioning().collect();
            let mut rng_a = StdRng::seed_from_u64(100 + i as u64);
            let mut rng_b = StdRng::seed_from_u64(100 + i as u64);
            let fresh = model.label(&records, &mut rng_a);
            let reused = model.label_with(&records, &mut rng_b, &mut scratch);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn from_weights_skips_training() {
        let (space, dataset) = pipeline();
        let mut rng = StdRng::seed_from_u64(5);
        let model = C2mn::from_weights(&space, C2mnConfig::quick_test(), Weights::uniform(1.0));
        let records: Vec<_> = dataset.sequences[0].positioning().collect();
        let labels = model.label(&records, &mut rng);
        assert_eq!(labels.len(), records.len());
    }
}
