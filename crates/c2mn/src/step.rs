//! The gradient/optimizer step of Algorithm 1 (lines 9–17): fold the
//! reduced per-sequence samples into the sampled pseudo-likelihood
//! surrogate (Eq. 8) and take inner L-BFGS steps on its active components.

use crate::sample::{SequenceSamples, SiteSamples};
use crate::structure::NUM_FEATURES;
use crate::{C2mnConfig, Weights};
use ism_optim::{minimize, LbfgsParams, Objective};

/// The sampled pseudo-likelihood surrogate (Eq. 8) restricted to the
/// active weight components of the current step.
///
/// Sites are visited in (sequence, site) order — the same order the
/// sequential reference accumulates them — so the floating-point sums (and
/// therefore the learned weights) do not depend on how the sampling was
/// scheduled across workers.
pub(crate) struct Surrogate<'a> {
    pub seqs: &'a [SequenceSamples],
    pub anchor: [f64; NUM_FEATURES],
    pub active: &'a [usize],
    pub m_total: f64,
    pub sigma_sq: f64,
    /// Reusable per-site importance-weight buffer: `eval` runs once per
    /// L-BFGS line-search step over every site, so allocating it per site
    /// would dominate small-problem training time.
    pub exps: Vec<f64>,
}

impl Objective for Surrogate<'_> {
    fn dim(&self) -> usize {
        self.active.len()
    }

    fn eval(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        let Surrogate {
            seqs,
            anchor,
            active,
            m_total,
            sigma_sq,
            exps: exps_buf,
        } = self;
        // Reconstruct the full displacement d = w − ŵ (frozen dims are 0).
        let mut d = [0.0f64; NUM_FEATURES];
        for (j, &k) in active.iter().enumerate() {
            d[k] = x[j] - anchor[k];
        }
        grad.fill(0.0);
        let mut value = 0.0;
        let log_m = m_total.ln();
        for site in seqs.iter().flat_map(|s| &s.sites) {
            let site: &SiteSamples = site;
            if site.deltas.is_empty() {
                // All samples matched the empirical label: log(zero/M).
                value += (site.zero as f64).ln() - log_m;
                continue;
            }
            // log-sum-exp over {0 (×zero), e_d}.
            let mut m = if site.zero > 0 {
                0.0
            } else {
                f64::NEG_INFINITY
            };
            exps_buf.clear();
            let exps = &mut *exps_buf;
            for df in &site.deltas {
                let mut e = 0.0;
                for k in 0..NUM_FEATURES {
                    e += d[k] * df[k] as f64;
                }
                m = m.max(e);
                exps.push(e);
            }
            let mut denom = if site.zero > 0 {
                site.zero as f64 * (-m).exp()
            } else {
                0.0
            };
            for e in exps.iter_mut() {
                *e = (*e - m).exp();
                denom += *e;
            }
            value += m + denom.ln() - log_m;
            for (e, df) in exps.iter().zip(&site.deltas) {
                let wgt = e / denom;
                for (j, &k) in active.iter().enumerate() {
                    grad[j] += wgt * df[k] as f64;
                }
            }
        }
        // Gaussian prior on the active components.
        for (j, _) in active.iter().enumerate() {
            let w = x[j];
            value += 0.5 * w * w / *sigma_sq;
            grad[j] += w / *sigma_sq;
        }
        value
    }
}

/// Result of one optimizer step.
pub(crate) struct StepOutcome {
    /// The updated weight vector (trust-region clamped, projected onto the
    /// non-negative orthant on the active components).
    pub weights: Weights,
    /// Surrogate objective value at the optimizer's solution.
    pub objective: f64,
}

/// Folds one iteration's reduced samples into an inner L-BFGS run on the
/// surrogate and applies the trust-region/projection update to the active
/// weight components.
pub(crate) fn optimize_step(
    seqs: &[SequenceSamples],
    weights: &Weights,
    active: &[usize],
    config: &C2mnConfig,
) -> StepOutcome {
    let mut surrogate = Surrogate {
        seqs,
        anchor: weights.0,
        active,
        m_total: config.mcmc_m.max(1) as f64,
        sigma_sq: config.sigma_sq,
        exps: Vec::new(),
    };
    let x0: Vec<f64> = active.iter().map(|&k| weights.0[k]).collect();
    let params = LbfgsParams {
        max_iters: config.inner_lbfgs_iters,
        ..Default::default()
    };
    let result = minimize(&mut surrogate, &x0, &params);
    let mut new_weights = weights.clone();
    for (j, &k) in active.iter().enumerate() {
        // Trust region: the surrogate's importance weights are only
        // reliable near the sampling anchor, so clamp the step, then
        // project onto the non-negative orthant (every feature is a
        // compatibility; a negative template weight would invert its
        // semantics, which under heavy positioning noise destroys
        // decoding).
        let lo = weights.0[k] - config.step_cap;
        let hi = weights.0[k] + config.step_cap;
        new_weights.0[k] = result.x[j].clamp(lo, hi).max(0.0);
    }
    StepOutcome {
        weights: new_weights,
        objective: result.value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surrogate_gradient_is_exact() {
        use ism_optim::gradcheck::max_gradient_error;
        // Synthetic site samples.
        let mut sites = Vec::new();
        let mut seed = 11u64;
        for _ in 0..5 {
            let mut deltas = Vec::new();
            for _ in 0..4 {
                let mut df = [0.0f32; NUM_FEATURES];
                for v in df.iter_mut() {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    *v = ((seed >> 33) as f32 / u32::MAX as f32 - 0.25) * 2.0;
                }
                deltas.push(df);
            }
            sites.push(SiteSamples { zero: 2, deltas });
        }
        let seqs = [SequenceSamples {
            sites,
            votes: Vec::new(),
        }];
        let active: Vec<usize> = (0..NUM_FEATURES).collect();
        let mut s = Surrogate {
            seqs: &seqs,
            anchor: [0.3; NUM_FEATURES],
            active: &active,
            m_total: 6.0,
            sigma_sq: 0.5,
            exps: Vec::new(),
        };
        let x: Vec<f64> = (0..NUM_FEATURES).map(|k| 0.2 + 0.05 * k as f64).collect();
        let err = max_gradient_error(&mut s, &x, 1e-5);
        assert!(err < 1e-5, "gradient error {err}");
    }

    #[test]
    fn surrogate_order_spans_sequences_in_order() {
        // The surrogate must see sites in (sequence, site) order: splitting
        // the same sites across two SequenceSamples yields the same value
        // and gradient as one flat sequence.
        let mk_site = |v: f32| SiteSamples {
            zero: 1,
            deltas: vec![[v; NUM_FEATURES]],
        };
        let flat = [SequenceSamples {
            sites: vec![mk_site(0.1), mk_site(-0.2), mk_site(0.3)],
            votes: Vec::new(),
        }];
        let split = [
            SequenceSamples {
                sites: vec![mk_site(0.1), mk_site(-0.2)],
                votes: Vec::new(),
            },
            SequenceSamples {
                sites: vec![mk_site(0.3)],
                votes: Vec::new(),
            },
        ];
        let active: Vec<usize> = (0..NUM_FEATURES).collect();
        let eval = |seqs: &[SequenceSamples]| {
            let mut s = Surrogate {
                seqs,
                anchor: [0.5; NUM_FEATURES],
                active: &active,
                m_total: 2.0,
                sigma_sq: 0.5,
                exps: Vec::new(),
            };
            let x = vec![0.4; NUM_FEATURES];
            let mut grad = vec![0.0; NUM_FEATURES];
            let v = s.eval(&x, &mut grad);
            (v, grad)
        };
        let (va, ga) = eval(&flat);
        let (vb, gb) = eval(&split);
        assert_eq!(va.to_bits(), vb.to_bits());
        for (a, b) in ga.iter().zip(&gb) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
