//! The eight feature functions of Table II.
//!
//! `fsm` and `fem` are precomputed in [`SequenceContext`]; this module
//! implements the pairwise (transition, synchronization) and segment-level
//! (segmentation) features as methods on the context. All features are
//! *compatibilities*: larger values mean a more plausible labelling, and
//! the network's log-potential is the weighted sum of features.

use crate::SequenceContext;
use ism_indoor::RegionId;
use ism_mobility::MobilityEvent;

impl SequenceContext<'_> {
    /// (3) Space transition `fst(r_i, r_{i+1})` over gap `i` (Eq. 4):
    /// `exp(−γ_st · E[d_I(r_i, r_{i+1})])`, optionally damped by the
    /// time-decay extension `e^{−γ′ Δt}`.
    #[inline]
    pub fn fst(&self, gap: usize, a: RegionId, b: RegionId) -> f64 {
        let d = self.space.region_expected_miwd(a, b);
        if !d.is_finite() {
            return 0.0;
        }
        let mut cost = self.config.gamma_st * d;
        if let Some(gamma_t) = self.config.time_decay_transition {
            // The longer the elapsed time, the lower the impact of distance.
            cost *= (-gamma_t * self.dt[gap]).exp();
        }
        (-cost).exp()
    }

    /// Table lookup of [`fst`](Self::fst) by *candidate indices* into the
    /// flat arena built by `build_pairwise_tables`. Bitwise identical to
    /// recomputation; only valid when the structure enables transitions.
    #[inline]
    pub(crate) fn fst_at(&self, gap: usize, ca: usize, cb: usize) -> f64 {
        debug_assert!(!self.fst_table.is_empty(), "fst table not built");
        self.fst_table[self.pair_off[gap] + ca * self.candidates[gap + 1].len() + cb]
    }

    /// (4) Event transition `fet(e_i, e_{i+1})`: 1 when equal, else 0.
    #[inline]
    pub fn fet(&self, a: MobilityEvent, b: MobilityEvent) -> f64 {
        f64::from(a == b)
    }

    /// (5) Spatial consistency `fsc(θ_i, θ_{i+1}, r_i, r_{i+1})` (Eq. 5):
    /// `exp(−|E[d_I(r_i, r_{i+1})] − d_E(θ_i, θ_{i+1})|)`, optionally with
    /// the time-decay extension.
    #[inline]
    pub fn fsc(&self, gap: usize, a: RegionId, b: RegionId) -> f64 {
        let d = self.space.region_expected_miwd(a, b);
        if !d.is_finite() {
            return 0.0;
        }
        let mut diff = (d - self.de[gap]).abs();
        if let Some(gamma_t) = self.config.time_decay_consistency {
            diff *= (-gamma_t * self.dt[gap]).exp();
        }
        (-diff).exp()
    }

    /// Table lookup of [`fsc`](Self::fsc) by *candidate indices*; see
    /// [`fst_at`](Self::fst_at).
    #[inline]
    pub(crate) fn fsc_at(&self, gap: usize, ca: usize, cb: usize) -> f64 {
        debug_assert!(!self.fsc_table.is_empty(), "fsc table not built");
        self.fsc_table[self.pair_off[gap] + ca * self.candidates[gap + 1].len() + cb]
    }

    /// (6) Event consistency `fec(θ_i, θ_{i+1}, e_i, e_{i+1})`:
    /// `exp(−|min(1, γ_ec·speed) − (I(e_i)+I(e_{i+1}))/2|)`.
    #[inline]
    pub fn fec(&self, gap: usize, a: MobilityEvent, b: MobilityEvent) -> f64 {
        let pass_level = 0.5 * (a.pass_indicator() + b.pass_indicator());
        (-(self.speed_term[gap] - pass_level).abs()).exp()
    }

    /// (7) Event-based segmentation `fes` over the maximal run `a..=b` of
    /// records sharing event label `event`.
    ///
    /// Features (normalised to `[0, 1]`, then signed by `2·I(e) − 1`):
    /// fraction of distinct region labels, segment moving speed, and the
    /// *negated* fraction of turning points — a stay wants few regions, low
    /// speed and many turns; a pass the opposite.
    pub fn fes<R>(&self, a: usize, b: usize, event: MobilityEvent, region_at: R) -> [f64; 3]
    where
        R: Fn(usize) -> RegionId,
    {
        debug_assert!(b >= a && b < self.len());
        let len = (b - a + 1) as f64;
        // Distinct region count via a stack-buffered scan: this is the
        // hottest feature call on the decode path, so no heap allocation.
        // Runs rarely carry more than a handful of distinct labels; the
        // (exact) overflow fallback rescans first occurrences.
        let mut seen = [region_at(a); 16];
        let mut count = 0usize;
        'records: for k in a..=b {
            let r = region_at(k);
            for &s in &seen[..count.min(seen.len())] {
                if s == r {
                    continue 'records;
                }
            }
            if count >= seen.len() && (a..k).any(|j| region_at(j) == r) {
                continue;
            }
            if count < seen.len() {
                seen[count] = r;
            }
            count += 1;
        }
        let distnum = count as f64 / len;
        let speed = if b > a {
            let dt = (self.records[b].t - self.records[a].t).max(1e-6);
            (self.path_length(a, b) / dt / self.config.speed_norm).min(1.0)
        } else {
            0.0
        };
        let turns = self.turns_in(a, b) as f64 / len;
        let sign = 2.0 * event.pass_indicator() - 1.0;
        [sign * distnum, sign * speed, sign * (-turns)]
    }

    /// (8) Space-based segmentation `fss` over the maximal run `a..=b` of
    /// records sharing one region label.
    ///
    /// Features: negated event-run rate, negated event-transition rate
    /// (states change rarely inside one region), and the pass indicator of
    /// the boundary records (entering/leaving a region is usually a pass).
    pub fn fss<E>(&self, a: usize, b: usize, event_at: E) -> [f64; 3]
    where
        E: Fn(usize) -> MobilityEvent,
    {
        debug_assert!(b >= a && b < self.len());
        let mut transitions = 0u32;
        let mut prev = event_at(a);
        for k in a + 1..=b {
            let e = event_at(k);
            if e != prev {
                transitions += 1;
            }
            prev = e;
        }
        let runs = transitions as f64 + 1.0;
        let dt = (self.records[b].t - self.records[a].t) + 1.0;
        let boundary = 0.5 * (event_at(a).pass_indicator() + event_at(b).pass_indicator());
        [-runs / dt, -(transitions as f64) / dt, boundary]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C2mnConfig;
    use ism_geometry::Point2;
    use ism_indoor::{BuildingGenerator, IndoorPoint, IndoorSpace};
    use ism_mobility::PositioningRecord;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use MobilityEvent::{Pass, Stay};

    fn setup() -> (IndoorSpace, C2mnConfig) {
        let space = BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        (space, C2mnConfig::quick_test())
    }

    fn walk_ctx<'a>(
        space: &'a IndoorSpace,
        config: &'a C2mnConfig,
        step: f64,
        dt: f64,
        n: usize,
    ) -> SequenceContext<'a> {
        let c = space.partitions()[3].rect.center();
        let recs: Vec<PositioningRecord> = (0..n)
            .map(|i| {
                PositioningRecord::new(
                    IndoorPoint::new(0, Point2::new(c.x - 10.0 + step * i as f64, c.y)),
                    dt * i as f64,
                )
            })
            .collect();
        SequenceContext::build(space, config, &recs, &[])
    }

    #[test]
    fn fst_prefers_same_region() {
        let (space, config) = setup();
        let ctx = walk_ctx(&space, &config, 2.0, 10.0, 4);
        let r0 = space.regions()[2].id;
        let far = space.regions().last().unwrap().id;
        assert_eq!(ctx.fst(0, r0, r0), 1.0); // zero distance
        assert!(ctx.fst(0, r0, far) < 1.0);
        assert!(ctx.fst(0, r0, far) > 0.0);
    }

    #[test]
    fn fet_indicator() {
        let (space, config) = setup();
        let ctx = walk_ctx(&space, &config, 2.0, 10.0, 3);
        assert_eq!(ctx.fet(Stay, Stay), 1.0);
        assert_eq!(ctx.fet(Stay, Pass), 0.0);
    }

    #[test]
    fn fsc_peaks_when_distances_agree() {
        let (space, config) = setup();
        let ctx = walk_ctx(&space, &config, 2.0, 10.0, 4);
        // Same region: expected MIWD 0; observed 2 m → |0−2| = 2.
        let r = space.regions()[2].id;
        let same = ctx.fsc(0, r, r);
        assert!(((-2.0f64).exp() - same).abs() < 1e-9);
        // A region whose expected distance is closest to 2 m scores higher.
        let best = space
            .regions()
            .iter()
            .map(|reg| ctx.fsc(0, r, reg.id))
            .fold(0.0f64, f64::max);
        assert!(best >= same);
    }

    #[test]
    fn fec_matches_speed_with_events() {
        let (space, config) = setup();
        // Fast walk: 4 m per 1 s → speed term min(1, 0.2·4) = 0.8, which
        // lies on the pass side of the 0.5 crossover.
        let ctx = walk_ctx(&space, &config, 4.0, 1.0, 4);
        let both_pass = ctx.fec(0, Pass, Pass);
        let both_stay = ctx.fec(0, Stay, Stay);
        assert!(both_pass > both_stay, "fast movement should favour pass");
        // Stationary: speed 0 → stay/stay maximal (= 1).
        let ctx = walk_ctx(&space, &config, 0.0, 10.0, 4);
        assert_eq!(ctx.fec(0, Stay, Stay), 1.0);
        assert!(ctx.fec(0, Pass, Pass) < 1.0);
    }

    #[test]
    fn fes_signs_follow_event() {
        let (space, config) = setup();
        let ctx = walk_ctx(&space, &config, 2.0, 5.0, 6);
        let r = space.regions()[2].id;
        let one_region = |_k: usize| r;
        let stay = ctx.fes(0, 5, Stay, one_region);
        let pass = ctx.fes(0, 5, Pass, one_region);
        for k in 0..3 {
            assert!((stay[k] + pass[k]).abs() < 1e-12, "antisymmetric");
        }
        // Moving with one region: a stay dislikes the speed (negative
        // second component), a pass likes it.
        assert!(stay[1] < 0.0 && pass[1] > 0.0);
    }

    #[test]
    fn fes_distinct_region_count() {
        let (space, config) = setup();
        let ctx = walk_ctx(&space, &config, 2.0, 5.0, 4);
        let a = space.regions()[0].id;
        let b = space.regions()[1].id;
        let alternating = |k: usize| if k.is_multiple_of(2) { a } else { b };
        let f = ctx.fes(0, 3, Pass, alternating);
        assert!((f[0] - 0.5).abs() < 1e-12, "2 distinct over 4 records");
        let single = ctx.fes(0, 3, Pass, |_| a);
        assert!((single[0] - 0.25).abs() < 1e-12, "1 distinct over 4");
    }

    #[test]
    fn fss_penalises_event_churn() {
        let (space, config) = setup();
        let ctx = walk_ctx(&space, &config, 2.0, 5.0, 6);
        let calm = ctx.fss(0, 5, |_| Stay);
        let churn = ctx.fss(0, 5, |k| if k % 2 == 0 { Stay } else { Pass });
        assert!(calm[0] > churn[0]);
        assert!(calm[1] > churn[1]);
        assert_eq!(calm[2], 0.0); // stay boundaries
        let pass_bound = ctx.fss(0, 5, |k| if k == 0 || k == 5 { Pass } else { Stay });
        assert_eq!(pass_bound[2], 1.0);
    }

    #[test]
    fn single_record_segments_are_degenerate_but_finite() {
        let (space, config) = setup();
        let ctx = walk_ctx(&space, &config, 2.0, 5.0, 3);
        let r = space.regions()[0].id;
        let f = ctx.fes(1, 1, Stay, |_| r);
        assert!(f.iter().all(|v| v.is_finite()));
        let g = ctx.fss(2, 2, |_| Pass);
        assert!(g.iter().all(|v| v.is_finite()));
        assert_eq!(g[2], 1.0);
    }
}
