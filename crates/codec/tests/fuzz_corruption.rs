//! Corruption fuzzing: no input — random, bit-flipped, or truncated —
//! may ever panic the codec or trick it into allocating unbounded
//! memory. Every failure is a typed [`CodecError`].

use ism_codec::{
    decode_artifact, encode_artifact, read_header, ArtifactKind, CodecError, Decode, FrameIter,
    Reader, HEADER_LEN,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arbitrary_bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.random_range(0..max_len);
    (0..len).map(|_| rng.random()).collect()
}

proptest! {
    /// Arbitrary bytes through every reader primitive: typed errors only.
    #[test]
    fn reader_never_panics_on_arbitrary_bytes(seed in 0u64..512) {
        let bytes = arbitrary_bytes(&mut StdRng::seed_from_u64(seed), 256);
        type ReaderOp = fn(&mut Reader<'_>) -> Result<(), CodecError>;
        let ops: [ReaderOp; 9] = [
            |r| r.u8().map(drop),
            |r| r.u16().map(drop),
            |r| r.u32().map(drop),
            |r| r.u64().map(drop),
            |r| r.f64_bits().map(drop),
            |r| r.boolean().map(drop),
            |r| r.varint().map(drop),
            |r| r.len_prefix().map(drop),
            |r| r.count_prefix(4).map(drop),
        ];
        for op in ops {
            let mut r = Reader::new(&bytes);
            // Drain with one primitive until it errors or the buffer ends.
            while r.remaining() > 0 {
                if op(&mut r).is_err() {
                    break;
                }
            }
        }
        // Composite decodes guard their count prefixes the same way.
        let _ = Vec::<u64>::from_bytes(&bytes);
        let _ = Vec::<f64>::from_bytes(&bytes);
        let _ = Option::<u32>::from_bytes(&bytes);
    }

    /// Arbitrary bytes as an artifact/frame stream: typed errors only,
    /// and `good_end` always lands on a frame boundary inside the buffer.
    #[test]
    fn frame_iter_never_panics_on_arbitrary_bytes(seed in 0u64..512) {
        let bytes = arbitrary_bytes(&mut StdRng::seed_from_u64(seed ^ 0xF0F0), 512);
        let _ = decode_artifact(&bytes, ArtifactKind::EngineSnapshot);
        if let Ok(start) = read_header(&bytes, ArtifactKind::SealLog) {
            let mut frames = FrameIter::new(&bytes, start);
            let mut intact = 0usize;
            for frame in &mut frames {
                match frame {
                    Ok(_) => intact += 1,
                    Err(_) => break,
                }
            }
            prop_assert_eq!(frames.frames_read(), intact);
            prop_assert!(frames.good_end() >= HEADER_LEN);
            prop_assert!(frames.good_end() <= bytes.len());
        }
    }

    /// Any single bit flip in a valid artifact is detected — the header
    /// checks or the frame CRC catch it, typed, without a panic.
    #[test]
    fn bit_flips_in_valid_artifacts_are_always_detected(seed in 0u64..512) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB17F);
        let payload = arbitrary_bytes(&mut rng, 128);
        let artifact = encode_artifact(ArtifactKind::TrainCheckpoint, &payload);
        let flip = rng.random_range(0..artifact.len() * 8);
        let mut corrupt = artifact.clone();
        corrupt[flip / 8] ^= 1 << (flip % 8);
        match decode_artifact(&corrupt, ArtifactKind::TrainCheckpoint) {
            Ok(_) => prop_assert!(false, "1-bit flip at bit {} went undetected", flip),
            Err(CodecError::Truncated { .. })
            | Err(CodecError::BadMagic { .. })
            | Err(CodecError::UnsupportedVersion { .. })
            | Err(CodecError::WrongKind { .. })
            | Err(CodecError::BadChecksum { .. })
            | Err(CodecError::InvalidValue { .. })
            | Err(CodecError::TrailingBytes { .. }) => {}
        }
    }

    /// Every strict truncation of a valid artifact fails typed.
    #[test]
    fn truncations_of_valid_artifacts_are_always_detected(seed in 0u64..512) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7205);
        let payload = arbitrary_bytes(&mut rng, 128);
        let artifact = encode_artifact(ArtifactKind::EngineSnapshot, &payload);
        let len = rng.random_range(0..artifact.len());
        prop_assert!(decode_artifact(&artifact[..len], ArtifactKind::EngineSnapshot).is_err());
    }

    /// A declared length far past the buffer is rejected *before* any
    /// allocation happens — a 10-byte varint can claim 2^63 items; the
    /// reader must bound it by what is actually present.
    #[test]
    fn oversized_length_claims_never_allocate(claim in 1u64..u64::MAX) {
        let mut bytes = Vec::new();
        ism_codec::write_varint(&mut bytes, claim);
        let mut r = Reader::new(&bytes);
        if claim as usize > r.remaining() {
            prop_assert!(r.len_prefix().is_err());
        }
        let mut r = Reader::new(&bytes);
        prop_assert!(r.count_prefix(1).is_err());
        // The same guard protects composite decodes.
        prop_assert!(Vec::<u8>::from_bytes(&bytes).is_err());
    }
}
