//! Standing (continuous) top-k queries, maintained incrementally.
//!
//! A mall dashboard holds its top-k popular-region and frequent-pair
//! queries open all day; re-evaluating them from scratch after every seal
//! re-pays the full index scan for data that barely changed. A standing
//! query instead keeps the *full count state* its ranking derives from and
//! folds in exactly the visit postings each seal publishes
//! ([`SealSummary::new_stays`](crate::SealSummary)):
//!
//! * [`StandingTkPrq`] — per-region visit counts; a new qualifying stay
//!   increments one counter.
//! * [`StandingTkFrpq`] — per-pair object counts plus each object's
//!   distinct qualifying region set; a stay in a region the object has not
//!   yet qualified in adds one count for every pair it completes.
//!
//! Both updates are commutative per posting and mirror the counting rules
//! of the batch/flat engines exactly, so after every seal the standing
//! [`result`](StandingTkPrq::result) is **byte-identical** to re-running
//! the full query over the sealed store — the contract the
//! `standing_oracle` property suite pins.

use ism_indoor::RegionId;
use ism_mobility::TimePeriod;
use ism_runtime::WorkerPool;
use std::collections::HashMap;

use crate::store::{SealSummary, ShardedSemanticsStore};
use crate::topk::{rank, QuerySet};

/// A standing top-k popular region query.
#[derive(Debug, Clone)]
pub struct StandingTkPrq {
    query: QuerySet,
    k: usize,
    qt: TimePeriod,
    counts: HashMap<RegionId, usize>,
}

impl StandingTkPrq {
    /// Registers the query over everything `store` has sealed so far (one
    /// indexed evaluation on `pool`); subsequent seals are folded in with
    /// [`observe_seal`](StandingTkPrq::observe_seal).
    pub fn new(
        query: &[RegionId],
        k: usize,
        qt: TimePeriod,
        store: &ShardedSemanticsStore,
        pool: &WorkerPool,
    ) -> Self {
        let query = QuerySet::new(query);
        let counts = store.prq_partials(&query, &qt, pool);
        StandingTkPrq {
            query,
            k,
            qt,
            counts,
        }
    }

    /// Folds one newly published visit posting into the counts.
    pub fn observe(&mut self, _object: u64, region: RegionId, period: TimePeriod) {
        if self.query.contains(region) && period.overlaps(&self.qt) {
            *self.counts.entry(region).or_insert(0) += 1;
        }
    }

    /// Folds everything a seal published into the counts.
    pub fn observe_seal(&mut self, summary: &SealSummary) {
        for &(object, region, period) in &summary.new_stays {
            self.observe(object, region, period);
        }
    }

    /// The current ranking — byte-identical to re-running
    /// [`tk_prq_sharded`](crate::tk_prq_sharded) over the sealed store.
    pub fn result(&self) -> Vec<(RegionId, usize)> {
        rank(self.counts.clone(), self.k)
    }

    /// The ranking size this query maintains.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The query time interval.
    pub fn qt(&self) -> TimePeriod {
        self.qt
    }

    /// Whether any of `regions` is in this query's region set (the
    /// relevance test seal hooks use).
    pub fn intersects(&self, regions: &[RegionId]) -> bool {
        regions.iter().any(|&r| self.query.contains(r))
    }
}

/// A standing top-k frequent region pair query.
#[derive(Debug, Clone)]
pub struct StandingTkFrpq {
    query: QuerySet,
    k: usize,
    qt: TimePeriod,
    pair_counts: HashMap<(RegionId, RegionId), usize>,
    /// Each object's distinct qualifying regions, ascending — the state
    /// that lets a future stay know which pairs it completes.
    visited: HashMap<u64, Vec<RegionId>>,
}

impl StandingTkFrpq {
    /// Registers the query over everything `store` has sealed so far (one
    /// indexed evaluation on `pool`); subsequent seals are folded in with
    /// [`observe_seal`](StandingTkFrpq::observe_seal).
    pub fn new(
        query: &[RegionId],
        k: usize,
        qt: TimePeriod,
        store: &ShardedSemanticsStore,
        pool: &WorkerPool,
    ) -> Self {
        let query = QuerySet::new(query);
        // Objects hash whole into one shard, so per-shard distinct-visit
        // lists concern disjoint objects and concatenate commutatively.
        let visits: Vec<(u64, RegionId)> = pool.map_reduce(
            store.num_shards(),
            Vec::new,
            |acc: &mut Vec<(u64, RegionId)>, s| {
                acc.extend(store.shard(s).index().distinct_visits(&query, &qt));
            },
            |total, acc| total.extend(acc),
        );
        let mut visited: HashMap<u64, Vec<RegionId>> = HashMap::new();
        for (object, region) in visits {
            // Within one object the regions arrive ascending (the shard's
            // list is sorted and an object lives in one shard).
            visited.entry(object).or_default().push(region);
        }
        let mut pair_counts: HashMap<(RegionId, RegionId), usize> = HashMap::new();
        for regions in visited.values() {
            // analyzer: allow(lib-panic) `i < j < regions.len()` by the loop bounds
            for i in 0..regions.len() {
                for j in i + 1..regions.len() {
                    *pair_counts.entry((regions[i], regions[j])).or_insert(0) += 1;
                }
            }
        }
        StandingTkFrpq {
            query,
            k,
            qt,
            pair_counts,
            visited,
        }
    }

    /// Folds one newly published visit posting into the pair counts.
    pub fn observe(&mut self, object: u64, region: RegionId, period: TimePeriod) {
        if !self.query.contains(region) || !period.overlaps(&self.qt) {
            return;
        }
        let regions = self.visited.entry(object).or_default();
        if let Err(pos) = regions.binary_search(&region) {
            for &r in regions.iter() {
                let pair = if r < region { (r, region) } else { (region, r) };
                *self.pair_counts.entry(pair).or_insert(0) += 1;
            }
            regions.insert(pos, region);
        }
    }

    /// Folds everything a seal published into the pair counts.
    pub fn observe_seal(&mut self, summary: &SealSummary) {
        for &(object, region, period) in &summary.new_stays {
            self.observe(object, region, period);
        }
    }

    /// The current ranking — byte-identical to re-running
    /// [`tk_frpq_sharded`](crate::tk_frpq_sharded) over the sealed store.
    pub fn result(&self) -> Vec<((RegionId, RegionId), usize)> {
        rank(self.pair_counts.clone(), self.k)
    }

    /// The ranking size this query maintains.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The query time interval.
    pub fn qt(&self) -> TimePeriod {
        self.qt
    }

    /// Whether any of `regions` is in this query's region set.
    pub fn intersects(&self, regions: &[RegionId]) -> bool {
        regions.iter().any(|&r| self.query.contains(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::{tk_frpq_sharded, tk_prq_sharded};
    use ism_mobility::{MobilityEvent, MobilitySemantics};

    fn ms(region: u32, start: f64, end: f64, stay: bool) -> MobilitySemantics {
        MobilitySemantics {
            region: RegionId(region),
            period: TimePeriod::new(start, end),
            event: if stay {
                MobilityEvent::Stay
            } else {
                MobilityEvent::Pass
            },
        }
    }

    #[test]
    fn standing_results_track_seals_exactly() {
        let pool = WorkerPool::new(2);
        let query: Vec<RegionId> = (0..4).map(RegionId).collect();
        let qt = TimePeriod::new(50.0, 400.0);
        let mut store = ShardedSemanticsStore::new(3);
        // Some initial sealed data before registration.
        for i in 0..10u64 {
            store.append(
                i % 6,
                vec![ms(
                    i as u32 % 5,
                    i as f64 * 20.0,
                    i as f64 * 20.0 + 30.0,
                    true,
                )],
            );
        }
        store.seal();
        let mut prq = StandingTkPrq::new(&query, 3, qt, &store, &pool);
        let mut frpq = StandingTkFrpq::new(&query, 3, qt, &store, &pool);
        assert_eq!(prq.result(), tk_prq_sharded(&store, &query, 3, qt, &pool));
        assert_eq!(frpq.result(), tk_frpq_sharded(&store, &query, 3, qt, &pool));
        assert_eq!(prq.k(), 3);
        assert_eq!(frpq.qt(), qt);
        // Grow in three waves, checking after each seal; waves mix stays,
        // passes, repeat visits and out-of-window periods.
        for wave in 0..3u64 {
            for i in 0..12u64 {
                let object = (wave * 5 + i) % 9;
                let region = (i % 6) as u32; // region 4, 5 outside the query set
                let start = 30.0 + (wave * 12 + i) as f64 * 31.0;
                store.append(object, vec![ms(region, start, start + 25.0, i % 4 != 0)]);
            }
            let summary = store.seal_summarized();
            assert!(summary.merged > 0);
            prq.observe_seal(&summary);
            frpq.observe_seal(&summary);
            assert_eq!(
                prq.result(),
                tk_prq_sharded(&store, &query, 3, qt, &pool),
                "wave {wave} prq"
            );
            assert_eq!(
                frpq.result(),
                tk_frpq_sharded(&store, &query, 3, qt, &pool),
                "wave {wave} frpq"
            );
        }
        assert!(prq.intersects(&[RegionId(2)]));
        assert!(!prq.intersects(&[RegionId(9)]));
        assert!(frpq.intersects(&[RegionId(0), RegionId(9)]));
    }
}
