//! P-sequence preprocessing: η-gap splitting and ψ-duration filtering.
//!
//! The paper preprocesses the raw mall data by (i) splitting a p-sequence
//! wherever the time between consecutive records exceeds a threshold `η`
//! (3 min) — the device presumably left the venue — and (ii) dropping the
//! resulting sequences shorter than `ψ` (30 min).

use crate::LabeledSequence;

/// Preprocessing thresholds.
#[derive(Debug, Clone, Copy)]
pub struct PreprocessConfig {
    /// Split when the gap between consecutive records exceeds this (s).
    pub eta_gap: f64,
    /// Keep only sequences lasting at least this long (s).
    pub psi_min_duration: f64,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        // The paper's real-data setting: η = 3 min, ψ = 30 min.
        PreprocessConfig {
            eta_gap: 180.0,
            psi_min_duration: 1800.0,
        }
    }
}

/// Splits a sequence at every gap exceeding `eta_gap` seconds.
pub fn split_by_gap(seq: &LabeledSequence, eta_gap: f64) -> Vec<LabeledSequence> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    for rec in &seq.records {
        if let Some(last) = current.last() {
            let last: &crate::LabeledRecord = last;
            if rec.record.t - last.record.t > eta_gap {
                out.push(LabeledSequence {
                    object_id: seq.object_id,
                    records: std::mem::take(&mut current),
                });
            }
        }
        current.push(*rec);
    }
    if !current.is_empty() {
        out.push(LabeledSequence {
            object_id: seq.object_id,
            records: current,
        });
    }
    out
}

/// Full preprocessing: split on η-gaps, then drop sequences shorter than ψ.
pub fn preprocess(
    sequences: &[LabeledSequence],
    config: &PreprocessConfig,
) -> Vec<LabeledSequence> {
    sequences
        .iter()
        .flat_map(|s| split_by_gap(s, config.eta_gap))
        .filter(|s| s.duration() >= config.psi_min_duration)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LabeledRecord, MobilityEvent, PositioningRecord};
    use ism_geometry::Point2;
    use ism_indoor::{IndoorPoint, RegionId};

    fn seq(times: &[f64]) -> LabeledSequence {
        LabeledSequence {
            object_id: 9,
            records: times
                .iter()
                .map(|&t| LabeledRecord {
                    record: PositioningRecord::new(IndoorPoint::new(0, Point2::new(0.0, 0.0)), t),
                    region: RegionId(0),
                    event: MobilityEvent::Stay,
                })
                .collect(),
        }
    }

    #[test]
    fn no_gap_means_no_split() {
        let s = seq(&[0.0, 10.0, 20.0, 30.0]);
        let parts = split_by_gap(&s, 60.0);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].records.len(), 4);
    }

    #[test]
    fn splits_at_each_large_gap() {
        let s = seq(&[0.0, 10.0, 500.0, 510.0, 2000.0]);
        let parts = split_by_gap(&s, 180.0);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].records.len(), 2);
        assert_eq!(parts[1].records.len(), 2);
        assert_eq!(parts[2].records.len(), 1);
        assert!(parts.iter().all(|p| p.object_id == 9));
    }

    #[test]
    fn filter_drops_short_sequences() {
        let a = seq(&[0.0, 10.0]); // 10 s
        let b = seq(&(0..200).map(|i| i as f64 * 10.0).collect::<Vec<_>>()); // ~2000 s
        let cfg = PreprocessConfig {
            eta_gap: 180.0,
            psi_min_duration: 1800.0,
        };
        let kept = preprocess(&[a, b], &cfg);
        assert_eq!(kept.len(), 1);
        assert!(kept[0].duration() >= 1800.0);
    }

    #[test]
    fn empty_sequence_handled() {
        let s = seq(&[]);
        assert!(split_by_gap(&s, 60.0).is_empty());
    }

    #[test]
    fn boundary_gap_does_not_split() {
        let s = seq(&[0.0, 180.0]);
        assert_eq!(split_by_gap(&s, 180.0).len(), 1);
        let s = seq(&[0.0, 180.1]);
        assert_eq!(split_by_gap(&s, 180.0).len(), 2);
    }
}
