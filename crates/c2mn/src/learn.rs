//! Alternate learning with MCMC inference (Algorithm 1).
//!
//! Training minimises the regularised negative pseudo-likelihood (Eq. 6)
//! over the clique-template weights. Because the two target chains are
//! coupled by the segmentation cliques, each outer iteration fixes one
//! chain at its *configured* value (initially ST-DBSCAN events /
//! nearest-neighbour regions, later the averaged MCMC samples), draws `M`
//! Gibbs samples of the other chain, and takes L-BFGS steps on the sampled
//! surrogate of Eqs. 8–9: at the sampling anchor the surrogate's gradient
//! equals the paper's Eq. 9 exactly, and away from it the samples are
//! importance-reweighted (Geyer's MCMC-MLE), which keeps the inner line
//! search well-defined.

use crate::structure::NUM_FEATURES;
use crate::{C2mnConfig, CoupledNetwork, FirstConfigured, SequenceContext, Weights};
use ism_indoor::{IndoorSpace, RegionId};
use ism_mobility::{LabeledSequence, MobilityEvent};
use ism_optim::{minimize, LbfgsParams, Objective};
use rand::Rng;
use std::time::Instant;

/// Diagnostics of one training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Outer iterations performed.
    pub iterations: usize,
    /// Whether both chains' weight groups converged (Chebyshev ≤ δ).
    pub converged: bool,
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
    /// Surrogate objective value after each outer iteration.
    pub objective_trace: Vec<f64>,
}

/// Per-site MCMC sample summary: Δf = f(sampled) − f(empirical), stored
/// only for samples that differ from the empirical label.
struct SiteSamples {
    zero: u32,
    deltas: Vec<[f32; NUM_FEATURES]>,
}

/// The sampled pseudo-likelihood surrogate (Eq. 8) restricted to the
/// active weight components of the current step.
struct Surrogate<'a> {
    sites: &'a [SiteSamples],
    anchor: [f64; NUM_FEATURES],
    active: &'a [usize],
    m_total: f64,
    sigma_sq: f64,
    /// Reusable per-site importance-weight buffer: `eval` runs once per
    /// L-BFGS line-search step over every site, so allocating it per site
    /// would dominate small-problem training time.
    exps: Vec<f64>,
}

impl Objective for Surrogate<'_> {
    fn dim(&self) -> usize {
        self.active.len()
    }

    fn eval(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        let Surrogate {
            sites,
            anchor,
            active,
            m_total,
            sigma_sq,
            exps: exps_buf,
        } = self;
        // Reconstruct the full displacement d = w − ŵ (frozen dims are 0).
        let mut d = [0.0f64; NUM_FEATURES];
        for (j, &k) in active.iter().enumerate() {
            d[k] = x[j] - anchor[k];
        }
        grad.fill(0.0);
        let mut value = 0.0;
        let log_m = m_total.ln();
        for site in *sites {
            if site.deltas.is_empty() {
                // All samples matched the empirical label: log(zero/M).
                value += (site.zero as f64).ln() - log_m;
                continue;
            }
            // log-sum-exp over {0 (×zero), e_d}.
            let mut m = if site.zero > 0 {
                0.0
            } else {
                f64::NEG_INFINITY
            };
            exps_buf.clear();
            let exps = &mut *exps_buf;
            for df in &site.deltas {
                let mut e = 0.0;
                for k in 0..NUM_FEATURES {
                    e += d[k] * df[k] as f64;
                }
                m = m.max(e);
                exps.push(e);
            }
            let mut denom = if site.zero > 0 {
                site.zero as f64 * (-m).exp()
            } else {
                0.0
            };
            for e in exps.iter_mut() {
                *e = (*e - m).exp();
                denom += *e;
            }
            value += m + denom.ln() - log_m;
            for (e, df) in exps.iter().zip(&site.deltas) {
                let wgt = e / denom;
                for (j, &k) in active.iter().enumerate() {
                    grad[j] += wgt * df[k] as f64;
                }
            }
        }
        // Gaussian prior on the active components.
        for (j, &k) in active.iter().enumerate() {
            let w = x[j];
            value += 0.5 * w * w / *sigma_sq;
            grad[j] += w / *sigma_sq;
            let _ = k;
        }
        value
    }
}

/// Output of the alternate learning algorithm.
pub(crate) struct LearnOutput {
    pub weights: Weights,
    pub report: TrainReport,
}

/// Runs Algorithm 1 over fully-labelled training sequences.
pub(crate) fn alternate_learning<R: Rng + ?Sized>(
    space: &IndoorSpace,
    train: &[LabeledSequence],
    config: &C2mnConfig,
    region_freq: &[f64],
    rng: &mut R,
) -> LearnOutput {
    let start = Instant::now();

    // Preprocess every training sequence.
    let truth_regions: Vec<Vec<RegionId>> = train
        .iter()
        .map(|s| s.records.iter().map(|r| r.region).collect())
        .collect();
    let truth_events: Vec<Vec<MobilityEvent>> = train
        .iter()
        .map(|s| s.records.iter().map(|r| r.event).collect())
        .collect();
    let contexts: Vec<SequenceContext> = train
        .iter()
        .zip(&truth_regions)
        .map(|(s, tr)| {
            let records: Vec<_> = s.positioning().collect();
            SequenceContext::build_for_training(space, config, &records, region_freq, tr)
        })
        .collect();
    let truth_r_idx: Vec<Vec<usize>> = contexts
        .iter()
        .zip(&truth_regions)
        .map(|(ctx, tr)| {
            (0..ctx.len())
                .map(|i| ctx.candidate_index(i, tr[i]).expect("truth in candidates"))
                .collect()
        })
        .collect();

    // Initial configured chains (line 1 of Algorithm 1 / footnote 6).
    let mut events_cfg: Vec<Vec<MobilityEvent>> =
        contexts.iter().map(|c| c.dbscan_events.clone()).collect();
    let mut regions_cfg: Vec<Vec<RegionId>> = contexts
        .iter()
        .map(|c| {
            (0..c.len())
                .map(|i| c.candidates[i][c.nearest_idx[i]])
                .collect()
        })
        .collect();

    let mut weights = Weights::uniform(0.5);
    let mut report = TrainReport::default();
    let mut region_converged = false;
    let mut event_converged = false;
    let mut did_region_step = false;
    let mut did_event_step = false;

    let region_mask = config.structure.region_step_mask();
    let event_mask = config.structure.event_step_mask();

    // Sampling buffers reused across every outer iteration and site.
    let mut feats: Vec<[f64; NUM_FEATURES]> = Vec::new();
    let mut log_pot: Vec<f64> = Vec::new();

    for iter in 0..config.max_iter {
        report.iterations = iter + 1;
        let sample_regions = match config.first_configured {
            FirstConfigured::Events => iter % 2 == 0,
            FirstConfigured::Regions => iter % 2 == 1,
        };
        let mask = if sample_regions {
            &region_mask
        } else {
            &event_mask
        };
        let active: Vec<usize> = (0..NUM_FEATURES).filter(|&k| mask[k]).collect();
        if active.is_empty() {
            continue;
        }

        // --- MCMC sampling of the free chain (lines 5–8) ----------------
        // Pseudo-likelihood conditions each site on its Markov blanket at
        // the EMPIRICAL values (Eq. 6): per site we compute the local
        // feature vector of every candidate with the blanket fixed at the
        // training labels (and Ā for the other chain), then draw the M
        // samples from that conditional. The candidate feature vectors are
        // reused for both the sampling weights and the Δf of Eq. 8/9.
        let mut sites: Vec<SiteSamples> = Vec::new();
        // Majority-vote accumulators for updating the configured chain.
        let mut vote: Vec<Vec<Vec<u32>>> = Vec::with_capacity(contexts.len());
        for (s, ctx) in contexts.iter().enumerate() {
            let net = CoupledNetwork::new(ctx, &weights);
            let n = ctx.len();
            let mut counts: Vec<Vec<u32>> = (0..n)
                .map(|i| {
                    vec![
                        0u32;
                        if sample_regions {
                            ctx.candidates[i].len()
                        } else {
                            2
                        }
                    ]
                })
                .collect();
            for i in 0..n {
                let (num_cand, truth_idx) = if sample_regions {
                    (ctx.candidates[i].len(), truth_r_idx[s][i])
                } else {
                    (2, truth_events[s][i].index())
                };
                feats.clear();
                feats.resize(num_cand, [0.0; NUM_FEATURES]);
                for (c, f) in feats.iter_mut().enumerate() {
                    if sample_regions {
                        net.region_local_features(
                            i,
                            ctx.candidates[i][c],
                            |k| truth_regions[s][k],
                            |k| events_cfg[s][k],
                            f,
                        );
                    } else {
                        net.event_local_features(
                            i,
                            MobilityEvent::ALL[c],
                            |k| regions_cfg[s][k],
                            |k| truth_events[s][k],
                            f,
                        );
                    }
                }
                log_pot.clear();
                log_pot.extend(feats.iter().map(|f| weights.dot(f)));
                let mut slot = SiteSamples {
                    zero: 0,
                    deltas: Vec::new(),
                };
                for _ in 0..config.mcmc_m {
                    let c = ism_pgm::sample_from_log_weights(&log_pot, rng);
                    counts[i][c] += 1;
                    if c == truth_idx {
                        slot.zero += 1;
                    } else {
                        let mut df = [0.0f32; NUM_FEATURES];
                        for k in 0..NUM_FEATURES {
                            df[k] = (feats[c][k] - feats[truth_idx][k]) as f32;
                        }
                        slot.deltas.push(df);
                    }
                }
                sites.push(slot);
            }
            vote.push(counts);
        }

        // --- Inner L-BFGS on the surrogate (lines 9–17) ------------------
        let mut surrogate = Surrogate {
            sites: &sites,
            anchor: weights.0,
            active: &active,
            m_total: config.mcmc_m.max(1) as f64,
            sigma_sq: config.sigma_sq,
            exps: Vec::new(),
        };
        let x0: Vec<f64> = active.iter().map(|&k| weights.0[k]).collect();
        let params = LbfgsParams {
            max_iters: config.inner_lbfgs_iters,
            ..Default::default()
        };
        let result = minimize(&mut surrogate, &x0, &params);
        let mut new_weights = weights.clone();
        for (j, &k) in active.iter().enumerate() {
            // Trust region: the surrogate's importance weights are only
            // reliable near the sampling anchor, so clamp the step, then
            // project onto the non-negative orthant (every feature is a
            // compatibility; a negative template weight would invert its
            // semantics, which under heavy positioning noise destroys
            // decoding).
            let lo = weights.0[k] - config.step_cap;
            let hi = weights.0[k] + config.step_cap;
            new_weights.0[k] = result.x[j].clamp(lo, hi).max(0.0);
        }
        report.objective_trace.push(result.value);

        // --- Convergence bookkeeping (lines 18–26) -----------------------
        let step = new_weights.chebyshev(&weights, Some(mask));
        if sample_regions {
            did_region_step = true;
            region_converged = step <= config.delta;
        } else {
            did_event_step = true;
            event_converged = step <= config.delta;
        }
        weights = new_weights;

        // Update the configured value of the just-sampled chain by
        // averaging (majority-voting) the M samples (line 25).
        for (s, ctx) in contexts.iter().enumerate() {
            for i in 0..ctx.len() {
                let argmax = vote[s][i]
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, c)| **c)
                    .map(|(j, _)| j)
                    .unwrap_or(0);
                if sample_regions {
                    regions_cfg[s][i] = ctx.candidates[i][argmax];
                } else {
                    events_cfg[s][i] = MobilityEvent::ALL[argmax];
                }
            }
        }

        if did_region_step && did_event_step && region_converged && event_converged {
            report.converged = true;
            break;
        }
    }

    report.train_seconds = start.elapsed().as_secs_f64();
    LearnOutput { weights, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_indoor::BuildingGenerator;
    use ism_mobility::{Dataset, PositioningConfig, SimulationConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_training_data() -> (ism_indoor::IndoorSpace, Vec<LabeledSequence>) {
        let mut rng = StdRng::seed_from_u64(1);
        let space = BuildingGenerator::small_office()
            .generate(&mut rng)
            .unwrap();
        let dataset = Dataset::generate(
            "train",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(8.0, 2.0),
            None,
            5,
            &mut rng,
        );
        (space, dataset.sequences)
    }

    #[test]
    fn learning_runs_and_improves_weights() {
        let (space, seqs) = tiny_training_data();
        let config = C2mnConfig::quick_test();
        let mut rng = StdRng::seed_from_u64(2);
        let out = alternate_learning(&space, &seqs, &config, &[], &mut rng);
        assert!(out.report.iterations >= 2);
        assert!(out.report.train_seconds > 0.0);
        // Weights moved away from the uniform init on active templates.
        let moved = out
            .weights
            .0
            .iter()
            .filter(|w| (**w - 0.5).abs() > 1e-6)
            .count();
        assert!(moved >= 4, "weights barely moved: {:?}", out.weights.0);
        // All weights finite.
        assert!(out.weights.0.iter().all(|w| w.is_finite()));
    }

    #[test]
    fn surrogate_gradient_is_exact() {
        use ism_optim::gradcheck::max_gradient_error;
        // Synthetic site samples.
        let mut sites = Vec::new();
        let mut seed = 11u64;
        for _ in 0..5 {
            let mut deltas = Vec::new();
            for _ in 0..4 {
                let mut df = [0.0f32; NUM_FEATURES];
                for v in df.iter_mut() {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    *v = ((seed >> 33) as f32 / u32::MAX as f32 - 0.25) * 2.0;
                }
                deltas.push(df);
            }
            sites.push(SiteSamples { zero: 2, deltas });
        }
        let active: Vec<usize> = (0..NUM_FEATURES).collect();
        let mut s = Surrogate {
            sites: &sites,
            anchor: [0.3; NUM_FEATURES],
            active: &active,
            m_total: 6.0,
            sigma_sq: 0.5,
            exps: Vec::new(),
        };
        let x: Vec<f64> = (0..NUM_FEATURES).map(|k| 0.2 + 0.05 * k as f64).collect();
        let err = max_gradient_error(&mut s, &x, 1e-5);
        assert!(err < 1e-5, "gradient error {err}");
    }

    #[test]
    fn cmn_structure_trains_without_segmentation() {
        let (space, seqs) = tiny_training_data();
        let config = C2mnConfig::quick_test().with_structure(crate::ModelStructure::cmn());
        let mut rng = StdRng::seed_from_u64(3);
        let out = alternate_learning(&space, &seqs, &config, &[], &mut rng);
        // Segmentation weights stay at their initial value.
        for k in 6..12 {
            assert!((out.weights.0[k] - 0.5).abs() < 1e-12);
        }
    }
}
