//! Unified streaming engine over annotation, storage, and semantic
//! queries.
//!
//! The paper's pipeline — decode p-sequences into m-semantics, accumulate
//! them per object, serve TkPRQ/TkFRPQ — used to be exposed as
//! disconnected pieces the caller wired by hand (`C2mn::train` →
//! `BatchAnnotator` → `ShardedStoreBuilder` → free query functions, each
//! taking its own `WorkerPool`), and ingestion was strictly offline. This
//! crate redesigns that surface around one owning type:
//!
//! * [`SemanticsEngine`] — owns the trained model, the worker pool, and a
//!   **live** [`ShardedSemanticsStore`]; queries are methods
//!   ([`tk_prq`](SemanticsEngine::tk_prq) /
//!   [`tk_frpq`](SemanticsEngine::tk_frpq)) over everything sealed so far.
//! * [`EngineBuilder`] — threads, shards, base seed, submission-queue
//!   capacity, optional warm-start store; [`build`](EngineBuilder::build)
//!   from a trained model or [`train`](EngineBuilder::train) in one step.
//! * [`IngestSession`] — the streaming front-end: p-sequences go in
//!   incrementally and are handed to **idle workers as they arrive**
//!   (decode overlaps with arrival; a filled queue still fans out as a
//!   batch, bounding memory), sealed m-semantics come out the other end,
//!   **byte-identical** to the offline `BatchAnnotator` reference for any
//!   thread count and any push chunking. Sessions borrow the engine
//!   *shared*, so several can ingest concurrently into one global
//!   numbering.
//! * [`EngineError`] — the unified error surface replacing the panicking
//!   paths of the hand-wired pipeline.
//!
//! ```
//! use ism_engine::EngineBuilder;
//! use ism_c2mn::{C2mn, C2mnConfig, Weights};
//! use ism_indoor::BuildingGenerator;
//! use ism_mobility::{Dataset, PositioningConfig, SimulationConfig, TimePeriod};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let venue = BuildingGenerator::small_office().generate(&mut rng).unwrap();
//! let dataset = Dataset::generate(
//!     "demo", &venue, SimulationConfig::quick(),
//!     PositioningConfig::synthetic(8.0, 1.5), None, 4, &mut rng);
//! let model = C2mn::from_weights(&venue, C2mnConfig::quick_test(), Weights::uniform(1.0));
//!
//! let mut engine = EngineBuilder::new()
//!     .threads(2)
//!     .shards(4)
//!     .base_seed(42)
//!     .build(model)
//!     .unwrap();
//!
//! // Stream p-sequences in as they "arrive"; seal to publish.
//! let mut session = engine.ingest();
//! for seq in &dataset.sequences {
//!     session.push(seq.object_id, seq.positioning().collect());
//! }
//! let ingested = session.seal();
//! assert_eq!(ingested, dataset.sequences.len() as u64);
//!
//! // Queries are methods over everything sealed so far.
//! let regions: Vec<_> = venue.regions().iter().map(|r| r.id).collect();
//! let top = engine.tk_prq(&regions, 3, TimePeriod::new(0.0, 1e6));
//! assert!(top.len() <= 3);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod cache;
mod error;
mod ingest;
mod persist;
mod session;

pub use cache::CacheStats;
pub use error::EngineError;
pub use ism_codec::PersistError;
pub use ism_pgm::KernelStats;
pub use persist::{log_path, RecoveryReport};
pub use session::IngestSession;

use cache::{CacheKey, QueryCache};
use ingest::{IngestShared, PendingItem};
use ism_c2mn::{BatchAnnotator, C2mn, C2mnConfig, DecodeScratch, Trainer};
use ism_indoor::{IndoorSpace, RegionId};
use ism_mobility::{
    LabeledSequence, MobilityEvent, MobilitySemantics, PositioningRecord, TimePeriod,
};
use ism_queries::{
    QueryAnswer, QueryBatch, ShardedSemanticsStore, StandingTkFrpq, StandingTkPrq, DEFAULT_SHARDS,
};
use ism_runtime::{PoolStats, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use parking_lot::Mutex;

/// Default capacity of an ingest session's submission queue: how many
/// submitted-but-undecoded p-sequences buffer before a chunk fans out.
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

/// Configures and constructs a [`SemanticsEngine`].
///
/// Every knob has a sensible default: threads = available parallelism,
/// shards = [`DEFAULT_SHARDS`], base seed = 0, queue capacity =
/// [`DEFAULT_QUEUE_CAPACITY`], no warm-start store.
#[derive(Debug, Clone, Default)]
#[must_use = "an EngineBuilder does nothing until `build` or `train`"]
pub struct EngineBuilder {
    threads: Option<usize>,
    shards: Option<usize>,
    base_seed: u64,
    queue_capacity: Option<usize>,
    first_sequence_index: u64,
    initial: Option<ShardedSemanticsStore>,
}

impl EngineBuilder {
    /// Creates a builder with every knob at its default.
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Worker threads for decoding, sealing, and query fan-out (clamped to
    /// ≥ 1). Never changes any result — see the determinism contract.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Shard count of the live store. Never changes query results.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Base seed of the per-sequence RNG derivation
    /// (`sequence_seed(base_seed, global_sequence_index)`).
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Capacity of the engine-wide submission queue (clamped to ≥ 1):
    /// the most submitted-but-undispatched sequences ever buffered across
    /// all concurrent ingest sessions. Never changes any result, only
    /// memory/latency.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Global index of the first sequence the engine will ingest — set it
    /// when resuming a numbered stream so seeds continue rather than
    /// restart (defaults to 0).
    pub fn first_sequence_index(mut self, index: u64) -> Self {
        self.first_sequence_index = index;
        self
    }

    /// Warm-starts the engine with previously annotated data. The store's
    /// shard count must agree with [`shards`](EngineBuilder::shards) if
    /// both are given; otherwise the store's count wins.
    ///
    /// The engine's query surface only ever serves **sealed** data, so a
    /// handed-over store carrying unsealed appends
    /// ([`num_pending`](ShardedSemanticsStore::num_pending) > 0) is sealed
    /// during `build` — the built engine starts with `num_pending() == 0`
    /// and those entries already queryable.
    pub fn initial_store(mut self, store: ShardedSemanticsStore) -> Self {
        self.initial = Some(store);
        self
    }

    /// Builds an engine around an already-trained model.
    pub fn build<'a>(self, model: C2mn<'a>) -> Result<SemanticsEngine<'a>, EngineError> {
        let pool = self.pool();
        self.build_with_pool(model, pool)
    }

    /// The worker pool this builder's engine will own.
    fn pool(&self) -> WorkerPool {
        match self.threads {
            Some(threads) => WorkerPool::new(threads),
            None => WorkerPool::with_available_parallelism(),
        }
    }

    fn build_with_pool<'a>(
        self,
        model: C2mn<'a>,
        pool: WorkerPool,
    ) -> Result<SemanticsEngine<'a>, EngineError> {
        let store = match self.initial {
            Some(mut store) => {
                if let Some(shards) = self.shards {
                    if store.num_shards() != shards {
                        return Err(ism_queries::StoreError::ShardCountMismatch {
                            left: shards,
                            right: store.num_shards(),
                        }
                        .into());
                    }
                }
                // A handed-over store may carry unsealed appends.
                store.seal_with(&pool);
                store
            }
            None => ShardedSemanticsStore::new(self.shards.unwrap_or(DEFAULT_SHARDS)),
        };
        let queue_capacity = self.queue_capacity.unwrap_or(DEFAULT_QUEUE_CAPACITY).max(1);
        Ok(SemanticsEngine {
            // Boxed so the model's address is stable across engine moves —
            // pipelined decode tasks hold a raw borrow of it (see
            // `decode_task`).
            model: Box::new(model),
            pool,
            base_seed: self.base_seed,
            queue_capacity,
            shared: Arc::new(IngestShared::new(
                store,
                queue_capacity,
                self.first_sequence_index,
            )),
            cache: Mutex::new(QueryCache::default()),
            standing: Mutex::new(Vec::new()),
            log: Mutex::new(persist::LogState::default()),
        })
    }

    /// Trains a C2MN on `train` (Algorithm 1) and builds an engine around
    /// it in one step.
    ///
    /// Training runs on the engine's own [`WorkerPool`] — the per-sequence
    /// MCMC sampling fans out over the same workers that will later serve
    /// decoding and queries, with the base seed drawn from `rng`. Thread
    /// count never changes the learned weights (the [`Trainer`]
    /// determinism contract), so this is purely a wall-clock knob.
    pub fn train<'a, R: Rng + ?Sized>(
        self,
        space: &'a IndoorSpace,
        train: &[LabeledSequence],
        config: &C2mnConfig,
        rng: &mut R,
    ) -> Result<SemanticsEngine<'a>, EngineError> {
        let pool = self.pool();
        let outcome = Trainer::new(space, config.clone())
            .seed(rng.random::<u64>())
            .pool(&pool)
            .run(train)?;
        self.build_with_pool(outcome.model, pool)
    }
}

/// The unified annotation/storage/query engine.
///
/// Owns the trained [`C2mn`], the [`WorkerPool`], and a live
/// [`ShardedSemanticsStore`]. Data enters through streaming
/// [`ingest`](SemanticsEngine::ingest) sessions (or the offline
/// [`annotate_batch`](SemanticsEngine::annotate_batch) /
/// [`label_batch`](SemanticsEngine::label_batch) helpers) and is served by
/// the query methods.
///
/// All ingest and query methods take `&self`: the live store sits behind
/// a reader/writer lock, sessions share one global submission queue, and
/// the caches are internally synchronised — so several
/// [`IngestSession`]s (and queries) can run concurrently on one engine.
///
/// ## Determinism contract
///
/// The engine inherits — and composes — the contracts of its layers:
/// global sequence `i` decodes with `sequence_seed(base_seed, i)`
/// regardless of worker, session chunking, or queue capacity; decoded
/// results pass through a reorder buffer and commit in global index
/// order; objects hash whole into shards; per-shard query partials merge
/// commutatively. The sealed store and every query answer are therefore
/// **byte-identical for any thread count, shard count, push chunking,
/// and session interleaving**, equal to the offline single-threaded
/// reference.
pub struct SemanticsEngine<'a> {
    /// Boxed for address stability: pipelined decode tasks borrow the
    /// model raw across the lifetime-erased worker queue.
    model: Box<C2mn<'a>>,
    pool: WorkerPool,
    base_seed: u64,
    queue_capacity: usize,
    /// The cross-session ingest core: global submission queue, in-flight
    /// ledger, reorder buffer, and the live store behind its lock.
    shared: Arc<IngestShared>,
    /// Hot-region result cache for the one-shot query methods; seals
    /// evict exactly the entries whose regions they touch.
    cache: Mutex<QueryCache>,
    /// Registered standing queries, folded forward by every seal.
    /// Cancelled slots stay as `None` so handles keep their index.
    standing: Mutex<Vec<Option<StandingState>>>,
    /// The attached seal append-log, if any, plus the error that
    /// detached it (see the `persist` module docs).
    log: Mutex<persist::LogState>,
}

impl std::fmt::Debug for SemanticsEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SemanticsEngine")
            .field("threads", &self.threads())
            .field("base_seed", &self.base_seed)
            .field("queue_capacity", &self.queue_capacity)
            .field("num_shards", &self.num_shards())
            .finish_non_exhaustive()
    }
}

/// Shared read access to the engine's live store, released on drop.
///
/// Dereferences to [`ShardedSemanticsStore`]. Ingest commits and seals
/// take the write side of the same lock, so don't hold a guard across
/// long pauses while sessions are streaming.
pub struct StoreGuard<'e> {
    guard: parking_lot::RwLockReadGuard<'e, ShardedSemanticsStore>,
}

impl std::ops::Deref for StoreGuard<'_> {
    type Target = ShardedSemanticsStore;

    fn deref(&self) -> &ShardedSemanticsStore {
        &self.guard
    }
}

impl std::fmt::Debug for StoreGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&*self.guard, f)
    }
}

/// One registered standing query of either kind.
#[derive(Debug, Clone)]
enum StandingState {
    Prq(StandingTkPrq),
    Frpq(StandingTkFrpq),
}

/// Handle to a standing query registered with
/// [`SemanticsEngine::standing_tk_prq`] /
/// [`SemanticsEngine::standing_tk_frpq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StandingQueryId(usize);

impl<'a> SemanticsEngine<'a> {
    /// A fresh [`EngineBuilder`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The owned trained model.
    pub fn model(&self) -> &C2mn<'a> {
        &self.model
    }

    /// A snapshot of the worker pool's lifetime counters — fan-out vs
    /// inline dispatches, items claimed, pipelined async tasks, idle
    /// wakeups, and the (constant) number of threads ever spawned.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// A snapshot of the process-wide decode-kernel counters — memoized
    /// candidate rows filled vs reused, cross-chain invalidations, and
    /// bytes cumulatively allocated to precomputed pairwise feature
    /// tables. Counters accumulate over every decode in the process
    /// (batch, streaming, serving, and training), mirroring how
    /// [`SemanticsEngine::pool_stats`] accumulates over the pool's
    /// lifetime.
    pub fn kernel_stats(&self) -> KernelStats {
        ism_pgm::kernel_stats()
    }

    /// The worker pool shared by decoding, sealing, and queries.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The base seed of the per-sequence RNG derivation.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The submission-queue capacity of ingest sessions.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Shard count of the live store.
    pub fn num_shards(&self) -> usize {
        self.store().num_shards()
    }

    /// Sequences ingested over the engine's lifetime (the global index of
    /// the next pushed sequence, counted across all sessions).
    pub fn sequences_ingested(&self) -> u64 {
        self.state().queue.next_index()
    }

    /// Sequences whose decoded m-semantics have been appended to the live
    /// store (the global index of the next commit). Trails
    /// [`sequences_ingested`](SemanticsEngine::sequences_ingested) while
    /// pipelined decodes are in flight; equal after a flush or seal.
    pub fn sequences_committed(&self) -> u64 {
        self.state().next_commit
    }

    /// Distinct objects with sealed m-semantics.
    pub fn num_objects(&self) -> usize {
        self.shared.store.read().len()
    }

    /// Read access to the live store (sealed data). The guard holds the
    /// store's read lock until dropped.
    pub fn store(&self) -> StoreGuard<'_> {
        StoreGuard {
            guard: self.shared.store.read(),
        }
    }

    /// Hands the live store over to the caller, consuming the engine
    /// (pass it to [`EngineBuilder::initial_store`] to resume later).
    pub fn into_store(self) -> ShardedSemanticsStore {
        // Sessions borrow the engine, so none are open; wait out any
        // still-running pipelined decodes and take the store.
        self.wait_inflight();
        let mut store = self.shared.store.write();
        let empty = ShardedSemanticsStore::new(store.num_shards());
        std::mem::replace(&mut *store, empty)
    }

    /// The sealed m-semantics of `object_id`, if any (cloned out of the
    /// live store so no lock is held after the call).
    pub fn semantics_of(&self, object_id: u64) -> Option<Vec<MobilitySemantics>> {
        self.shared
            .store
            .read()
            .get(object_id)
            .map(<[MobilitySemantics]>::to_vec)
    }

    /// Opens a streaming ingest session. Sessions borrow the engine
    /// *shared*: several may ingest concurrently, all stamping into one
    /// global numbering. Sealing (or dropping) a session flushes and
    /// publishes everything pushed engine-wide so far.
    pub fn ingest(&self) -> IngestSession<'_, 'a> {
        IngestSession::new(self)
    }

    /// The ingest ledger, locked.
    pub(crate) fn state(&self) -> parking_lot::MutexGuard<'_, ingest::IngestState> {
        self.shared.state.lock()
    }

    /// Blocks until no pipelined decode task is running (they borrow the
    /// boxed model raw, so the engine must outlive them).
    fn wait_inflight(&self) {
        let mut state = self.shared.state.lock();
        while state.inflight > 0 {
            self.shared.progress.wait(&mut state);
        }
    }

    /// Offline convenience: labels a batch of p-sequences with per-record
    /// `(region, event)` pairs on the engine's pool. Does not touch the
    /// store or the global sequence counter.
    pub fn label_batch(
        &self,
        sequences: &[Vec<PositioningRecord>],
    ) -> Vec<Vec<(RegionId, MobilityEvent)>> {
        self.annotator().label_batch(sequences)
    }

    /// Offline convenience: annotates a batch into merged m-semantics on
    /// the engine's pool. Does not touch the store or the global sequence
    /// counter.
    pub fn annotate_batch(
        &self,
        sequences: &[Vec<PositioningRecord>],
    ) -> Vec<Vec<MobilitySemantics>> {
        self.annotator().annotate_batch(sequences)
    }

    /// Top-k popular regions among `query` within `qt`, over all sealed
    /// data, evaluated on the engine's pool.
    ///
    /// Answers are served from the engine's result cache when the same
    /// (normalised) query was evaluated before and no seal since touched
    /// any of its regions.
    // analyzer: allow(lib-panic) the cache stores PRQ answers under PRQ keys and a one-query batch yields one answer
    pub fn tk_prq(&self, query: &[RegionId], k: usize, qt: TimePeriod) -> Vec<(RegionId, usize)> {
        let key = CacheKey::new(true, query, k, qt);
        if let Some(hit) = self.cache.lock().get(&key) {
            return hit.into_prq().expect("a PRQ caches as PRQ");
        }
        let mut batch = QueryBatch::new();
        batch.tk_prq(query, k, qt);
        let answer = self.run_batch(&batch).pop().expect("one answer per query");
        self.cache.lock().insert(key, answer.clone());
        answer.into_prq().expect("a PRQ answers as PRQ")
    }

    /// Top-k frequently co-visited region pairs among `query` within `qt`,
    /// over all sealed data, evaluated on the engine's pool.
    ///
    /// Cached like [`tk_prq`](SemanticsEngine::tk_prq).
    // analyzer: allow(lib-panic) the cache stores FRPQ answers under FRPQ keys and a one-query batch yields one answer
    pub fn tk_frpq(
        &self,
        query: &[RegionId],
        k: usize,
        qt: TimePeriod,
    ) -> Vec<((RegionId, RegionId), usize)> {
        let key = CacheKey::new(false, query, k, qt);
        if let Some(hit) = self.cache.lock().get(&key) {
            return hit.into_frpq().expect("an FRPQ caches as FRPQ");
        }
        let mut batch = QueryBatch::new();
        batch.tk_frpq(query, k, qt);
        let answer = self.run_batch(&batch).pop().expect("one answer per query");
        self.cache.lock().insert(key, answer.clone());
        answer.into_frpq().expect("an FRPQ answers as FRPQ")
    }

    /// Evaluates a prepared [`QueryBatch`] in one fan-out over the sealed
    /// store on the engine's pool (answers in submission order). The batch
    /// path bypasses the result cache — it is the bulk interface.
    pub fn run_batch(&self, batch: &QueryBatch) -> Vec<QueryAnswer> {
        let store = self.shared.store.read();
        batch.run(&store, &self.pool)
    }

    /// Cache counters of the one-shot query methods.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().stats()
    }

    /// Registers a standing TkPRQ over everything sealed so far; every
    /// subsequent seal folds its new postings in incrementally, keeping
    /// [`standing_prq_result`](SemanticsEngine::standing_prq_result)
    /// byte-identical to re-running [`tk_prq`](SemanticsEngine::tk_prq).
    pub fn standing_tk_prq(&self, query: &[RegionId], k: usize, qt: TimePeriod) -> StandingQueryId {
        let state = {
            let store = self.shared.store.read();
            StandingTkPrq::new(query, k, qt, &store, &self.pool)
        };
        let mut standing = self.standing.lock();
        standing.push(Some(StandingState::Prq(state)));
        StandingQueryId(standing.len() - 1)
    }

    /// Registers a standing TkFRPQ over everything sealed so far; every
    /// subsequent seal folds its new postings in incrementally, keeping
    /// [`standing_frpq_result`](SemanticsEngine::standing_frpq_result)
    /// byte-identical to re-running [`tk_frpq`](SemanticsEngine::tk_frpq).
    pub fn standing_tk_frpq(
        &self,
        query: &[RegionId],
        k: usize,
        qt: TimePeriod,
    ) -> StandingQueryId {
        let state = {
            let store = self.shared.store.read();
            StandingTkFrpq::new(query, k, qt, &store, &self.pool)
        };
        let mut standing = self.standing.lock();
        standing.push(Some(StandingState::Frpq(state)));
        StandingQueryId(standing.len() - 1)
    }

    /// The current ranking of a standing TkPRQ. `None` if the handle is
    /// unknown, cancelled, or names a TkFRPQ.
    pub fn standing_prq_result(&self, id: StandingQueryId) -> Option<Vec<(RegionId, usize)>> {
        let standing = self.standing.lock();
        match standing.get(id.0)?.as_ref()? {
            StandingState::Prq(state) => Some(state.result()),
            StandingState::Frpq(_) => None,
        }
    }

    /// The current ranking of a standing TkFRPQ. `None` if the handle is
    /// unknown, cancelled, or names a TkPRQ.
    pub fn standing_frpq_result(
        &self,
        id: StandingQueryId,
    ) -> Option<Vec<((RegionId, RegionId), usize)>> {
        let standing = self.standing.lock();
        match standing.get(id.0)?.as_ref()? {
            StandingState::Frpq(state) => Some(state.result()),
            StandingState::Prq(_) => None,
        }
    }

    /// Cancels a standing query; returns whether the handle was live.
    /// Other handles are unaffected.
    pub fn cancel_standing(&self, id: StandingQueryId) -> bool {
        let mut standing = self.standing.lock();
        match standing.get_mut(id.0) {
            Some(slot) => slot.take().is_some(),
            None => false,
        }
    }

    /// Standing queries currently registered (cancelled ones excluded).
    pub fn num_standing(&self) -> usize {
        let standing = self.standing.lock();
        standing.iter().flatten().count()
    }

    fn annotator(&self) -> BatchAnnotator<'_, 'a> {
        BatchAnnotator::with_pool(&self.model, &self.pool, self.base_seed)
    }

    /// Accepts one pushed sequence from a session: stamps it into the
    /// engine-wide submission queue, then either fans the filled queue
    /// out synchronously (backpressure — the memory bound) or hands
    /// buffered sequences to idle workers immediately (pipelining —
    /// decode overlaps with arrival).
    pub(crate) fn submit(&self, object_id: u64, records: Vec<PositioningRecord>) {
        let full = self.state().queue.push((object_id, records));
        match full {
            Some(batch) => self.decode_chunk(batch),
            None => self.dispatch_pipelined(),
        }
    }

    /// Hands buffered sequences to idle workers, one decode task each.
    /// Never blocks on a busy pool: while a decode is in flight the queue
    /// keeps buffering (the finishing worker claims the next item
    /// itself), but when nothing is in flight — no workers at all, or
    /// every worker parked between our pop and its idle flag — this
    /// caller decodes inline so no sequence is ever stranded unobserved
    /// in the queue.
    fn dispatch_pipelined(&self) {
        loop {
            let idle = self.pool.idle_workers() > 0;
            let item = {
                let mut state = self.state();
                if !idle && state.inflight > 0 {
                    // A running task will claim the queued items when it
                    // finishes; leave them buffered.
                    return;
                }
                match state.queue.pop_front() {
                    Some(item) => {
                        state.inflight += 1;
                        item
                    }
                    None => return,
                }
            };
            let task = self.decode_task(item);
            if idle {
                if let Err(task) = self.pool.try_spawn(task) {
                    // Lost the race for the idle worker — run it here;
                    // the commit still goes through the reorder buffer.
                    task();
                }
            } else {
                task();
            }
        }
    }

    /// Builds the lifetime-erased decode task for one stamped sequence.
    /// The task decodes with the same `(base_seed, index)` derivation as
    /// the batch path, parks the result in the reorder buffer, commits
    /// the contiguous prefix — and then claims the next buffered
    /// sequence itself, so a single dispatch keeps its worker busy until
    /// the queue is dry and no arrival is ever stranded waiting for a
    /// dispatcher.
    fn decode_task(
        &self,
        (index, (object_id, records)): (u64, PendingItem),
    ) -> ism_runtime::AsyncTask {
        let shared = Arc::clone(&self.shared);
        let base_seed = self.base_seed;
        // SAFETY: the model lives in a `Box` owned by the engine, so its
        // address is stable across engine moves, and every path that ends
        // the model's life (`Drop`, `into_store`) first blocks until
        // `inflight == 0` (`wait_inflight`). A task dereferences the
        // model only while its claim is registered: the in-flight
        // decrement and the claim of the next queued sequence happen in
        // one critical section, so `inflight` never observably reaches
        // zero while the task still intends to decode — the reference
        // never outlives the data even though the closure is erased to
        // `'static` for the worker queue.
        let model: &'static C2mn<'static> =
            unsafe { std::mem::transmute::<&C2mn<'a>, &'static C2mn<'static>>(&*self.model) };
        Box::new(move || {
            let mut next = Some((index, (object_id, records)));
            while let Some((index, (object_id, records))) = next.take() {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    decode_one(model, base_seed, index, &records)
                }));
                let mut state = shared.state.lock();
                state.inflight -= 1;
                match result {
                    Ok(semantics) => {
                        state.ready.insert(index, (object_id, semantics));
                        shared.commit_ready(&mut state);
                        // Chain onto the next buffered sequence inside the
                        // same critical section as the decrement, keeping
                        // `inflight` non-zero across the handoff.
                        if let Some(item) = state.queue.pop_front() {
                            state.inflight += 1;
                            next = Some(item);
                        }
                    }
                    Err(_) => state.panicked = true,
                }
                drop(state);
                shared.progress.notify_all();
            }
        })
    }

    /// Decodes one drained submission batch (`(global index, (object id,
    /// records))` in index order) on the pool and commits the results
    /// through the reorder buffer.
    pub(crate) fn decode_chunk(&self, batch: Vec<(u64, PendingItem)>) {
        let Some(&(first, _)) = batch.first() else {
            return;
        };
        let mut object_ids = Vec::with_capacity(batch.len());
        let mut sequences = Vec::with_capacity(batch.len());
        for (index, (object_id, records)) in batch {
            debug_assert_eq!(index, first + object_ids.len() as u64);
            object_ids.push(object_id);
            sequences.push(records);
        }
        let annotated = self.annotator().annotate_batch_at(first, &sequences);
        let mut state = self.state();
        for (offset, (object_id, semantics)) in object_ids.into_iter().zip(annotated).enumerate() {
            state
                .ready
                .insert(first + offset as u64, (object_id, semantics));
        }
        self.shared.commit_ready(&mut state);
        drop(state);
        self.shared.progress.notify_all();
    }

    /// Drains the engine-wide queue, decodes it, and blocks until every
    /// in-flight pipelined decode has committed. Panics if a pipelined
    /// decode task panicked (the deferred equivalent of the synchronous
    /// path's panic).
    pub(crate) fn flush_ingest(&self) {
        let batch = self.state().queue.drain();
        self.decode_chunk(batch);
        let mut state = self.state();
        loop {
            assert!(!state.panicked, "a pipelined decode task panicked");
            if state.inflight == 0 && state.ready.is_empty() {
                return;
            }
            self.shared.progress.wait(&mut state);
        }
    }

    /// Seals the store's pending segments on the engine's pool, then feeds
    /// the seal's summary to the result cache (evicting entries whose
    /// regions the seal touched) and to every registered standing query.
    /// If a seal log is attached, the pending entries are appended to it
    /// as one frame *before* the merge, so a crash after this call loses
    /// nothing (see the `persist` module docs).
    pub(crate) fn seal_store(&self) {
        let summary = {
            // State before store (the engine-wide lock order): the commit
            // index the frame records must describe exactly the pending
            // set we log, so both are read under one store write guard.
            let state = self.state();
            let next_commit = state.next_commit;
            let mut store = self.shared.store.write();
            drop(state);
            if store.num_pending() > 0 {
                self.log_seal(next_commit, &store);
            }
            store.seal_summarized_with(&self.pool)
        };
        if summary.new_stays.is_empty() {
            return;
        }
        self.cache
            .lock()
            .invalidate_touching(&summary.touched_regions);
        let mut standing = self.standing.lock();
        for state in standing.iter_mut().flatten() {
            match state {
                StandingState::Prq(q) => q.observe_seal(&summary),
                StandingState::Frpq(q) => q.observe_seal(&summary),
            }
        }
    }
}

impl Drop for SemanticsEngine<'_> {
    fn drop(&mut self) {
        // In-flight pipelined decodes borrow the boxed model raw; wait
        // them out before the model drops. Sessions seal on drop (and
        // borrow the engine, so they are gone by now), so this is
        // normally already quiescent.
        self.wait_inflight();
    }
}

/// Decodes one sequence exactly as the batch path does: per-sequence RNG
/// seeded with `sequence_seed(base_seed, global_index)`, worker-local
/// scratch reused across every sequence the thread ever decodes.
fn decode_one(
    model: &C2mn<'_>,
    base_seed: u64,
    index: u64,
    records: &[PositioningRecord],
) -> Vec<MobilitySemantics> {
    thread_local! {
        static SCRATCH: std::cell::RefCell<DecodeScratch> =
            std::cell::RefCell::new(DecodeScratch::new());
    }
    SCRATCH.with(|scratch| {
        let mut rng = StdRng::seed_from_u64(ism_c2mn::sequence_seed(base_seed, index as usize));
        model.annotate_with(records, &mut rng, &mut scratch.borrow_mut())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_c2mn::Weights;
    use ism_indoor::BuildingGenerator;
    use ism_mobility::{Dataset, PositioningConfig, SimulationConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ism_indoor::IndoorSpace, Dataset) {
        let mut rng = StdRng::seed_from_u64(1);
        let space = BuildingGenerator::small_office()
            .generate(&mut rng)
            .unwrap();
        let dataset = Dataset::generate(
            "e",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(8.0, 1.5),
            None,
            6,
            &mut rng,
        );
        (space, dataset)
    }

    fn model(space: &ism_indoor::IndoorSpace) -> C2mn<'_> {
        C2mn::from_weights(space, C2mnConfig::quick_test(), Weights::uniform(1.0))
    }

    #[test]
    fn builder_defaults_are_sane() {
        let (space, _) = setup();
        let engine = EngineBuilder::new().build(model(&space)).unwrap();
        assert!(engine.threads() >= 1);
        assert_eq!(engine.num_shards(), DEFAULT_SHARDS);
        assert_eq!(engine.base_seed(), 0);
        assert_eq!(engine.queue_capacity(), DEFAULT_QUEUE_CAPACITY);
        assert_eq!(engine.sequences_ingested(), 0);
        assert_eq!(engine.num_objects(), 0);
        // Queue capacity clamps to ≥ 1.
        let engine = EngineBuilder::new()
            .queue_capacity(0)
            .build(model(&space))
            .unwrap();
        assert_eq!(engine.queue_capacity(), 1);
    }

    #[test]
    fn builder_trains_on_the_engine_pool_with_thread_invariant_weights() {
        let (space, dataset) = setup();
        let config = C2mnConfig::quick_test();
        // Sequential reference: `C2mn::train` draws the same base seed
        // from an identically-seeded rng and samples on one thread.
        let mut rng = StdRng::seed_from_u64(77);
        let reference = C2mn::train(&space, &dataset.sequences, &config, &mut rng).unwrap();
        for threads in [1, 2, 4] {
            let mut rng = StdRng::seed_from_u64(77);
            let engine = EngineBuilder::new()
                .threads(threads)
                .train(&space, &dataset.sequences, &config, &mut rng)
                .unwrap();
            assert_eq!(engine.threads(), threads);
            assert_eq!(
                engine.model().weights().0.map(f64::to_bits),
                reference.weights().0.map(f64::to_bits),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn training_failures_surface_as_engine_errors() {
        let (space, _) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let err = EngineBuilder::new()
            .train(&space, &[], &C2mnConfig::quick_test(), &mut rng)
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::Train(ism_c2mn::TrainError::EmptyTrainingSet)
        );
    }

    #[test]
    fn initial_store_shard_mismatch_is_an_error() {
        let (space, _) = setup();
        let err = EngineBuilder::new()
            .shards(4)
            .initial_store(ShardedSemanticsStore::new(3))
            .build(model(&space))
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::Store(ism_queries::StoreError::ShardCountMismatch { left: 4, right: 3 })
        );
        // Without an explicit shard count the store's count wins.
        let engine = EngineBuilder::new()
            .initial_store(ShardedSemanticsStore::new(3))
            .build(model(&space))
            .unwrap();
        assert_eq!(engine.num_shards(), 3);
    }

    #[test]
    fn sessions_accumulate_and_seeds_continue() {
        let (space, dataset) = setup();
        let sequences: Vec<Vec<PositioningRecord>> = dataset
            .sequences
            .iter()
            .map(|s| s.positioning().collect())
            .collect();
        let ids: Vec<u64> = dataset.sequences.iter().map(|s| s.object_id).collect();
        let split = sequences.len() / 2;

        // Offline reference over the whole stream in one go.
        let reference =
            BatchAnnotator::new(&model(&space), 1, 9).annotate_into_store(&sequences, &ids, 4);

        // Two sessions, second continuing the first's numbering.
        let engine = EngineBuilder::new()
            .threads(2)
            .shards(4)
            .base_seed(9)
            .queue_capacity(2)
            .build(model(&space))
            .unwrap();
        let mut s1 = engine.ingest();
        s1.push_batch(
            ids[..split]
                .iter()
                .copied()
                .zip(sequences[..split].iter().cloned()),
        );
        assert_eq!(s1.seal(), split as u64);
        assert_eq!(engine.sequences_ingested(), split as u64);
        let mut s2 = engine.ingest();
        s2.push_batch(
            ids[split..]
                .iter()
                .copied()
                .zip(sequences[split..].iter().cloned()),
        );
        drop(s2); // drop seals too
        assert_eq!(engine.sequences_ingested(), sequences.len() as u64);

        for s in 0..4 {
            let want: Vec<_> = reference
                .iter_shard(s)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            let got: Vec<_> = engine
                .store()
                .iter_shard(s)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            assert_eq!(got, want, "shard {s}");
        }
    }

    #[test]
    fn engine_queries_match_free_functions() {
        let (space, dataset) = setup();
        let sequences: Vec<Vec<PositioningRecord>> = dataset
            .sequences
            .iter()
            .map(|s| s.positioning().collect())
            .collect();
        let ids: Vec<u64> = dataset.sequences.iter().map(|s| s.object_id).collect();
        let engine = EngineBuilder::new()
            .threads(2)
            .shards(3)
            .base_seed(5)
            .build(model(&space))
            .unwrap();
        let mut session = engine.ingest();
        session.push_batch(ids.iter().copied().zip(sequences.iter().cloned()));
        session.seal();

        let regions: Vec<RegionId> = space.regions().iter().map(|r| r.id).collect();
        let qt = TimePeriod::new(0.0, 1e9);
        let pool = WorkerPool::new(1);
        assert_eq!(
            engine.tk_prq(&regions, 5, qt),
            ism_queries::tk_prq_sharded(&engine.store(), &regions, 5, qt, &pool)
        );
        assert_eq!(
            engine.tk_frpq(&regions, 5, qt),
            ism_queries::tk_frpq_sharded(&engine.store(), &regions, 5, qt, &pool)
        );
        // Per-object lookup agrees with the store.
        for &id in &ids {
            assert_eq!(engine.semantics_of(id).as_deref(), engine.store().get(id));
        }
    }

    #[test]
    fn into_store_round_trips_through_initial_store() {
        let (space, dataset) = setup();
        let sequences: Vec<Vec<PositioningRecord>> = dataset
            .sequences
            .iter()
            .map(|s| s.positioning().collect())
            .collect();
        let ids: Vec<u64> = dataset.sequences.iter().map(|s| s.object_id).collect();
        let split = 2.min(sequences.len());

        // One engine ingesting everything...
        let whole = EngineBuilder::new()
            .threads(1)
            .shards(3)
            .base_seed(21)
            .build(model(&space))
            .unwrap();
        let mut s = whole.ingest();
        s.push_batch(ids.iter().copied().zip(sequences.iter().cloned()));
        s.seal();

        // ...equals an engine resumed from a handed-over store.
        let first = EngineBuilder::new()
            .threads(1)
            .shards(3)
            .base_seed(21)
            .build(model(&space))
            .unwrap();
        let mut s = first.ingest();
        s.push_batch(
            ids[..split]
                .iter()
                .copied()
                .zip(sequences[..split].iter().cloned()),
        );
        s.seal();
        let ingested = first.sequences_ingested();
        let resumed = EngineBuilder::new()
            .threads(2)
            .base_seed(21)
            .first_sequence_index(ingested)
            .initial_store(first.into_store())
            .build(model(&space))
            .unwrap();
        let mut s = resumed.ingest();
        s.push_batch(
            ids[split..]
                .iter()
                .copied()
                .zip(sequences[split..].iter().cloned()),
        );
        s.seal();

        for shard in 0..3 {
            let want: Vec<_> = whole
                .store()
                .iter_shard(shard)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            let got: Vec<_> = resumed
                .store()
                .iter_shard(shard)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            assert_eq!(got, want, "shard {shard}");
        }
    }

    #[test]
    fn offline_helpers_do_not_touch_the_counter() {
        let (space, dataset) = setup();
        let sequences: Vec<Vec<PositioningRecord>> = dataset
            .sequences
            .iter()
            .map(|s| s.positioning().collect())
            .collect();
        let engine = EngineBuilder::new()
            .threads(2)
            .base_seed(7)
            .build(model(&space))
            .unwrap();
        let labels = engine.label_batch(&sequences);
        let semantics = engine.annotate_batch(&sequences);
        assert_eq!(labels.len(), sequences.len());
        assert_eq!(semantics.len(), sequences.len());
        assert_eq!(engine.sequences_ingested(), 0);
        assert_eq!(engine.num_objects(), 0);
        // They equal the BatchAnnotator reference directly.
        let reference = BatchAnnotator::new(engine.model(), 1, 7);
        assert_eq!(labels, reference.label_batch(&sequences));
        assert_eq!(semantics, reference.annotate_batch(&sequences));
    }

    /// Builds an engine with `n` sequences of the setup dataset sealed in.
    fn ingested_engine<'s>(
        space: &'s ism_indoor::IndoorSpace,
        dataset: &Dataset,
        n: usize,
    ) -> SemanticsEngine<'s> {
        let engine = EngineBuilder::new()
            .threads(2)
            .shards(3)
            .base_seed(5)
            .build(model(space))
            .unwrap();
        let mut session = engine.ingest();
        session.push_batch(
            dataset.sequences[..n]
                .iter()
                .map(|s| (s.object_id, s.positioning().collect())),
        );
        session.seal();
        engine
    }

    #[test]
    fn query_cache_hits_until_a_seal_touches_its_regions() {
        let (space, dataset) = setup();
        let engine = ingested_engine(&space, &dataset, 4);
        let regions: Vec<RegionId> = space.regions().iter().map(|r| r.id).collect();
        let qt = TimePeriod::new(0.0, 1e9);

        let first = engine.tk_prq(&regions, 5, qt);
        assert_eq!(
            engine.cache_stats(),
            CacheStats {
                entries: 1,
                hits: 0,
                misses: 1
            }
        );
        // Same query (even unsorted/duplicated) is a hit with the same
        // answer; a different k is a distinct entry.
        let mut shuffled = regions.clone();
        shuffled.reverse();
        shuffled.push(regions[0]);
        assert_eq!(engine.tk_prq(&shuffled, 5, qt), first);
        assert_eq!(engine.cache_stats().hits, 1);
        let _ = engine.tk_frpq(&regions, 3, qt);
        assert_eq!(
            engine.cache_stats(),
            CacheStats {
                entries: 2,
                hits: 1,
                misses: 2
            }
        );

        // Sealing new data that visits the cached regions evicts both
        // entries; the re-run reflects the new data.
        let mut session = engine.ingest();
        session.push_batch(
            dataset.sequences[4..]
                .iter()
                .map(|s| (s.object_id, s.positioning().collect())),
        );
        session.seal();
        let after = engine.tk_prq(&regions, 5, qt);
        assert_eq!(engine.cache_stats().misses, 3);
        let pool = WorkerPool::new(1);
        assert_eq!(
            after,
            ism_queries::tk_prq_sharded(&engine.store(), &regions, 5, qt, &pool)
        );
    }

    #[test]
    fn standing_queries_track_full_reruns_across_seals() {
        let (space, dataset) = setup();
        let engine = ingested_engine(&space, &dataset, 2);
        let regions: Vec<RegionId> = space.regions().iter().map(|r| r.id).collect();
        let qt = TimePeriod::new(0.0, 1e9);
        let prq = engine.standing_tk_prq(&regions, 4, qt);
        let frpq = engine.standing_tk_frpq(&regions, 4, qt);
        assert_eq!(engine.num_standing(), 2);
        // Registration covers data sealed before it...
        assert_eq!(
            engine.standing_prq_result(prq).unwrap(),
            engine.tk_prq(&regions, 4, qt)
        );
        // ...and each subsequent seal folds forward to the full re-run.
        for chunk in dataset.sequences[2..].chunks(2) {
            let mut session = engine.ingest();
            session.push_batch(
                chunk
                    .iter()
                    .map(|s| (s.object_id, s.positioning().collect())),
            );
            session.seal();
            assert_eq!(
                engine.standing_prq_result(prq).unwrap(),
                engine.tk_prq(&regions, 4, qt)
            );
            assert_eq!(
                engine.standing_frpq_result(frpq).unwrap(),
                engine.tk_frpq(&regions, 4, qt)
            );
        }
        // Kind-mismatched reads are None; cancellation frees the slot
        // without disturbing the other handle.
        assert!(engine.standing_frpq_result(prq).is_none());
        assert!(engine.cancel_standing(prq));
        assert!(!engine.cancel_standing(prq));
        assert!(engine.standing_prq_result(prq).is_none());
        assert_eq!(engine.num_standing(), 1);
        assert!(engine.standing_frpq_result(frpq).is_some());
    }

    #[test]
    fn initial_store_with_pending_entries_is_sealed_at_build() {
        // Regression: the engine only queries sealed data, so a
        // handed-over store with unsealed appends must be sealed by
        // `build`, not silently hide those entries.
        let (space, _) = setup();
        let mut store = ShardedSemanticsStore::new(3);
        store.append(
            7,
            vec![MobilitySemantics {
                region: RegionId(0),
                period: TimePeriod::new(0.0, 50.0),
                event: MobilityEvent::Stay,
            }],
        );
        assert_eq!(store.num_pending(), 1);
        let engine = EngineBuilder::new()
            .initial_store(store)
            .build(model(&space))
            .unwrap();
        assert_eq!(engine.store().num_pending(), 0);
        assert_eq!(engine.num_objects(), 1);
        assert_eq!(
            engine.tk_prq(&[RegionId(0)], 1, TimePeriod::new(0.0, 100.0)),
            vec![(RegionId(0), 1)]
        );
    }

    #[test]
    fn engine_batch_matches_one_shot_queries() {
        let (space, dataset) = setup();
        let engine = ingested_engine(&space, &dataset, dataset.sequences.len());
        let regions: Vec<RegionId> = space.regions().iter().map(|r| r.id).collect();
        let qt = TimePeriod::new(0.0, 1e9);
        let mut batch = QueryBatch::new();
        batch.tk_prq(&regions, 3, qt);
        batch.tk_frpq(&regions, 3, qt);
        let answers = engine.run_batch(&batch);
        assert_eq!(
            answers[0].clone().into_prq().unwrap(),
            engine.tk_prq(&regions, 3, qt)
        );
        assert_eq!(
            answers[1].clone().into_frpq().unwrap(),
            engine.tk_frpq(&regions, 3, qt)
        );
    }
}
