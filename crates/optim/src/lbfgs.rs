//! Limited-memory BFGS with backtracking line search.

use crate::Objective;
use std::collections::VecDeque;

/// Configuration of the L-BFGS solver.
#[derive(Debug, Clone, Copy)]
pub struct LbfgsParams {
    /// Number of correction pairs kept (typical: 5–20).
    pub memory: usize,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Terminate when the gradient ∞-norm falls below this value.
    pub tol_grad: f64,
    /// Terminate when the Chebyshev distance between consecutive iterates
    /// falls below this value (the paper's `δ` criterion).
    pub tol_x: f64,
    /// Armijo sufficient-decrease constant (0 < c₁ < c₂ < 1).
    pub armijo_c1: f64,
    /// Wolfe curvature constant (c₁ < c₂ < 1).
    pub wolfe_c2: f64,
    /// Maximum line-search trials per iteration.
    pub max_line_search: usize,
}

impl Default for LbfgsParams {
    fn default() -> Self {
        LbfgsParams {
            memory: 10,
            max_iters: 100,
            tol_grad: 1e-6,
            tol_x: 1e-9,
            armijo_c1: 1e-4,
            wolfe_c2: 0.9,
            max_line_search: 50,
        }
    }
}

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationReason {
    /// Gradient ∞-norm below `tol_grad`.
    GradientConverged,
    /// Step Chebyshev distance below `tol_x`.
    StepConverged,
    /// `max_iters` reached.
    MaxIterations,
    /// Line search failed to find a decreasing step.
    LineSearchFailed,
}

/// Outcome of an L-BFGS run.
#[derive(Debug, Clone)]
pub struct LbfgsResult {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Gradient ∞-norm at `x`.
    pub grad_inf_norm: f64,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Stop reason.
    pub reason: TerminationReason,
}

impl LbfgsResult {
    /// Whether the run ended in one of the convergence criteria.
    pub fn converged(&self) -> bool {
        matches!(
            self.reason,
            TerminationReason::GradientConverged | TerminationReason::StepConverged
        )
    }
}

#[inline]
fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Minimises `obj` starting from `x0` using L-BFGS.
///
/// The implementation follows Nocedal & Wright, Algorithm 7.4/7.5: two-loop
/// recursion over the stored `(s, y)` pairs with γ-scaling of the initial
/// Hessian, and a backtracking Armijo line search.
pub fn minimize<O: Objective + ?Sized>(
    obj: &mut O,
    x0: &[f64],
    params: &LbfgsParams,
) -> LbfgsResult {
    let n = obj.dim();
    assert_eq!(x0.len(), n, "x0 length must equal objective dimension");

    let mut x = x0.to_vec();
    let mut grad = vec![0.0; n];
    let mut value = obj.eval(&x, &mut grad);

    // History of (s, y, 1/yᵀs).
    let mut history: VecDeque<(Vec<f64>, Vec<f64>, f64)> = VecDeque::new();
    let mut direction = vec![0.0; n];
    let mut x_new = vec![0.0; n];
    let mut grad_new = vec![0.0; n];
    let mut alpha_buf: Vec<f64> = Vec::new();

    let mut reason = TerminationReason::MaxIterations;
    let mut iterations = 0;

    for iter in 0..params.max_iters {
        iterations = iter + 1;
        if inf_norm(&grad) <= params.tol_grad {
            reason = TerminationReason::GradientConverged;
            iterations = iter;
            break;
        }

        // Two-loop recursion: direction = -H·grad.
        direction.copy_from_slice(&grad);
        alpha_buf.clear();
        for (s, y, rho) in history.iter().rev() {
            let alpha = rho * dot(s, &direction);
            for (d, yi) in direction.iter_mut().zip(y) {
                *d -= alpha * yi;
            }
            alpha_buf.push(alpha);
        }
        // Initial Hessian scaling γ = sᵀy / yᵀy of the most recent pair.
        if let Some((s, y, _)) = history.back() {
            let gamma = dot(s, y) / dot(y, y).max(f64::MIN_POSITIVE);
            for d in direction.iter_mut() {
                *d *= gamma;
            }
        }
        for ((s, y, rho), alpha) in history.iter().zip(alpha_buf.iter().rev()) {
            let beta = rho * dot(y, &direction);
            for (d, si) in direction.iter_mut().zip(s) {
                *d += (alpha - beta) * si;
            }
        }
        for d in direction.iter_mut() {
            *d = -*d;
        }

        // Guard: ensure a descent direction; otherwise restart with -grad.
        let mut dir_deriv = dot(&direction, &grad);
        if dir_deriv >= 0.0 {
            history.clear();
            for (d, g) in direction.iter_mut().zip(&grad) {
                *d = -g;
            }
            dir_deriv = dot(&direction, &grad);
        }

        // Weak-Wolfe line search by bracketing + bisection (Lewis–Overton).
        // Guarantees sᵀy > 0 so the curvature pairs keep the inverse-Hessian
        // approximation positive definite.
        let mut step = 1.0;
        let mut lo = 0.0f64;
        let mut hi = f64::INFINITY;
        let mut accepted = false;
        let mut value_new = value;
        for _ in 0..params.max_line_search {
            for ((xn, xi), di) in x_new.iter_mut().zip(&x).zip(&direction) {
                *xn = xi + step * di;
            }
            value_new = obj.eval(&x_new, &mut grad_new);
            if value_new > value + params.armijo_c1 * step * dir_deriv {
                hi = step; // too long: sufficient decrease violated
            } else if dot(&grad_new, &direction) < params.wolfe_c2 * dir_deriv {
                lo = step; // too short: curvature condition violated
            } else {
                accepted = true;
                break;
            }
            step = if hi.is_finite() {
                0.5 * (lo + hi)
            } else {
                2.0 * step
            };
        }
        if !accepted {
            // Fall back to the last Armijo-satisfying point if any progress
            // was made; otherwise give up.
            if value_new <= value + params.armijo_c1 * step * dir_deriv && value_new < value {
                // keep x_new/grad_new as computed
            } else {
                reason = TerminationReason::LineSearchFailed;
                break;
            }
        }

        // Update history with s = x_new - x, y = grad_new - grad.
        let s: Vec<f64> = x_new.iter().zip(&x).map(|(a, b)| a - b).collect();
        let y: Vec<f64> = grad_new.iter().zip(&grad).map(|(a, b)| a - b).collect();
        let ys = dot(&y, &s);
        if ys > 1e-10 * dot(&y, &y).sqrt() * dot(&s, &s).sqrt() {
            if history.len() == params.memory {
                history.pop_front();
            }
            history.push_back((s.clone(), y, 1.0 / ys));
        }

        let step_cheby = inf_norm(&s);
        x.copy_from_slice(&x_new);
        grad.copy_from_slice(&grad_new);
        value = value_new;

        if step_cheby <= params.tol_x {
            reason = TerminationReason::StepConverged;
            break;
        }
    }

    let grad_inf_norm = inf_norm(&grad);
    if grad_inf_norm <= params.tol_grad {
        reason = TerminationReason::GradientConverged;
    }
    LbfgsResult {
        x,
        value,
        grad_inf_norm,
        iterations,
        reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        // f(x) = Σ (x_i - i)²
        let mut obj = (4usize, |x: &[f64], g: &mut [f64]| {
            let mut v = 0.0;
            for i in 0..4 {
                let d = x[i] - i as f64;
                v += d * d;
                g[i] = 2.0 * d;
            }
            v
        });
        let r = minimize(&mut obj, &[10.0, -3.0, 0.0, 7.0], &LbfgsParams::default());
        assert!(r.converged(), "{:?}", r.reason);
        for i in 0..4 {
            assert!((r.x[i] - i as f64).abs() < 1e-5, "x[{i}] = {}", r.x[i]);
        }
    }

    #[test]
    fn rosenbrock() {
        let mut obj = (2usize, |x: &[f64], g: &mut [f64]| {
            let (a, b) = (1.0, 100.0);
            let v = (a - x[0]).powi(2) + b * (x[1] - x[0] * x[0]).powi(2);
            g[0] = -2.0 * (a - x[0]) - 4.0 * b * x[0] * (x[1] - x[0] * x[0]);
            g[1] = 2.0 * b * (x[1] - x[0] * x[0]);
            v
        });
        let params = LbfgsParams {
            max_iters: 500,
            ..Default::default()
        };
        let r = minimize(&mut obj, &[-1.2, 1.0], &params);
        assert!(r.converged(), "{:?} after {} iters", r.reason, r.iterations);
        assert!((r.x[0] - 1.0).abs() < 1e-4);
        assert!((r.x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn already_at_optimum() {
        let mut obj = (1usize, |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * x[0];
            x[0] * x[0]
        });
        let r = minimize(&mut obj, &[0.0], &LbfgsParams::default());
        assert_eq!(r.reason, TerminationReason::GradientConverged);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn respects_max_iters() {
        let mut obj = (1usize, |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * x[0];
            x[0] * x[0]
        });
        let params = LbfgsParams {
            max_iters: 1,
            tol_grad: 0.0,
            tol_x: 0.0,
            ..Default::default()
        };
        let r = minimize(&mut obj, &[100.0], &params);
        assert!(r.iterations <= 1);
        assert!(r.value < 100.0 * 100.0); // made progress
    }

    #[test]
    fn logistic_regression_separable() {
        // Minimise regularised logistic loss on a tiny separable set; the
        // solution must classify all points correctly.
        let data: Vec<([f64; 2], f64)> = vec![
            ([0.0, 0.5], 0.0),
            ([0.2, 1.0], 0.0),
            ([1.0, 2.0], 1.0),
            ([1.5, 3.0], 1.0),
        ];
        let mut obj = (3usize, move |w: &[f64], g: &mut [f64]| {
            let lambda = 0.01;
            let mut v = 0.0;
            g.fill(0.0);
            for (x, y) in &data {
                let z = w[0] + w[1] * x[0] + w[2] * x[1];
                let p = 1.0 / (1.0 + (-z).exp());
                v -= y * p.max(1e-12).ln() + (1.0 - y) * (1.0 - p).max(1e-12).ln();
                let d = p - y;
                g[0] += d;
                g[1] += d * x[0];
                g[2] += d * x[1];
            }
            for i in 0..3 {
                v += 0.5 * lambda * w[i] * w[i];
                g[i] += lambda * w[i];
            }
            v
        });
        let r = minimize(&mut obj, &[0.0; 3], &LbfgsParams::default());
        assert!(r.value < 0.7, "loss {}", r.value);
    }

    #[test]
    fn ill_conditioned_quadratic() {
        // f(x) = x₀² + 1000 x₁²; tests the γ scaling.
        let mut obj = (2usize, |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * x[0];
            g[1] = 2000.0 * x[1];
            x[0] * x[0] + 1000.0 * x[1] * x[1]
        });
        let r = minimize(&mut obj, &[5.0, 5.0], &LbfgsParams::default());
        assert!(r.converged());
        assert!(r.x[0].abs() < 1e-4 && r.x[1].abs() < 1e-4);
    }
}
