//! Planar points and vector arithmetic.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or vector) in the Euclidean plane.
///
/// `Point2` doubles as a 2-D vector: subtraction of two points yields the
/// displacement vector between them, and the usual dot/cross products are
/// available.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Vertical coordinate in metres.
    pub y: f64,
}

impl Point2 {
    /// The origin `(0, 0)`.
    pub const ZERO: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Dot product with another vector.
    #[inline]
    pub fn dot(self, other: Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the 3-D cross product (signed parallelogram area).
    #[inline]
    pub fn cross(self, other: Point2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn distance_sq(self, other: Point2) -> f64 {
        (self - other).norm_sq()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        self + (other - self) * t
    }

    /// Unit vector in the direction of `self`, or `None` for the zero vector.
    #[inline]
    pub fn normalized(self) -> Option<Point2> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Angle of the vector measured from the positive x-axis, in radians.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }
}

impl Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn mul(self, rhs: f64) -> Point2 {
        Point2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn div(self, rhs: f64) -> Point2 {
        Point2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point2 {
    type Output = Point2;
    #[inline]
    fn neg(self) -> Point2 {
        Point2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -1.0);
        assert_eq!(a + b, Point2::new(4.0, 1.0));
        assert_eq!(b - a, Point2::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point2::new(1.5, -0.5));
        assert_eq!(-a, Point2::new(-1.0, -2.0));
    }

    #[test]
    fn products() {
        let a = Point2::new(1.0, 0.0);
        let b = Point2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn distances() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(1.0, 3.0));
    }

    #[test]
    fn normalized_unit_and_zero() {
        let v = Point2::new(3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Point2::ZERO.normalized().is_none());
    }

    #[test]
    fn angle_quadrants() {
        assert!((Point2::new(1.0, 0.0).angle() - 0.0).abs() < 1e-12);
        assert!((Point2::new(0.0, 1.0).angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }
}
