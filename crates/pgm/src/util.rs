//! Numerically stable log-space helpers.

use rand::Rng;

/// Computes `log Σ exp(xᵢ)` without overflow.
///
/// Returns `f64::NEG_INFINITY` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

/// Samples an index from the categorical distribution proportional to
/// `exp(log_weights)`.
///
/// Entries of `f64::NEG_INFINITY` have probability zero. Panics on an empty
/// slice or when every weight is `-∞`.
pub fn sample_from_log_weights<R: Rng + ?Sized>(log_weights: &[f64], rng: &mut R) -> usize {
    assert!(!log_weights.is_empty(), "empty categorical distribution");
    let m = log_weights
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        m.is_finite(),
        "categorical distribution has no finite weight"
    );
    let total: f64 = log_weights.iter().map(|&w| (w - m).exp()).sum();
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in log_weights.iter().enumerate() {
        u -= (w - m).exp();
        if u <= 0.0 {
            return i;
        }
    }
    // Floating-point slack left `u` positive after the full pass. Falling
    // back to `len() - 1` would be wrong when trailing entries are `-∞`
    // (they carry probability zero but would still be returned); fall back
    // to the last *finite*-weight index instead, which exists because `m`
    // is finite.
    log_weights
        .iter()
        .rposition(|w| w.is_finite())
        .expect("a finite weight exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_sum_exp_matches_naive_for_small_values() {
        let xs: [f64; 3] = [0.1, -0.5, 1.2];
        let naive: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_survives_large_values() {
        let xs = [1000.0, 1000.0];
        assert!((log_sum_exp(&xs) - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        let xs = [-1000.0, -1000.0];
        assert!((log_sum_exp(&xs) - (-1000.0 + 2.0f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn sampling_follows_distribution() {
        let lw = [0.0f64.ln(), 1.0f64.ln(), 3.0f64.ln()]; // probs 0, 1/4, 3/4
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[sample_from_log_weights(&lw, &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        let p2 = counts[2] as f64 / 4000.0;
        assert!((p2 - 0.75).abs() < 0.05, "p2 = {p2}");
    }

    #[test]
    fn neg_inf_entries_never_sampled() {
        let lw = [f64::NEG_INFINITY, 0.0, f64::NEG_INFINITY];
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(sample_from_log_weights(&lw, &mut rng), 1);
        }
    }

    #[test]
    fn trailing_neg_inf_is_never_sampled_at_extreme_draws() {
        // Regression: the floating-point fallback returned `len() - 1`
        // even when that entry was -∞. A large dominant weight makes every
        // other finite weight underflow to 0 after the max-shift, so the
        // cumulative pass can exit only via accumulated slack — the exact
        // path the fallback serves.
        let lw = [800.0, -900.0, f64::NEG_INFINITY, f64::NEG_INFINITY];
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let idx = sample_from_log_weights(&lw, &mut rng);
            assert!(lw[idx].is_finite(), "sampled -inf entry {idx}");
        }
    }
}

#[cfg(test)]
mod properties {
    use super::sample_from_log_weights;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// `-∞` entries have probability zero and must never be returned,
        /// including when they occupy the last position (the fallback path).
        #[test]
        fn neg_inf_never_sampled(
            len in 2usize..10,
            finite in 1usize..10,
            spread in 0.0f64..600.0,
            seed in 0u64..1_000_000,
        ) {
            let finite = finite.min(len - 1); // ≥ 1 trailing -∞ entry
            let mut gen = StdRng::seed_from_u64(seed);
            let mut lw: Vec<f64> = (0..finite)
                .map(|_| gen.random_range(-spread - 1.0..spread + 1.0))
                .collect();
            // Shuffle a few -∞ entries in, then force one onto the last
            // slot — the position the old fallback would return.
            for _ in finite..len {
                let at = gen.random_range(0..=lw.len());
                lw.insert(at, f64::NEG_INFINITY);
            }
            lw.push(f64::NEG_INFINITY);
            prop_assert!(lw.iter().any(|w| w.is_finite()));

            let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
            for _ in 0..200 {
                let idx = sample_from_log_weights(&lw, &mut rng);
                prop_assert!(lw[idx].is_finite(),
                    "sampled -inf index {idx} of {lw:?}");
            }
        }
    }
}
