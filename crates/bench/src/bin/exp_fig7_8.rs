//! Figures 7 & 8: region / event accuracy of the C2MN family vs the MCMC
//! sample count M (the paper sweeps 400–1000; values here scale with
//! REPRO_MCMC_M so the default run sweeps M/2 .. 2M).

use ism_bench::{
    evaluate_accuracy, f3, mall_dataset, print_table, train_c2mn_family, Method, Scale,
    C2MN_VARIANTS,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let (space, dataset) = mall_dataset(&scale, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let (train, test) = dataset.split(0.7, &mut rng);
    let base_m = scale.mcmc_m.max(4);
    let sweep = [base_m / 2, (base_m * 3) / 4, base_m, base_m * 2];
    let mut ra_rows = Vec::new();
    let mut ea_rows = Vec::new();
    for m in sweep {
        let mut config = scale.c2mn_config();
        config.mcmc_m = m.max(2);
        let family = train_c2mn_family(&space, &train, &config, &C2MN_VARIANTS, 3, &scale.pool());
        let mut ra_row = vec![format!("{m}")];
        let mut ea_row = vec![format!("{m}")];
        for (name, model) in &family {
            let method = Method::batched(name, model, scale.threads);
            let acc = evaluate_accuracy(&method, &test, 4);
            ra_row.push(f3(acc.region));
            ea_row.push(f3(acc.event));
        }
        ra_rows.push(ra_row);
        ea_rows.push(ea_row);
    }
    let headers: Vec<&str> = std::iter::once("M")
        .chain(C2MN_VARIANTS.iter().map(|(n, _)| *n))
        .collect();
    print_table("Figure 7 — RA vs MCMC instances M", &headers, &ra_rows);
    print_table("Figure 8 — EA vs MCMC instances M", &headers, &ea_rows);
}
