//! Figure 10: training time of the C2MN family vs training-data fraction.

use ism_bench::{f3, mall_dataset, print_table, train_c2mn_family, Scale, C2MN_VARIANTS};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let (space, dataset) = mall_dataset(&scale, 1);
    let mut rows = Vec::new();
    for frac in [0.4, 0.5, 0.6, 0.7, 0.8] {
        let mut rng = StdRng::seed_from_u64(2);
        let (train, _) = dataset.split(frac, &mut rng);
        let mut config = scale.c2mn_config();
        config.delta = 0.0;
        let family = train_c2mn_family(&space, &train, &config, &C2MN_VARIANTS, 3, &scale.pool());
        let mut row = vec![format!("{:.0}%", frac * 100.0)];
        for (_, model) in &family {
            row.push(f3(model.report().train_seconds));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("train%")
        .chain(C2MN_VARIANTS.iter().map(|(n, _)| *n))
        .collect();
    print_table(
        "Figure 10 — training time (s) vs training fraction",
        &headers,
        &rows,
    );
}
