//! Streaming-determinism oracle: an [`IngestSession`]'s sealed store is
//! byte-identical to the offline `BatchAnnotator::annotate_into_store`
//! reference for any thread count {1, 2, 4} and any push chunking
//! (one-by-one, uneven chunks, all-at-once), at several queue capacities.

use ism_c2mn::{BatchAnnotator, C2mn, C2mnConfig, Weights};
use ism_engine::EngineBuilder;
use ism_indoor::{BuildingGenerator, IndoorSpace};
use ism_mobility::{Dataset, PositioningConfig, PositioningRecord, SimulationConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// One shared workload: a small venue and eight p-sequences with duplicate
/// object ids (chunked sub-sequences of one object arriving separately).
fn workload() -> (IndoorSpace, Vec<u64>, Vec<Vec<PositioningRecord>>) {
    let mut rng = StdRng::seed_from_u64(3);
    let space = BuildingGenerator::small_office()
        .generate(&mut rng)
        .unwrap();
    let dataset = Dataset::generate(
        "stream",
        &space,
        SimulationConfig::quick(),
        PositioningConfig::synthetic(8.0, 1.5),
        None,
        8,
        &mut rng,
    );
    let sequences: Vec<Vec<PositioningRecord>> = dataset
        .sequences
        .iter()
        .map(|s| s.positioning().collect())
        .collect();
    // Fold the ids onto a smaller range so several sequences share one.
    let ids: Vec<u64> = (0..sequences.len() as u64).map(|i| i % 3).collect();
    (space, ids, sequences)
}

fn model(space: &IndoorSpace) -> C2mn<'_> {
    C2mn::from_weights(space, C2mnConfig::quick_test(), Weights::uniform(1.0))
}

/// Splits `n` items into chunk lengths drawn from `pattern` (cycled).
fn chunk_lengths(n: usize, pattern: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut left = n;
    let mut i = 0;
    while left > 0 {
        let len = pattern[i % pattern.len()].clamp(1, left);
        out.push(len);
        left -= len;
        i += 1;
    }
    out
}

#[derive(Debug, Clone, Copy)]
struct Case {
    base_seed: u64,
    shards: usize,
    queue_capacity: usize,
    pattern_id: usize,
}

const PATTERNS: [&[usize]; 4] = [
    &[1],          // one by one
    &[3, 1, 2],    // uneven chunks
    &[usize::MAX], // all at once (clamped to the stream length)
    &[2],          // even pairs
];

prop_compose! {
    fn arb_case()(
        base_seed in 0u64..1000,
        shards in 1usize..9,
        queue_capacity in 1usize..12,
        pattern_id in 0usize..PATTERNS.len(),
    ) -> Case {
        Case { base_seed, shards, queue_capacity, pattern_id }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Streaming == offline for random (seed, shards, capacity, chunking).
    #[test]
    fn streaming_equals_offline_reference(case in arb_case()) {
        let (space, ids, sequences) = workload();
        let reference = BatchAnnotator::new(&model(&space), 1, case.base_seed)
            .annotate_into_store(&sequences, &ids, case.shards);
        for threads in THREAD_COUNTS {
            let engine = EngineBuilder::new()
                .threads(threads)
                .shards(case.shards)
                .base_seed(case.base_seed)
                .queue_capacity(case.queue_capacity)
                .build(model(&space))
                .unwrap();
            let mut session = engine.ingest();
            let mut next = 0;
            for len in chunk_lengths(sequences.len(), PATTERNS[case.pattern_id]) {
                session.push_batch(
                    ids[next..next + len]
                        .iter()
                        .copied()
                        .zip(sequences[next..next + len].iter().cloned()),
                );
                next += len;
            }
            let ingested = session.seal();
            prop_assert_eq!(ingested, sequences.len() as u64);
            prop_assert_eq!(engine.store().num_postings(), reference.num_postings());
            for s in 0..case.shards {
                let want: Vec<_> = reference
                    .iter_shard(s)
                    .map(|(id, sem)| (id, sem.to_vec()))
                    .collect();
                let got: Vec<_> = engine
                    .store()
                    .iter_shard(s)
                    .map(|(id, sem)| (id, sem.to_vec()))
                    .collect();
                prop_assert_eq!(
                    got, want,
                    "shard {} diverged at threads={} capacity={} pattern={}",
                    s, threads, case.queue_capacity, case.pattern_id
                );
            }
        }
    }
}

/// Deterministic pinned sweep (no proptest shrinkage in the way): every
/// thread count × canonical push pattern equals the offline reference.
#[test]
fn pinned_thread_and_chunking_sweep() {
    let (space, ids, sequences) = workload();
    let reference =
        BatchAnnotator::new(&model(&space), 1, 42).annotate_into_store(&sequences, &ids, 3);
    for threads in THREAD_COUNTS {
        for pattern in PATTERNS {
            let engine = EngineBuilder::new()
                .threads(threads)
                .shards(3)
                .base_seed(42)
                .queue_capacity(4)
                .build(model(&space))
                .unwrap();
            let mut session = engine.ingest();
            let mut next = 0;
            for len in chunk_lengths(sequences.len(), pattern) {
                for i in next..next + len {
                    session.push(ids[i], sequences[i].clone());
                }
                next += len;
            }
            session.seal();
            for s in 0..3 {
                let want: Vec<_> = reference
                    .iter_shard(s)
                    .map(|(id, sem)| (id, sem.to_vec()))
                    .collect();
                let got: Vec<_> = engine
                    .store()
                    .iter_shard(s)
                    .map(|(id, sem)| (id, sem.to_vec()))
                    .collect();
                assert_eq!(got, want, "threads={threads} shard={s}");
            }
        }
    }
}
