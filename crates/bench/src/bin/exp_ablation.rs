//! Ablation of the paper's optional extensions (beyond the published
//! experiments): the historical-frequency prior on fsm and the time-decay
//! multipliers on fst / fsc.

use ism_bench::{evaluate_accuracy, f3, mall_dataset, print_table, Method, Scale};
use ism_c2mn::{C2mnConfig, Trainer};
use ism_eval::PAPER_LAMBDA;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let (space, dataset) = mall_dataset(&scale, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let (train, test) = dataset.split(0.7, &mut rng);
    let base = scale.c2mn_config();
    let configs: Vec<(&str, C2mnConfig)> = vec![
        ("C2MN (base)", base.clone()),
        (
            "+freq prior",
            C2mnConfig {
                use_frequency_prior: true,
                ..base.clone()
            },
        ),
        (
            "+time-decay fst",
            C2mnConfig {
                time_decay_transition: Some(0.01),
                ..base.clone()
            },
        ),
        (
            "+time-decay fsc",
            C2mnConfig {
                time_decay_consistency: Some(0.01),
                ..base.clone()
            },
        ),
        (
            "+all extensions",
            C2mnConfig {
                use_frequency_prior: true,
                time_decay_transition: Some(0.01),
                time_decay_consistency: Some(0.01),
                ..base.clone()
            },
        ),
    ];
    let pool = scale.pool();
    let mut rows = Vec::new();
    for (name, config) in &configs {
        let model = Trainer::new(&space, config.clone())
            .seed(3)
            .pool(&pool)
            .run(&train)
            .unwrap()
            .model;
        let method = Method::batched("x", &model, scale.threads);
        let acc = evaluate_accuracy(&method, &test, 4);
        rows.push(vec![
            name.to_string(),
            f3(acc.region),
            f3(acc.event),
            f3(acc.combined(PAPER_LAMBDA)),
            f3(acc.perfect),
        ]);
    }
    print_table(
        "Ablation — optional extensions (Eq. 3/4/5 discussions)",
        &["configuration", "RA", "EA", "CA", "PA"],
        &rows,
    );
}
