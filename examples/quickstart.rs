//! Quickstart: generate a venue, simulate labelled mobility data, train a
//! C2MN, and annotate a test sequence with m-semantics.
//!
//! Run with: `cargo run --release --example quickstart`

use indoor_semantics::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. A small synthetic office venue (6 shops around a corridor).
    let venue = BuildingGenerator::small_office()
        .generate(&mut rng)
        .unwrap();
    println!(
        "venue: {} regions, {} partitions, {} doors",
        venue.regions().len(),
        venue.partitions().len(),
        venue.doors().len()
    );

    // 2. Simulate objects and observe them with a noisy positioning system.
    let dataset = Dataset::generate(
        "quickstart",
        &venue,
        SimulationConfig::quick(),
        PositioningConfig::synthetic(8.0, 2.0),
        None,
        10,
        &mut rng,
    );
    let (train, test) = dataset.split(0.7, &mut rng);
    println!(
        "dataset: {} train / {} test sequences, {} records total",
        train.len(),
        test.len(),
        dataset.stats().num_records
    );

    // 3. Train the coupled conditional Markov network (Algorithm 1).
    let config = C2mnConfig::quick_test();
    let model = C2mn::train(&venue, &train, &config, &mut rng).unwrap();
    println!(
        "trained in {:.2}s over {} iterations (converged: {})",
        model.report().train_seconds,
        model.report().iterations,
        model.report().converged
    );
    println!("weights: {:?}", model.weights().0);

    // 4. Annotate a test sequence and measure accuracy.
    let seq = &test[0];
    let records: Vec<_> = seq.positioning().collect();
    let semantics = model.annotate(&records, &mut rng);
    println!("\nm-semantics of object {}:", seq.object_id);
    for ms in &semantics {
        let name = &venue.region(ms.region).name;
        println!(
            "  {:>7.0}s – {:>7.0}s  {:<14} {:?}",
            ms.period.start, ms.period.end, name, ms.event
        );
    }

    let labels = model.label(&records, &mut rng);
    let mut acc = indoor_semantics::eval::AccuracyAccumulator::new();
    acc.add(&labels, seq.truth_labels());
    let m = acc.finish();
    println!(
        "\naccuracy on this sequence: RA={:.3} EA={:.3} CA={:.3} PA={:.3}",
        m.region,
        m.event,
        combined_accuracy(&m, indoor_semantics::eval::PAPER_LAMBDA),
        perfect_accuracy(&m)
    );
}
