//! Property-based tests for the geometry kernel.

use ism_geometry::{circle_rect_intersection_area, Circle, Point2, Rect};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-50.0f64..50.0, -50.0f64..50.0, 0.01f64..40.0, 0.01f64..40.0)
        .prop_map(|(x, y, w, h)| Rect::from_origin_size(x, y, w, h))
}

fn arb_circle() -> impl Strategy<Value = Circle> {
    (-50.0f64..50.0, -50.0f64..50.0, 0.01f64..30.0)
        .prop_map(|(x, y, r)| Circle::new(Point2::new(x, y), r))
}

/// Grid-sampled reference estimate of the intersection area.
fn grid_estimate(circle: Circle, rect: &Rect, n: u32) -> f64 {
    let mut hits = 0u64;
    for i in 0..n {
        for j in 0..n {
            let p = rect.at((i as f64 + 0.5) / n as f64, (j as f64 + 0.5) / n as f64);
            if circle.contains(p) {
                hits += 1;
            }
        }
    }
    rect.area() * hits as f64 / (n as f64 * n as f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn intersection_area_is_bounded(circle in arb_circle(), rect in arb_rect()) {
        let a = circle_rect_intersection_area(circle, &rect);
        prop_assert!(a >= 0.0);
        prop_assert!(a <= circle.area() + 1e-9);
        prop_assert!(a <= rect.area() + 1e-9);
    }

    #[test]
    fn intersection_area_matches_grid_reference(circle in arb_circle(), rect in arb_rect()) {
        let exact = circle_rect_intersection_area(circle, &rect);
        let approx = grid_estimate(circle, &rect, 300);
        // Grid error scales with perimeter * cell size; use a generous bound.
        let cell = (rect.width().max(rect.height())) / 300.0;
        let tol = 4.0 * (rect.width() + rect.height()) * cell + 1e-6;
        prop_assert!((exact - approx).abs() <= tol,
            "exact={exact} approx={approx} tol={tol}");
    }

    #[test]
    fn translation_invariance(circle in arb_circle(), rect in arb_rect(),
                              dx in -20.0f64..20.0, dy in -20.0f64..20.0) {
        let a = circle_rect_intersection_area(circle, &rect);
        let moved_c = Circle::new(circle.center + Point2::new(dx, dy), circle.radius);
        let moved_r = Rect::new(rect.min + Point2::new(dx, dy), rect.max + Point2::new(dx, dy));
        let b = circle_rect_intersection_area(moved_c, &moved_r);
        prop_assert!((a - b).abs() < 1e-6, "a={a} b={b}");
    }

    #[test]
    fn containment_extremes(rect in arb_rect()) {
        // A huge circle centered at the rect center contains the rect.
        let big = Circle::new(rect.center(), 1000.0);
        let a = circle_rect_intersection_area(big, &rect);
        prop_assert!((a - rect.area()).abs() < 1e-6 * rect.area().max(1.0));

        // A tiny circle well inside is fully contained (when it fits).
        let r = 0.2 * rect.width().min(rect.height());
        if r > 1e-6 {
            let small = Circle::new(rect.center(), r);
            let b = circle_rect_intersection_area(small, &rect);
            prop_assert!((b - small.area()).abs() < 1e-9);
        }
    }

    #[test]
    fn rect_distance_zero_iff_contained(rect in arb_rect(),
                                        x in -100.0f64..100.0, y in -100.0f64..100.0) {
        let p = Point2::new(x, y);
        let d = rect.distance_to_point(p);
        prop_assert_eq!(d == 0.0, rect.contains(p));
    }
}
