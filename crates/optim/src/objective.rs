//! The objective-function abstraction.

/// A differentiable objective `f : ℝⁿ → ℝ` to be minimised.
///
/// Implementations may be stateful (e.g. caching samples between
/// evaluations), hence `&mut self`.
pub trait Objective {
    /// Dimensionality `n` of the parameter vector.
    fn dim(&self) -> usize;

    /// Evaluates the objective at `x`, writing the gradient into `grad`
    /// (whose length equals [`Objective::dim`]) and returning the value.
    fn eval(&mut self, x: &[f64], grad: &mut [f64]) -> f64;
}

/// Blanket implementation so closures `(x, grad) -> f64` can be used
/// directly in tests.
impl<F> Objective for (usize, F)
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    fn dim(&self) -> usize {
        self.0
    }

    fn eval(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        (self.1)(x, grad)
    }
}
