//! Synthetic building generators.
//!
//! The paper evaluates on (a) a seven-floor shopping mall in Hangzhou with
//! 202 shop regions and (b) a ten-floor synthetic building produced by the
//! Vita simulator (423 regions, ≈1 400 partitions, ≈2 200 doors, staircases).
//! Neither venue is publicly available, so this module generates comparable
//! buildings: double-loaded corridor floors with shops on both sides,
//! segmented corridors, vertical side corridors, and staircase shafts
//! connecting floors.
//!
//! Layout of one generated floor (`shop_rows = 3`):
//!
//! ```text
//!   +--+----------------------------------+--+
//!   |  |  shop row 2                      |  |
//!   |s |----------- corridor 1 -----------| s|
//!   |i |  shop row 1                      | i|
//!   |d |----------- corridor 0 -----------| d|
//!   |e |  shop row 0                      | e|
//!   +--+----------------------------------+--+
//!  [st]                                  [st]   staircase shafts
//! ```

use crate::{
    Door, DoorId, DoorKind, IndoorError, IndoorSpace, Partition, PartitionId, Region, RegionId,
    RegionKind,
};
use ism_geometry::{Point2, Rect};
use rand::Rng;

/// Parameters of the synthetic building generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of floors (≥ 1).
    pub floors: u16,
    /// Floor width along x, in metres.
    pub width: f64,
    /// Number of shop strips per floor (corridors run between them).
    pub shop_rows: usize,
    /// Shops per strip.
    pub shops_per_row: usize,
    /// Depth (y-extent) of each shop, in metres.
    pub shop_depth: f64,
    /// Width of corridors (horizontal strips and vertical side strips).
    pub corridor_width: f64,
    /// Approximate length of one corridor partition segment.
    pub corridor_segment_len: f64,
    /// Number of consecutive corridor segments grouped into one region.
    pub corridor_segments_per_region: usize,
    /// Probability that a shop merges with its left neighbour into one
    /// two-partition region.
    pub shop_merge_prob: f64,
    /// Number of staircase shafts per floor: 2 (bottom corners) or 4 (all
    /// corners). Ignored for single-floor buildings.
    pub staircases: usize,
    /// Footprint side length of a staircase shaft.
    pub stair_size: f64,
    /// Extra walking distance for traversing one staircase flight.
    pub stair_vertical_cost: f64,
    /// Relative jitter applied to shop widths (0 = uniform widths).
    pub shop_width_jitter: f64,
}

impl GeneratorConfig {
    fn validate(&self) -> Result<(), IndoorError> {
        if self.floors == 0 {
            return Err(IndoorError::InvalidConfig("floors must be ≥ 1".into()));
        }
        if self.shop_rows == 0 || self.shops_per_row == 0 {
            return Err(IndoorError::InvalidConfig(
                "need at least one shop row and one shop per row".into(),
            ));
        }
        if self.shop_rows < 2 {
            return Err(IndoorError::InvalidConfig(
                "need ≥ 2 shop rows so every shop faces a corridor".into(),
            ));
        }
        if self.width <= 2.0 * self.corridor_width + self.shops_per_row as f64 {
            return Err(IndoorError::InvalidConfig("floor width too small".into()));
        }
        if !(2..=4).contains(&self.staircases) || self.staircases == 3 {
            return Err(IndoorError::InvalidConfig(
                "staircases must be 2 or 4".into(),
            ));
        }
        Ok(())
    }
}

/// Generates synthetic multi-floor venues comparable to the paper's.
#[derive(Debug, Clone)]
pub struct BuildingGenerator {
    config: GeneratorConfig,
}

impl BuildingGenerator {
    /// Creates a generator from an explicit configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        BuildingGenerator { config }
    }

    /// Tiny single-floor venue (6 shops) for unit tests and the quickstart.
    pub fn small_office() -> Self {
        BuildingGenerator::new(GeneratorConfig {
            floors: 1,
            width: 46.0,
            shop_rows: 2,
            shops_per_row: 3,
            shop_depth: 8.0,
            corridor_width: 3.0,
            corridor_segment_len: 10.0,
            corridor_segments_per_region: 2,
            shop_merge_prob: 0.0,
            staircases: 2,
            stair_size: 3.0,
            stair_vertical_cost: 8.0,
            shop_width_jitter: 0.0,
        })
    }

    /// Seven-floor mall comparable to the paper's real venue (≈202 shop
    /// regions across 7 floors).
    pub fn mall() -> Self {
        BuildingGenerator::new(GeneratorConfig {
            floors: 7,
            width: 150.0,
            shop_rows: 3,
            shops_per_row: 12,
            shop_depth: 10.0,
            corridor_width: 4.0,
            corridor_segment_len: 12.0,
            corridor_segments_per_region: 3,
            shop_merge_prob: 0.25,
            staircases: 2,
            stair_size: 4.0,
            stair_vertical_cost: 10.0,
            shop_width_jitter: 0.3,
        })
    }

    /// Ten-floor building comparable to the paper's Vita-generated
    /// environment (≈423 regions, ≈1 400 partitions, 4 staircases).
    pub fn vita_like() -> Self {
        BuildingGenerator::new(GeneratorConfig {
            floors: 10,
            width: 200.0,
            shop_rows: 4,
            shops_per_row: 12,
            shop_depth: 10.0,
            corridor_width: 4.0,
            corridor_segment_len: 10.0,
            corridor_segments_per_region: 3,
            shop_merge_prob: 0.15,
            staircases: 4,
            stair_size: 4.0,
            stair_vertical_cost: 10.0,
            shop_width_jitter: 0.3,
        })
    }

    /// Generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates the venue.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<IndoorSpace, IndoorError> {
        self.config.validate()?;
        let mut b = Builder::default();
        let c = &self.config;

        let side = c.corridor_width;
        let central_w = c.width - 2.0 * side;
        let n_corridors = c.shop_rows - 1;
        let floor_h = c.shop_rows as f64 * c.shop_depth + n_corridors as f64 * c.corridor_width;

        // Per-floor stair partitions so floors can be stitched together.
        let mut stairs_by_floor: Vec<Vec<PartitionId>> = Vec::new();

        for floor in 0..c.floors {
            let mut floor_stairs = Vec::new();

            // Vertical side strips spanning the full floor height.
            let left_region = b.new_region(&format!("F{floor}-SideL"), RegionKind::Corridor);
            let left_strip = b.add_partition(
                floor,
                Rect::from_origin_size(0.0, 0.0, side, floor_h),
                left_region,
            );
            let right_region = b.new_region(&format!("F{floor}-SideR"), RegionKind::Corridor);
            let right_strip = b.add_partition(
                floor,
                Rect::from_origin_size(c.width - side, 0.0, side, floor_h),
                right_region,
            );

            // Staircase shafts below (and above, when 4) the side strips.
            if c.floors > 1 {
                let mut shaft_specs = vec![
                    (0.0, -c.stair_size, left_strip, 0.0),
                    (c.width - c.stair_size, -c.stair_size, right_strip, 0.0),
                ];
                if c.staircases == 4 {
                    shaft_specs.push((0.0, floor_h, left_strip, floor_h));
                    shaft_specs.push((c.width - c.stair_size, floor_h, right_strip, floor_h));
                }
                for (sx, sy, strip, door_y) in shaft_specs {
                    let rid =
                        b.new_region(&format!("F{floor}-Stair@{:.0}", sx), RegionKind::Staircase);
                    let shaft = b.add_partition(
                        floor,
                        Rect::from_origin_size(sx, sy, c.stair_size, c.stair_size),
                        rid,
                    );
                    // Door from shaft into the side strip.
                    b.add_door(
                        DoorKind::Horizontal,
                        Point2::new(sx + c.stair_size * 0.5, door_y),
                        floor,
                        shaft,
                        strip,
                        0.0,
                    );
                    floor_stairs.push(shaft);
                }
            }

            // Horizontal corridors, segmented.
            // corridor_segments[k] = list of (x0, x1, pid) for corridor k.
            let mut corridor_segments: Vec<Vec<(f64, f64, PartitionId)>> = Vec::new();
            for k in 0..n_corridors {
                let y0 = (k + 1) as f64 * c.shop_depth + k as f64 * c.corridor_width;
                let n_seg = ((central_w / c.corridor_segment_len).round() as usize).max(1);
                let seg_w = central_w / n_seg as f64;
                let mut segs = Vec::with_capacity(n_seg);
                let mut region = RegionId(u32::MAX);
                for s in 0..n_seg {
                    if s % c.corridor_segments_per_region == 0 {
                        region = b.new_region(
                            &format!("F{floor}-Cor{k}-{}", s / c.corridor_segments_per_region),
                            RegionKind::Corridor,
                        );
                    }
                    let x0 = side + s as f64 * seg_w;
                    let pid = b.add_partition(
                        floor,
                        Rect::from_origin_size(x0, y0, seg_w, c.corridor_width),
                        region,
                    );
                    // Door to the previous segment.
                    if let Some(&(_, px1, prev)) = segs.last() {
                        b.add_door(
                            DoorKind::Horizontal,
                            Point2::new(px1, y0 + c.corridor_width * 0.5),
                            floor,
                            prev,
                            pid,
                            0.0,
                        );
                    }
                    segs.push((x0, x0 + seg_w, pid));
                }
                // Doors to the side strips at both corridor ends.
                let mid_y = y0 + c.corridor_width * 0.5;
                b.add_door(
                    DoorKind::Horizontal,
                    Point2::new(side, mid_y),
                    floor,
                    left_strip,
                    segs[0].2,
                    0.0,
                );
                b.add_door(
                    DoorKind::Horizontal,
                    Point2::new(c.width - side, mid_y),
                    floor,
                    right_strip,
                    segs[segs.len() - 1].2,
                    0.0,
                );
                corridor_segments.push(segs);
            }

            // Shop rows.
            for row in 0..c.shop_rows {
                let y0 = row as f64 * (c.shop_depth + c.corridor_width);
                // Jittered shop widths normalised to fill the central span.
                let weights: Vec<f64> = (0..c.shops_per_row)
                    .map(|_| 1.0 + c.shop_width_jitter * (rng.random::<f64>() * 2.0 - 1.0))
                    .collect();
                let total: f64 = weights.iter().sum();
                // Exact cumulative edges avoid floating-point overshoot past
                // the right side strip.
                let mut edges = Vec::with_capacity(c.shops_per_row + 1);
                let mut acc = 0.0;
                edges.push(side);
                for w in &weights {
                    acc += w;
                    edges.push(side + central_w * (acc / total));
                }
                edges[c.shops_per_row] = side + central_w;

                let mut prev_region: Option<(RegionId, usize)> = None;
                for col in 0..c.shops_per_row {
                    let (x0, w) = (edges[col], edges[col + 1] - edges[col]);
                    // Region: possibly merge with the left neighbour.
                    let region = match prev_region {
                        Some((rid, count))
                            if count < 2 && rng.random::<f64>() < c.shop_merge_prob =>
                        {
                            prev_region = Some((rid, count + 1));
                            rid
                        }
                        _ => {
                            let rid = b
                                .new_region(&format!("F{floor}-Shop{row}-{col}"), RegionKind::Shop);
                            prev_region = Some((rid, 1));
                            rid
                        }
                    };
                    let pid = b.add_partition(
                        floor,
                        Rect::from_origin_size(x0, y0, w, c.shop_depth),
                        region,
                    );
                    // Door to the adjacent corridor: bottom row opens up,
                    // top row opens down, interior rows alternate by column.
                    let (corridor_idx, door_y) = if row == 0 {
                        (0, y0 + c.shop_depth)
                    } else if row == c.shop_rows - 1 || col % 2 == 0 {
                        (row - 1, y0)
                    } else {
                        (row, y0 + c.shop_depth)
                    };
                    let door_x = x0 + w * 0.5;
                    let seg = corridor_segments[corridor_idx]
                        .iter()
                        .find(|&&(sx0, sx1, _)| door_x >= sx0 && door_x <= sx1)
                        .map(|&(_, _, pid)| pid)
                        .expect("shop door x lies within the corridor span");
                    b.add_door(
                        DoorKind::Horizontal,
                        Point2::new(door_x, door_y),
                        floor,
                        pid,
                        seg,
                        0.0,
                    );
                }
            }

            stairs_by_floor.push(floor_stairs);
        }

        // Staircase doors stitching consecutive floors together.
        for floor in 0..c.floors.saturating_sub(1) {
            let below = &stairs_by_floor[floor as usize];
            let above = &stairs_by_floor[floor as usize + 1];
            for (&lo, &hi) in below.iter().zip(above.iter()) {
                let pos = b.partitions[lo.index()].rect.center();
                b.add_door(
                    DoorKind::Staircase,
                    pos,
                    floor,
                    lo,
                    hi,
                    c.stair_vertical_cost,
                );
            }
        }

        IndoorSpace::build(b.partitions, b.doors, b.regions)
    }
}

/// Incremental builder for the raw indoor tables.
#[derive(Default)]
struct Builder {
    partitions: Vec<Partition>,
    doors: Vec<Door>,
    regions: Vec<Region>,
}

impl Builder {
    fn new_region(&mut self, name: &str, kind: RegionKind) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            id,
            name: name.to_string(),
            kind,
            partitions: vec![],
            area: 0.0,
            floor: 0,
        });
        id
    }

    fn add_partition(&mut self, floor: u16, rect: Rect, region: RegionId) -> PartitionId {
        let id = PartitionId(self.partitions.len() as u32);
        self.partitions.push(Partition {
            id,
            floor,
            rect,
            region,
            doors: vec![],
        });
        id
    }

    fn add_door(
        &mut self,
        kind: DoorKind,
        position: Point2,
        floor: u16,
        a: PartitionId,
        b: PartitionId,
        traversal_cost: f64,
    ) -> DoorId {
        let id = DoorId(self.doors.len() as u32);
        self.doors.push(Door {
            id,
            kind,
            position,
            floor,
            partitions: [a, b],
            traversal_cost,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndoorPoint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_office_is_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        let space = BuildingGenerator::small_office()
            .generate(&mut rng)
            .unwrap();
        assert!(space.door_graph().is_connected());
        assert_eq!(space.floor_count(), 1);
        let shops = space
            .regions()
            .iter()
            .filter(|r| r.kind == RegionKind::Shop)
            .count();
        assert_eq!(shops, 6);
    }

    #[test]
    fn mall_has_paper_scale_regions() {
        let mut rng = StdRng::seed_from_u64(2);
        let space = BuildingGenerator::mall().generate(&mut rng).unwrap();
        assert!(space.door_graph().is_connected());
        assert_eq!(space.floor_count(), 7);
        let shops = space
            .regions()
            .iter()
            .filter(|r| r.kind == RegionKind::Shop)
            .count();
        // Paper: 202 shop regions. Merging is stochastic; expect the ballpark.
        assert!((150..=260).contains(&shops), "shops = {shops}");
    }

    #[test]
    fn vita_like_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let space = BuildingGenerator::vita_like().generate(&mut rng).unwrap();
        assert!(space.door_graph().is_connected());
        assert_eq!(space.floor_count(), 10);
        assert!(
            space.partitions().len() >= 800,
            "partitions = {}",
            space.partitions().len()
        );
        assert!(
            space.regions().len() >= 350,
            "regions = {}",
            space.regions().len()
        );
    }

    #[test]
    fn cross_floor_route_uses_staircase() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = GeneratorConfig {
            floors: 2,
            ..BuildingGenerator::small_office().config().clone()
        };
        let space = BuildingGenerator::new(cfg).generate(&mut rng).unwrap();
        assert!(space.door_graph().is_connected());
        // A point on floor 0 and one on floor 1.
        let from = IndoorPoint::new(0, Point2::new(10.0, 4.0));
        let to = IndoorPoint::new(1, Point2::new(10.0, 4.0));
        let route = space.plan_route(from, to).expect("route exists");
        assert!(route.total > 8.0); // at least the stair cost
        let floors: Vec<u16> = route.waypoints.iter().map(|(p, _)| p.floor).collect();
        assert!(floors.contains(&0) && floors.contains(&1));
        let miwd = space.miwd(&from, &to);
        assert!(miwd.is_finite());
    }

    #[test]
    fn every_point_has_a_region() {
        let mut rng = StdRng::seed_from_u64(5);
        let space = BuildingGenerator::small_office()
            .generate(&mut rng)
            .unwrap();
        // Sample a grid over the floor; every in-partition point must map to
        // a region, and regions must tile the covered space.
        for i in 0..40 {
            for j in 0..20 {
                let p = IndoorPoint::new(0, Point2::new(i as f64 + 0.5, j as f64 + 0.3));
                if let Some(pid) = space.partition_at(&p) {
                    let region = space.partitions()[pid.index()].region;
                    assert!(space.region(region).partitions.contains(&pid));
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = BuildingGenerator::mall();
        let a = gen.generate(&mut StdRng::seed_from_u64(9)).unwrap();
        let b = gen.generate(&mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a.partitions().len(), b.partitions().len());
        assert_eq!(a.regions().len(), b.regions().len());
        assert_eq!(a.doors().len(), b.doors().len());
        for (pa, pb) in a.partitions().iter().zip(b.partitions()) {
            assert_eq!(pa.rect, pb.rect);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = BuildingGenerator::small_office().config().clone();
        cfg.floors = 0;
        assert!(BuildingGenerator::new(cfg.clone())
            .generate(&mut StdRng::seed_from_u64(0))
            .is_err());
        cfg.floors = 1;
        cfg.shop_rows = 1;
        assert!(BuildingGenerator::new(cfg)
            .generate(&mut StdRng::seed_from_u64(0))
            .is_err());
    }
}
