//! Fixture-based rule tests: each checked-in snippet under
//! `tests/fixtures/` is linted as if it lived at a scoped workspace path,
//! and the produced findings are compared exactly — rule, line, and
//! nothing else. A fixture change that shifts a line number fails loudly;
//! that is the point.

use ism_analyzer::lint_file;

/// Lints `source` as if it were the workspace file at `path`, returning
/// surviving findings as `(line, rule)` pairs in line order.
fn findings_at(path: &str, source: &str) -> Vec<(u32, &'static str)> {
    lint_file(path, source)
        .findings
        .iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn hash_iter_flags_unordered_sinks_only() {
    let report = findings_at(
        "crates/mobility/src/fixture.rs",
        include_str!("fixtures/hash_iter.rs"),
    );
    // `leaky` (for over the map, pushing) and `leaky_chain`
    // (`m.keys()` feeding push_str); `sorted` (sort-after-collect) and
    // `commutative` (`.sum()`) are clean.
    assert_eq!(report, vec![(7, "hash-iter"), (15, "hash-iter")]);
}

#[test]
fn unseeded_rng_flags_entropy_and_underived_seeds() {
    let report = findings_at(
        "crates/mobility/src/fixture.rs",
        include_str!("fixtures/unseeded_rng.rs"),
    );
    // `thread_rng`, `from_entropy`, and `seed_from_u64(x)` with an
    // arbitrary variable; a `sequence_seed(..)`-derived seed and a
    // constant literal are clean.
    assert_eq!(
        report,
        vec![
            (4, "unseeded-rng"),
            (9, "unseeded-rng"),
            (13, "unseeded-rng")
        ]
    );
}

#[test]
fn wall_clock_flags_kernel_path_clock_reads() {
    let report = findings_at(
        "crates/pgm/src/fixture.rs",
        include_str!("fixtures/wall_clock.rs"),
    );
    assert_eq!(report, vec![(4, "wall-clock"), (9, "wall-clock")]);
}

#[test]
fn wall_clock_does_not_apply_outside_kernel_modules() {
    // The same source at a non-kernel path (and in c2mn's exempted
    // trainer) produces nothing.
    let source = include_str!("fixtures/wall_clock.rs");
    assert_eq!(
        findings_at("crates/mobility/src/fixture.rs", source),
        vec![]
    );
    assert_eq!(findings_at("crates/c2mn/src/trainer.rs", source), vec![]);
}

#[test]
fn lib_panic_flags_aborts_outside_tests_and_assertions() {
    let report = findings_at(
        "crates/codec/src/fixture.rs",
        include_str!("fixtures/lib_panic.rs"),
    );
    // unwrap, expect, indexing, panic!, todo!; the assert! interior and
    // the #[cfg(test)] module are exempt.
    assert_eq!(
        report,
        vec![
            (4, "lib-panic"),
            (8, "lib-panic"),
            (12, "lib-panic"),
            (16, "lib-panic"),
            (20, "lib-panic"),
        ]
    );
}

#[test]
fn lib_panic_only_applies_to_contract_crates() {
    let source = include_str!("fixtures/lib_panic.rs");
    assert_eq!(
        findings_at("crates/mobility/src/fixture.rs", source),
        vec![]
    );
}

#[test]
fn undocumented_unsafe_requires_safety_comments() {
    let report = findings_at(
        "crates/mobility/src/fixture.rs",
        include_str!("fixtures/undocumented_unsafe.rs"),
    );
    // The bare `unsafe { *p }` and the bare `pub unsafe fn`; both
    // documented variants are clean.
    assert_eq!(
        report,
        vec![(4, "undocumented-unsafe"), (15, "undocumented-unsafe")]
    );
}

#[test]
fn pragmas_suppress_with_reasons_and_misuse_is_reported() {
    let report = lint_file(
        "crates/codec/src/fixture.rs",
        include_str!("fixtures/pragmas.rs"),
    );

    // Both valid pragmas suppressed their finding and carry the reason.
    let suppressed: Vec<(u32, &str, &str)> = report
        .suppressed
        .iter()
        .map(|(f, reason)| (f.line, f.rule, reason.as_str()))
        .collect();
    assert_eq!(
        suppressed,
        vec![
            (5, "lib-panic", "fixture: the caller checks emptiness first"),
            (9, "lib-panic", "fixture: infallible by construction"),
        ]
    );

    // The stale pragma, the unknown rule, and the reasonless pragma are
    // findings themselves — and a reasonless pragma suppresses nothing,
    // so the indexing under it still fires.
    let findings: Vec<(u32, &str)> = report.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(
        findings,
        vec![
            (12, "bad-pragma"),
            (17, "bad-pragma"),
            (22, "bad-pragma"),
            (24, "lib-panic"),
        ]
    );
}
