//! Discrete hidden Markov models with counting estimation and Viterbi.
//!
//! The paper's HMM+DC baseline estimates an HMM whose hidden states are
//! semantic regions and whose observations are discretised grid cells,
//! "via frequency counting", decoding with Viterbi. This module provides
//! exactly that: additive-smoothed maximum-likelihood estimation from
//! labelled (state, observation) sequences and log-space Viterbi decoding.

/// Configuration for HMM estimation.
#[derive(Debug, Clone, Copy)]
pub struct HmmConfig {
    /// Number of hidden states.
    pub num_states: usize,
    /// Number of observation symbols.
    pub num_symbols: usize,
    /// Additive (Laplace) smoothing constant applied to every count.
    pub smoothing: f64,
}

/// A discrete HMM in log-space.
#[derive(Debug, Clone)]
pub struct Hmm {
    num_states: usize,
    num_symbols: usize,
    /// log P(state at t=0), length `num_states`.
    log_initial: Vec<f64>,
    /// log P(s' | s), row-major `num_states × num_states`.
    log_transition: Vec<f64>,
    /// log P(o | s), row-major `num_states × num_symbols`.
    log_emission: Vec<f64>,
}

impl Hmm {
    /// Estimates an HMM from labelled sequences by frequency counting with
    /// additive smoothing.
    ///
    /// Each training item is a `(states, observations)` pair of equal
    /// length; indices must be below the configured alphabet sizes.
    pub fn fit(config: &HmmConfig, data: &[(Vec<usize>, Vec<usize>)]) -> Hmm {
        let ns = config.num_states;
        let no = config.num_symbols;
        let k = config.smoothing.max(1e-12);
        let mut init = vec![k; ns];
        let mut trans = vec![k; ns * ns];
        let mut emit = vec![k; ns * no];
        for (states, obs) in data {
            assert_eq!(states.len(), obs.len(), "state/observation length mismatch");
            if let Some(&s0) = states.first() {
                init[s0] += 1.0;
            }
            for w in states.windows(2) {
                trans[w[0] * ns + w[1]] += 1.0;
            }
            for (&s, &o) in states.iter().zip(obs) {
                emit[s * no + o] += 1.0;
            }
        }
        let normalize_rows = |m: &mut [f64], cols: usize| {
            for row in m.chunks_mut(cols) {
                let total: f64 = row.iter().sum();
                for v in row.iter_mut() {
                    *v = (*v / total).ln();
                }
            }
        };
        normalize_rows(&mut init, ns);
        normalize_rows(&mut trans, ns);
        normalize_rows(&mut emit, no);
        Hmm {
            num_states: ns,
            num_symbols: no,
            log_initial: init,
            log_transition: trans,
            log_emission: emit,
        }
    }

    /// Number of hidden states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of observation symbols.
    pub fn num_symbols(&self) -> usize {
        self.num_symbols
    }

    /// log P(o | s).
    #[inline]
    pub fn log_emission(&self, state: usize, symbol: usize) -> f64 {
        self.log_emission[state * self.num_symbols + symbol]
    }

    /// log P(s' | s).
    #[inline]
    pub fn log_transition(&self, from: usize, to: usize) -> f64 {
        self.log_transition[from * self.num_states + to]
    }

    /// Most likely hidden state sequence for `observations` (Viterbi).
    ///
    /// Returns an empty vector for an empty input.
    pub fn viterbi(&self, observations: &[usize]) -> Vec<usize> {
        let n = observations.len();
        if n == 0 {
            return Vec::new();
        }
        let ns = self.num_states;
        let mut delta: Vec<f64> = (0..ns)
            .map(|s| self.log_initial[s] + self.log_emission(s, observations[0]))
            .collect();
        let mut psi = vec![0u32; n * ns];
        let mut next = vec![0.0f64; ns];
        for (t, &obs) in observations.iter().enumerate().skip(1) {
            for s in 0..ns {
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0u32;
                for (p, &dp) in delta.iter().enumerate() {
                    let v = dp + self.log_transition[p * ns + s];
                    if v > best {
                        best = v;
                        arg = p as u32;
                    }
                }
                next[s] = best + self.log_emission(s, obs);
                psi[t * ns + s] = arg;
            }
            std::mem::swap(&mut delta, &mut next);
        }
        let mut state = delta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut path = vec![0usize; n];
        path[n - 1] = state;
        for t in (1..n).rev() {
            state = psi[t * ns + state] as usize;
            path[t - 1] = state;
        }
        path
    }

    /// Log-likelihood of an observation sequence (forward algorithm).
    pub fn log_likelihood(&self, observations: &[usize]) -> f64 {
        let n = observations.len();
        if n == 0 {
            return 0.0;
        }
        let ns = self.num_states;
        let mut alpha: Vec<f64> = (0..ns)
            .map(|s| self.log_initial[s] + self.log_emission(s, observations[0]))
            .collect();
        let mut scratch = vec![0.0f64; ns];
        let mut lse_buf = vec![0.0f64; ns];
        for &obs in &observations[1..] {
            for (s, sc) in scratch.iter_mut().enumerate() {
                for (p, lb) in lse_buf.iter_mut().enumerate() {
                    *lb = alpha[p] + self.log_transition[p * ns + s];
                }
                *sc = crate::util::log_sum_exp(&lse_buf) + self.log_emission(s, obs);
            }
            std::mem::swap(&mut alpha, &mut scratch);
        }
        crate::util::log_sum_exp(&alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two states emitting mostly their own symbol; strong self-transitions.
    fn toy_data() -> Vec<(Vec<usize>, Vec<usize>)> {
        vec![
            (vec![0, 0, 0, 1, 1, 1], vec![0, 0, 0, 1, 1, 1]),
            (vec![0, 0, 1, 1], vec![0, 0, 1, 1]),
            (vec![1, 1, 0, 0], vec![1, 1, 0, 0]),
        ]
    }

    fn toy_hmm() -> Hmm {
        Hmm::fit(
            &HmmConfig {
                num_states: 2,
                num_symbols: 2,
                smoothing: 0.1,
            },
            &toy_data(),
        )
    }

    #[test]
    fn probabilities_normalise() {
        let h = toy_hmm();
        for s in 0..2 {
            let trans_sum: f64 = (0..2).map(|t| h.log_transition(s, t).exp()).sum();
            assert!((trans_sum - 1.0).abs() < 1e-9);
            let emit_sum: f64 = (0..2).map(|o| h.log_emission(s, o).exp()).sum();
            assert!((emit_sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn viterbi_recovers_clean_sequence() {
        let h = toy_hmm();
        assert_eq!(h.viterbi(&[0, 0, 0, 1, 1]), vec![0, 0, 0, 1, 1]);
        assert_eq!(h.viterbi(&[1, 1, 0]), vec![1, 1, 0]);
    }

    #[test]
    fn viterbi_smooths_isolated_noise() {
        // With strong self-transitions a single flipped observation in a
        // long run should often keep the underlying state.
        let data = vec![(vec![0; 20], vec![0; 20]), (vec![1; 20], vec![1; 20])];
        let mut with_noise = data.clone();
        with_noise.push((vec![0; 5], vec![0, 0, 1, 0, 0]));
        let h = Hmm::fit(
            &HmmConfig {
                num_states: 2,
                num_symbols: 2,
                smoothing: 0.5,
            },
            &with_noise,
        );
        let path = h.viterbi(&[0, 0, 1, 0, 0]);
        assert_eq!(path, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn empty_sequence() {
        let h = toy_hmm();
        assert!(h.viterbi(&[]).is_empty());
        assert_eq!(h.log_likelihood(&[]), 0.0);
    }

    #[test]
    fn likelihood_prefers_plausible_sequences() {
        let h = toy_hmm();
        let plausible = h.log_likelihood(&[0, 0, 0, 0]);
        let alternating = h.log_likelihood(&[0, 1, 0, 1]);
        assert!(plausible > alternating);
    }

    #[test]
    fn unseen_symbols_survive_smoothing() {
        let h = Hmm::fit(
            &HmmConfig {
                num_states: 2,
                num_symbols: 3,
                smoothing: 0.1,
            },
            &[(vec![0, 1], vec![0, 1])],
        );
        // Symbol 2 never observed; Viterbi must still return a valid path.
        let path = h.viterbi(&[2, 2]);
        assert_eq!(path.len(), 2);
        assert!(path.iter().all(|&s| s < 2));
    }
}
