//! Artifact headers and checksummed frames.
//!
//! Layout of every persisted file:
//!
//! ```text
//! +-------+---------+------+----------+   +-----+-----+---------+
//! | magic | version | kind | reserved |   | len | crc | payload | ...
//! |  4 B  |  u16 LE | u8   |   u8     |   | u32 | u32 |  len B  |
//! +-------+---------+------+----------+   +-----+-----+---------+
//!          header (8 bytes)                frame (repeated)
//! ```
//!
//! Snapshots and checkpoints carry exactly one frame; the engine's seal log
//! appends one frame per seal. The length prefix is validated against the
//! bytes actually present and the CRC-32 against the payload, so a torn
//! tail (crash mid-append) is detected at the exact frame boundary and can
//! be discarded without losing the frames before it.

use crate::error::CodecError;
use crate::primitives::{crc32, write_u16, write_u32};

/// File magic: every `ism-codec` artifact starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"ISMB";

/// Current format version. Readers accept files with `version <=
/// FORMAT_VERSION`; bumping this is how future layout changes stay
/// detectable.
pub const FORMAT_VERSION: u16 = 1;

/// Size of the artifact header in bytes.
pub const HEADER_LEN: usize = 8;

/// Per-frame overhead in bytes (`u32` length + `u32` CRC-32).
pub const FRAME_OVERHEAD: usize = 8;

/// What a persisted file contains. Recorded in the header so opening the
/// wrong file fails with [`CodecError::WrongKind`] instead of a confusing
/// payload error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ArtifactKind {
    /// Full engine snapshot: seed + ingest cursor + model + sealed store.
    EngineSnapshot = 1,
    /// Trainer checkpoint: weights + configured chains + iteration index.
    TrainCheckpoint = 2,
    /// Engine seal log: one frame per seal since the last snapshot.
    SealLog = 3,
}

impl ArtifactKind {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ArtifactKind::EngineSnapshot),
            2 => Some(ArtifactKind::TrainCheckpoint),
            3 => Some(ArtifactKind::SealLog),
            _ => None,
        }
    }
}

/// Appends the 8-byte artifact header for `kind`.
pub fn write_header(out: &mut Vec<u8>, kind: ArtifactKind) {
    out.extend_from_slice(&MAGIC);
    write_u16(out, FORMAT_VERSION);
    out.push(kind as u8);
    out.push(0); // reserved
}

/// Validates the header at the start of `buf` and returns the offset of
/// the first frame ([`HEADER_LEN`]).
// analyzer: allow(lib-panic) every byte access is guarded by the HEADER_LEN length check at the top
pub fn read_header(buf: &[u8], expected: ArtifactKind) -> Result<usize, CodecError> {
    if buf.len() < HEADER_LEN {
        return Err(CodecError::Truncated {
            needed: HEADER_LEN,
            available: buf.len(),
        });
    }
    if buf[..4] != MAGIC {
        return Err(CodecError::BadMagic {
            found: [buf[0], buf[1], buf[2], buf[3]],
        });
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version > FORMAT_VERSION || version == 0 {
        return Err(CodecError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    if buf[7] != 0 {
        // The reserved byte is zero in every version written so far; a
        // nonzero value is corruption, not a future format.
        return Err(CodecError::InvalidValue {
            what: "nonzero reserved header byte",
        });
    }
    match ArtifactKind::from_u8(buf[6]) {
        Some(kind) if kind == expected => Ok(HEADER_LEN),
        _ => Err(CodecError::WrongKind {
            expected: expected as u8,
            found: buf[6],
        }),
    }
}

/// Appends one checksummed frame (`u32` length, `u32` CRC-32, payload).
///
/// # Panics
///
/// If `payload` exceeds `u32::MAX` bytes — single frames of 4 GiB are far
/// outside this system's artifact sizes, and encoding (unlike decoding) is
/// allowed to assert on programmer error.
// analyzer: allow(lib-panic) encoding asserts on programmer error by contract (see # Panics above)
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("frame payload exceeds u32::MAX bytes");
    write_u32(out, len);
    write_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

/// Iterates the frames of an artifact body, yielding each validated
/// payload. The first torn or corrupt frame yields one `Err` and ends the
/// iteration; [`FrameIter::good_end`] then reports the byte offset just
/// past the last intact frame, which is exactly where log recovery
/// truncates.
#[derive(Debug)]
pub struct FrameIter<'a> {
    buf: &'a [u8],
    pos: usize,
    index: usize,
    failed: bool,
}

impl<'a> FrameIter<'a> {
    /// Starts iterating frames at `start` (normally the offset returned by
    /// [`read_header`]).
    pub fn new(buf: &'a [u8], start: usize) -> Self {
        FrameIter {
            buf,
            pos: start.min(buf.len()),
            index: 0,
            failed: false,
        }
    }

    /// Byte offset just past the last successfully validated frame.
    pub fn good_end(&self) -> usize {
        self.pos
    }

    /// Number of frames successfully yielded so far.
    pub fn frames_read(&self) -> usize {
        self.index
    }

    // analyzer: allow(lib-panic) all indices are guarded by the FRAME_OVERHEAD and len checks above each access
    fn read_frame(&mut self) -> Result<&'a [u8], CodecError> {
        let remaining = self.buf.len() - self.pos;
        if remaining < FRAME_OVERHEAD {
            return Err(CodecError::Truncated {
                needed: FRAME_OVERHEAD,
                available: remaining,
            });
        }
        let b = &self.buf[self.pos..];
        let len = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
        let crc = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);
        if len > remaining - FRAME_OVERHEAD {
            return Err(CodecError::Truncated {
                needed: len,
                available: remaining - FRAME_OVERHEAD,
            });
        }
        let payload = &b[FRAME_OVERHEAD..FRAME_OVERHEAD + len];
        if crc32(payload) != crc {
            return Err(CodecError::BadChecksum { frame: self.index });
        }
        self.pos += FRAME_OVERHEAD + len;
        self.index += 1;
        Ok(payload)
    }
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = Result<&'a [u8], CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.pos >= self.buf.len() {
            return None;
        }
        match self.read_frame() {
            Ok(payload) => Some(Ok(payload)),
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Encodes a complete single-frame artifact: header for `kind` plus one
/// checksummed frame around `payload`.
pub fn encode_artifact(kind: ArtifactKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + FRAME_OVERHEAD + payload.len());
    write_header(&mut out, kind);
    append_frame(&mut out, payload);
    out
}

/// Decodes a single-frame artifact produced by [`encode_artifact`],
/// validating header, checksum, and that exactly one frame is present.
pub fn decode_artifact(bytes: &[u8], kind: ArtifactKind) -> Result<&[u8], CodecError> {
    let start = read_header(bytes, kind)?;
    let mut frames = FrameIter::new(bytes, start);
    let payload = frames.next().ok_or(CodecError::Truncated {
        needed: FRAME_OVERHEAD,
        available: 0,
    })??;
    match frames.next() {
        None => Ok(payload),
        Some(Ok(_)) | Some(Err(_)) => Err(CodecError::TrailingBytes {
            trailing: bytes.len() - (start + FRAME_OVERHEAD + payload.len()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_frame_artifact_round_trips() {
        let payload = b"semantics".as_slice();
        let bytes = encode_artifact(ArtifactKind::TrainCheckpoint, payload);
        assert_eq!(
            decode_artifact(&bytes, ArtifactKind::TrainCheckpoint).unwrap(),
            payload
        );
    }

    #[test]
    fn header_errors_are_typed() {
        let good = encode_artifact(ArtifactKind::EngineSnapshot, b"x");
        let mut bad_magic = good.clone();
        bad_magic[0] = b'J';
        assert!(matches!(
            decode_artifact(&bad_magic, ArtifactKind::EngineSnapshot),
            Err(CodecError::BadMagic { .. })
        ));
        let mut future = good.clone();
        future[4] = 0xFF;
        assert!(matches!(
            decode_artifact(&future, ArtifactKind::EngineSnapshot),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            decode_artifact(&good, ArtifactKind::SealLog),
            Err(CodecError::WrongKind { .. })
        ));
        assert!(matches!(
            decode_artifact(&good[..5], ArtifactKind::EngineSnapshot),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn frame_iter_stops_at_torn_tail() {
        let mut log = Vec::new();
        write_header(&mut log, ArtifactKind::SealLog);
        append_frame(&mut log, b"seal-1");
        append_frame(&mut log, b"seal-2");
        let good_len = log.len();
        // Simulate a crash mid-append: half a frame of trailing bytes.
        append_frame(&mut log, b"seal-3-torn");
        log.truncate(good_len + 5);

        let mut frames = FrameIter::new(&log, HEADER_LEN);
        assert_eq!(frames.next().unwrap().unwrap(), b"seal-1");
        assert_eq!(frames.next().unwrap().unwrap(), b"seal-2");
        assert!(frames.next().unwrap().is_err());
        assert!(frames.next().is_none(), "iteration ends after first error");
        assert_eq!(frames.good_end(), good_len);
        assert_eq!(frames.frames_read(), 2);
    }

    #[test]
    fn frame_iter_detects_bit_flips() {
        let mut log = Vec::new();
        write_header(&mut log, ArtifactKind::SealLog);
        append_frame(&mut log, b"payload-bytes");
        let flip_at = HEADER_LEN + FRAME_OVERHEAD + 3;
        log[flip_at] ^= 0x10;
        let mut frames = FrameIter::new(&log, HEADER_LEN);
        assert!(matches!(
            frames.next().unwrap(),
            Err(CodecError::BadChecksum { frame: 0 })
        ));
    }

    #[test]
    fn oversized_declared_length_is_truncation_not_allocation() {
        let mut log = Vec::new();
        write_header(&mut log, ArtifactKind::SealLog);
        // Declared length u32::MAX with a 4-byte body.
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&0u32.to_le_bytes());
        log.extend_from_slice(&[1, 2, 3, 4]);
        let mut frames = FrameIter::new(&log, HEADER_LEN);
        assert!(matches!(
            frames.next().unwrap(),
            Err(CodecError::Truncated { .. })
        ));
    }
}
