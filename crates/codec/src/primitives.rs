//! Encoding primitives: little-endian fixed-width writes, LEB128 varints,
//! ZigZag, the order-preserving f64 mapping, and CRC-32.
//!
//! These mirror the conventions proven by the compressed posting codec in
//! `ism-queries` (`crates/queries/src/codec.rs`); the reading side lives in
//! [`crate::Reader`], which bounds-checks every access.

/// Appends `v` little-endian.
#[inline]
pub fn write_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` little-endian.
#[inline]
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` little-endian.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends the raw IEEE-754 bit pattern of `x` little-endian. Bit-exact for
/// every value including NaNs and signed zeros.
#[inline]
pub fn write_f64_bits(out: &mut Vec<u8>, x: f64) {
    write_u64(out, x.to_bits());
}

/// Appends `v` as an LEB128 varint (7 payload bits per byte, little endian,
/// high bit = continuation). At most 10 bytes.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// ZigZag-maps a signed value to an unsigned varint payload: small
/// magnitudes of either sign stay small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Maps an f64 to a u64 whose unsigned order matches the f64 total order
/// (`total_cmp`): negative values are bit-complemented, non-negatives get
/// the sign bit flipped. Round-trips every bit via [`from_ordered_bits`],
/// and makes sorted timestamp runs delta-encode as small integers.
#[inline]
pub fn ordered_bits(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`ordered_bits`].
#[inline]
pub fn from_ordered_bits(b: u64) -> f64 {
    if b >> 63 == 1 {
        f64::from_bits(b & !(1 << 63))
    } else {
        f64::from_bits(!b)
    }
}

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) lookup table, built at
/// compile time.
// analyzer: allow(lib-panic) const-evaluated at compile time; an out-of-bounds index is a build error, not a runtime panic
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`. Used as the per-frame checksum; it detects the
/// torn writes and bit flips the corruption fuzz suite throws at it.
// analyzer: allow(lib-panic) the table index is masked to 0..256 and CRC_TABLE has 256 entries
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the ASCII string "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"ISMB"), crc32(b"ISMB"));
        assert_ne!(crc32(b"ISMB"), crc32(b"ISMA"));
    }

    #[test]
    fn fixed_width_writes_are_little_endian() {
        let mut out = Vec::new();
        write_u16(&mut out, 0x1234);
        write_u32(&mut out, 0x5678_9ABC);
        write_u64(&mut out, 0x0102_0304_0506_0708);
        assert_eq!(
            out,
            [0x34, 0x12, 0xBC, 0x9A, 0x78, 0x56, 0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]
        );
    }
}
