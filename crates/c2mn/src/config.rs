//! Hyper-parameters of the C2MN pipeline.

use crate::ModelStructure;
use ism_cluster::StDbscanParams;
use serde::{Deserialize, Serialize};

/// Which target variable is configured first in Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FirstConfigured {
    /// Configure the event chain by ST-DBSCAN (the paper's default; only
    /// two labels, so the initialisation is cheap and reliable).
    Events,
    /// Configure the region chain by nearest-neighbour matching — the
    /// paper's C2MN@R variant (Fig. 11).
    Regions,
}

/// All tunables of the C2MN model, learning algorithm and decoder.
///
/// Field defaults follow §V-B1 (real-data experiments); see
/// [`C2mnConfig::paper_synthetic`] for the §V-C setting and
/// [`C2mnConfig::quick_test`] for a fast profile used in unit tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct C2mnConfig {
    /// Active clique templates (structural variant).
    pub structure: ModelStructure,
    /// Uncertainty-region radius `v` in metres (feature `fsm`).
    pub uncertainty_radius: f64,
    /// `α` of `fem`: stay affinity of border points (0 < β < α < 1).
    pub alpha: f64,
    /// `β` of `fem`: pass affinity of border points.
    pub beta: f64,
    /// `γ_st` of `fst`: scale of the expected-MIWD transition cost.
    pub gamma_st: f64,
    /// `γ_ec` of `fec`: scale of the observed moving speed.
    pub gamma_ec: f64,
    /// Normalising speed (m/s) for the segment-speed component of `fes`.
    pub speed_norm: f64,
    /// Gaussian prior variance σ² of the pseudo-likelihood.
    pub sigma_sq: f64,
    /// Convergence threshold δ on the Chebyshev distance of weights.
    pub delta: f64,
    /// Maximum outer iterations of Algorithm 1.
    pub max_iter: usize,
    /// Number of MCMC samples `M` per step.
    pub mcmc_m: usize,
    /// Gibbs burn-in sweeps before collecting samples.
    pub mcmc_burn_in: usize,
    /// Inner L-BFGS iterations per outer step.
    pub inner_lbfgs_iters: usize,
    /// Trust region per outer step: the weight update is clamped to
    /// `‖w − ŵ‖∞ ≤ step_cap`, keeping the sampled surrogate (Eq. 8) inside
    /// the region where its importance weights are reliable.
    pub step_cap: f64,
    /// ST-DBSCAN parameters for `fem` and the initial event configuration.
    pub dbscan: StDbscanParams,
    /// Which chain Algorithm 1 configures first.
    pub first_configured: FirstConfigured,
    /// Maximum number of candidate regions per record.
    pub max_candidates: usize,
    /// Decoder: number of annealed Gibbs sweeps.
    pub anneal_sweeps: usize,
    /// Decoder: initial annealing temperature.
    pub anneal_t_start: f64,
    /// Decoder: final annealing temperature.
    pub anneal_t_end: f64,
    /// Optional extension: multiply `fsm` by the normalised historical
    /// region frequency (discussed after Eq. 3).
    pub use_frequency_prior: bool,
    /// Optional extension: time-decay multiplier `e^{−γ′ Δt}` on `fst`.
    pub time_decay_transition: Option<f64>,
    /// Optional extension: time-decay multiplier `e^{−γ″ Δt}` on `fsc`.
    pub time_decay_consistency: Option<f64>,
}

impl C2mnConfig {
    /// The paper's real-data setting (§V-B1): `v = 15 m`, `α = 0.8`,
    /// `β = 0.6`, `γ_st = 0.1`, `γ_ec = 0.2`, `σ² = 0.5`, `δ = 1e−3`,
    /// `max_iter = 90`, `M = 800`, ST-DBSCAN (8 m, 60 s, 4).
    pub fn paper_real() -> Self {
        C2mnConfig {
            structure: ModelStructure::full(),
            uncertainty_radius: 15.0,
            alpha: 0.8,
            beta: 0.6,
            gamma_st: 0.1,
            gamma_ec: 0.2,
            speed_norm: 2.0,
            sigma_sq: 0.5,
            delta: 1e-3,
            max_iter: 90,
            mcmc_m: 800,
            mcmc_burn_in: 2,
            inner_lbfgs_iters: 8,
            step_cap: 0.5,
            dbscan: StDbscanParams {
                eps_s: 8.0,
                eps_t: 60.0,
                min_pts: 4,
            },
            first_configured: FirstConfigured::Events,
            max_candidates: 12,
            anneal_sweeps: 12,
            anneal_t_start: 2.0,
            anneal_t_end: 0.2,
            use_frequency_prior: false,
            time_decay_transition: None,
            time_decay_consistency: None,
        }
    }

    /// The paper's synthetic-data setting (§V-C): `σ² = 0.2`,
    /// `max_iter = 50`, `M = 500`, `v = 10 m`.
    pub fn paper_synthetic() -> Self {
        C2mnConfig {
            uncertainty_radius: 10.0,
            sigma_sq: 0.2,
            max_iter: 50,
            mcmc_m: 500,
            ..Self::paper_real()
        }
    }

    /// A scaled-down profile that trains in seconds — used by unit tests,
    /// examples and the default experiment scale.
    pub fn quick_test() -> Self {
        C2mnConfig {
            uncertainty_radius: 6.0,
            max_iter: 6,
            mcmc_m: 12,
            mcmc_burn_in: 1,
            inner_lbfgs_iters: 5,
            dbscan: StDbscanParams {
                eps_s: 5.0,
                eps_t: 45.0,
                min_pts: 3,
            },
            max_candidates: 8,
            anneal_sweeps: 8,
            ..Self::paper_real()
        }
    }

    /// Returns a copy with a different structural variant.
    pub fn with_structure(mut self, structure: ModelStructure) -> Self {
        self.structure = structure;
        self
    }
}

impl Default for C2mnConfig {
    fn default() -> Self {
        Self::paper_real()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let real = C2mnConfig::paper_real();
        assert_eq!(real.uncertainty_radius, 15.0);
        assert_eq!(real.mcmc_m, 800);
        assert_eq!(real.max_iter, 90);
        assert_eq!(real.dbscan.eps_s, 8.0);

        let synth = C2mnConfig::paper_synthetic();
        assert_eq!(synth.uncertainty_radius, 10.0);
        assert_eq!(synth.sigma_sq, 0.2);
        assert_eq!(synth.max_iter, 50);
        assert_eq!(synth.mcmc_m, 500);
        // Unchanged fields inherit the real preset.
        assert_eq!(synth.alpha, 0.8);
    }

    #[test]
    fn with_structure_overrides() {
        let c = C2mnConfig::quick_test().with_structure(ModelStructure::cmn());
        assert!(!c.structure.is_coupled());
    }
}
