//! Engine durability: snapshot artifacts, the per-seal append-log, and
//! warm restart.
//!
//! Two artifacts make an engine durable (both in the `ism-codec` format,
//! see that crate's docs for the byte-level contract):
//!
//! * **Snapshot** — [`SemanticsEngine::save_snapshot`] atomically writes
//!   one [`ArtifactKind::EngineSnapshot`] file holding the base seed, the
//!   next global sequence index, the trained model
//!   ([`ism_c2mn::ModelSnapshot`]), and the entire sealed store.
//! * **Seal log** — a sibling `{path}.log` file
//!   ([`ArtifactKind::SealLog`]) that `save_snapshot` resets and every
//!   subsequent seal appends one frame to: the pending entries being
//!   published plus the commit index they extend to. Crashing between
//!   snapshots loses nothing that was sealed.
//!
//! [`EngineBuilder::open`] is the warm restart: it loads the snapshot,
//! **replays** the log's intact frames into the store (no re-annotation —
//! the decode kernels never run), truncates a torn tail frame if the
//! process died mid-append, and resumes the global sequence numbering
//! where the file says it stopped. The reopened engine is byte-identical
//! to one that never restarted — same store, same query answers, same
//! seeds for every future sequence — pinned by `tests/persistence.rs`.
//!
//! A failing log write never poisons ingest: the log detaches and the
//! error surfaces through [`SemanticsEngine::log_error`], while sealing
//! continues in memory.

use crate::{EngineBuilder, EngineError, SemanticsEngine};
use ism_c2mn::{C2mn, ModelSnapshot};
use ism_codec::{
    append_frame, read_artifact, read_header, write_artifact, write_header, write_u64,
    write_varint, ArtifactKind, CodecError, Decode, Encode, FrameIter, PersistError, Reader,
    FRAME_OVERHEAD, HEADER_LEN,
};
use ism_indoor::IndoorSpace;
use ism_mobility::{decode_semantics_run, encode_semantics_run, MobilitySemantics};
use ism_queries::ShardedSemanticsStore;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The seal-log path of a snapshot at `path`: the same file name with
/// `.log` appended (`engine.ism` → `engine.ism.log`).
pub fn log_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".log");
    PathBuf::from(os)
}

/// What [`EngineBuilder::open`] recovered from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Objects restored from the snapshot artifact itself.
    pub snapshot_objects: usize,
    /// Intact seal frames replayed from the append-log.
    pub replayed_frames: usize,
    /// `(object, m-semantics)` entries those frames carried.
    pub replayed_entries: usize,
    /// A torn tail frame (a crash mid-append) was detected and truncated.
    pub truncated_tail: bool,
    /// The global index the reopened engine's next sequence will get —
    /// seeds continue rather than restart.
    pub next_sequence_index: u64,
}

/// The engine's attached seal log, plus the error that detached it.
#[derive(Debug, Default)]
pub(crate) struct LogState {
    pub(crate) log: Option<SealLog>,
    pub(crate) error: Option<PersistError>,
}

/// An open append-log: `{snapshot}.log`, header already written,
/// positioned at the end.
#[derive(Debug)]
pub(crate) struct SealLog {
    path: PathBuf,
    file: File,
}

impl SealLog {
    /// Creates (or truncates) the log at `path` with a fresh
    /// [`ArtifactKind::SealLog`] header, open for appending.
    fn create(path: &Path) -> Result<SealLog, PersistError> {
        let mut header = Vec::with_capacity(HEADER_LEN);
        write_header(&mut header, ArtifactKind::SealLog);
        let mut file = File::create(path).map_err(|e| PersistError::io(path, "create", &e))?;
        file.write_all(&header)
            .map_err(|e| PersistError::io(path, "write", &e))?;
        Ok(SealLog {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Opens an existing log for appending after truncating it to `end`
    /// bytes — the offset just past the last intact frame, discarding a
    /// torn tail.
    fn open_truncating(path: &Path, end: u64) -> Result<SealLog, PersistError> {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| PersistError::io(path, "open", &e))?;
        file.set_len(end)
            .map_err(|e| PersistError::io(path, "truncate", &e))?;
        let mut file = file;
        file.seek(SeekFrom::End(0))
            .map_err(|e| PersistError::io(path, "seek", &e))?;
        Ok(SealLog {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Appends one checksummed frame.
    fn append(&mut self, payload: &[u8]) -> Result<(), PersistError> {
        let mut buf = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
        append_frame(&mut buf, payload);
        self.file
            .write_all(&buf)
            .map_err(|e| PersistError::io(&self.path, "append", &e))
    }
}

/// One seal frame: the commit index the seal extends to, then per shard
/// the pending entries being published, in shard-internal append order —
/// exactly the order a replay must re-append them in for the merged store
/// to stay byte-identical.
fn encode_seal_payload(next_commit: u64, store: &ShardedSemanticsStore) -> Vec<u8> {
    let mut out = Vec::new();
    write_u64(&mut out, next_commit);
    write_varint(&mut out, store.num_shards() as u64);
    for s in 0..store.num_shards() {
        let entries: Vec<(u64, &[MobilitySemantics])> = store.pending_of_shard(s).collect();
        write_varint(&mut out, entries.len() as u64);
        for (object_id, semantics) in entries {
            write_varint(&mut out, object_id);
            encode_semantics_run(&mut out, semantics);
        }
    }
    out
}

/// Flattened seal-frame entries in shard order: `(object_id, semantics)`.
type SealEntries = Vec<(u64, Vec<MobilitySemantics>)>;

/// Decodes one seal frame into `(next_commit, entries)`; the entries come
/// back flattened in shard order, ready to re-`append` (objects re-hash
/// into the same shards, in the same per-shard order).
fn decode_seal_payload(
    payload: &[u8],
    num_shards: usize,
) -> Result<(u64, SealEntries), CodecError> {
    let mut r = Reader::new(payload);
    let next_commit = r.u64()?;
    let shards = r.count_prefix(1)?;
    if shards != num_shards {
        return Err(CodecError::InvalidValue {
            what: "seal-log shard count disagrees with the snapshot",
        });
    }
    let mut entries = Vec::new();
    for _ in 0..shards {
        let count = r.count_prefix(2)?;
        entries.reserve(count);
        for _ in 0..count {
            let object_id = r.varint()?;
            let semantics = decode_semantics_run(&mut r)?;
            entries.push((object_id, semantics));
        }
    }
    r.finish()?;
    Ok((next_commit, entries))
}

impl SemanticsEngine<'_> {
    /// Atomically writes the engine's full durable state — base seed, next
    /// sequence index, trained model, and the sealed store — as one
    /// [`ArtifactKind::EngineSnapshot`] artifact at `path`, then starts a
    /// fresh seal log at `{path}.log` (everything the old log held is
    /// superseded by the snapshot).
    ///
    /// Buffered and in-flight sequences are flushed and sealed first, so
    /// the snapshot covers everything pushed engine-wide up to the call.
    /// [`EngineBuilder::open`] restores it without re-annotating anything.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), EngineError> {
        let path = path.as_ref();
        self.flush_ingest();
        self.seal_store();
        let payload = {
            // State before store (the engine-wide lock order); holding the
            // read guard while encoding freezes commits from concurrent
            // sessions, so `next_commit` and the store stay consistent.
            let state = self.state();
            let next_commit = state.next_commit;
            let store = self.shared.store.read();
            drop(state);
            let mut out = Vec::new();
            write_u64(&mut out, self.base_seed);
            write_u64(&mut out, next_commit);
            self.model.snapshot().encode(&mut out);
            store.encode(&mut out);
            out
        };
        write_artifact(path, ArtifactKind::EngineSnapshot, &payload)?;
        let log = SealLog::create(&log_path(path))?;
        let mut slot = self.log.lock();
        slot.log = Some(log);
        slot.error = None;
        Ok(())
    }

    /// Whether a seal append-log is attached (it is after
    /// [`save_snapshot`](SemanticsEngine::save_snapshot) or
    /// [`EngineBuilder::open`], until a write failure detaches it).
    pub fn has_seal_log(&self) -> bool {
        self.log.lock().log.is_some()
    }

    /// The I/O error that detached the seal log, if one did. Sealing
    /// continues in memory after a log failure; callers that need
    /// durability check here (or just call
    /// [`save_snapshot`](SemanticsEngine::save_snapshot), which starts a
    /// fresh log).
    pub fn log_error(&self) -> Option<PersistError> {
        self.log.lock().error.clone()
    }

    /// Appends the store's pending entries as one seal frame, if a log is
    /// attached. Called by `seal_store` *before* the merge, under the
    /// store write lock. Failure detaches the log instead of panicking.
    pub(crate) fn log_seal(&self, next_commit: u64, store: &ShardedSemanticsStore) {
        let mut slot = self.log.lock();
        let Some(log) = slot.log.as_mut() else {
            return;
        };
        let payload = encode_seal_payload(next_commit, store);
        if let Err(e) = log.append(&payload) {
            slot.log = None;
            slot.error = Some(e);
        }
    }
}

impl EngineBuilder {
    /// Warm restart: reopens an engine from a snapshot written by
    /// [`SemanticsEngine::save_snapshot`], **replaying** the seal log
    /// instead of re-annotating.
    ///
    /// The snapshot's base seed, shard count, store, and next sequence
    /// index win over the builder's (the file *is* that configuration);
    /// the builder still controls threads and queue capacity. Intact log
    /// frames are appended and sealed into the store; a torn tail frame —
    /// a crash mid-append — is detected by its checksum, reported in the
    /// [`RecoveryReport`], and truncated so the log is clean for the
    /// frames this process will append. A missing log (fresh snapshot, or
    /// a crash before the first seal) is simply started empty.
    ///
    /// Corrupt artifacts fail with a typed
    /// [`EngineError::Persist`] — never a panic, never an
    /// over-allocation.
    pub fn open<'a>(
        mut self,
        path: impl AsRef<Path>,
        space: &'a IndoorSpace,
    ) -> Result<(SemanticsEngine<'a>, RecoveryReport), EngineError> {
        let path = path.as_ref();
        let payload = read_artifact(path, ArtifactKind::EngineSnapshot)?;
        let mut r = Reader::new(&payload);
        let decoded: Result<_, CodecError> = (|| {
            let base_seed = r.u64()?;
            let next = r.u64()?;
            let snapshot = ModelSnapshot::decode(&mut r)?;
            let store = ShardedSemanticsStore::decode(&mut r)?;
            r.finish()?;
            Ok((base_seed, next, snapshot, store))
        })();
        let (base_seed, mut next, snapshot, mut store) =
            decoded.map_err(|e| PersistError::codec(path, e))?;

        let mut report = RecoveryReport {
            snapshot_objects: store.len(),
            replayed_frames: 0,
            replayed_entries: 0,
            truncated_tail: false,
            next_sequence_index: next,
        };

        let lpath = log_path(path);
        let log = match std::fs::read(&lpath) {
            Ok(bytes) => {
                let start = read_header(&bytes, ArtifactKind::SealLog)
                    .map_err(|e| PersistError::codec(&lpath, e))?;
                let mut frames = FrameIter::new(&bytes, start);
                for frame in &mut frames {
                    match frame {
                        Ok(payload) => {
                            // A checksum-valid frame that fails to decode
                            // is real corruption, not a torn tail.
                            let (frame_next, entries) =
                                decode_seal_payload(payload, store.num_shards())
                                    .map_err(|e| PersistError::codec(&lpath, e))?;
                            report.replayed_frames += 1;
                            report.replayed_entries += entries.len();
                            for (object_id, semantics) in entries {
                                store.append(object_id, semantics);
                            }
                            next = frame_next;
                        }
                        Err(_) => {
                            report.truncated_tail = true;
                            break;
                        }
                    }
                }
                SealLog::open_truncating(&lpath, frames.good_end() as u64)?
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => SealLog::create(&lpath)?,
            Err(e) => return Err(PersistError::io(&lpath, "read", &e).into()),
        };

        report.next_sequence_index = next;
        self.base_seed = base_seed;
        self.shards = None; // the store's count wins
        self.first_sequence_index = next;
        self.initial = Some(store); // replayed entries seal during build
        let pool = self.pool();
        let model = C2mn::from_snapshot(space, snapshot);
        let engine = self.build_with_pool(model, pool)?;
        *engine.log.lock() = LogState {
            log: Some(log),
            error: None,
        };
        Ok((engine, report))
    }
}
