//! Batch annotation throughput: sequences/second of [`BatchAnnotator`] at
//! 1, 2 and 4 worker threads over a mall workload, plus streaming-ingest
//! throughput of the `ism-engine` [`IngestSession`] front-end against the
//! offline `annotate_into_store` reference (both produce byte-identical
//! stores — the measurement is pure overhead accounting), plus training
//! throughput of the pool-parallel [`Trainer`] at the same thread counts
//! (all thread counts learn byte-identical weights — again pure speedup
//! accounting).
//!
//! A **kernel** section compares the naive decode loop (recompute every
//! `(site, candidate)` row every sweep) against the memoized
//! Markov-blanket kernel at 1 thread — identical RNG streams, identical
//! output — and records cache effectiveness: the overall row reuse rate,
//! the reuse rate at the final annealing temperatures (the
//! zero-temperature ICM sweeps finishing the schedule — the converged
//! regime, where memoization pays; hotter sweeps still flip labels whose
//! segmentation features genuinely couple whole runs), and the bytes
//! held by the precomputed pairwise feature tables.
//!
//! A **serving** section measures latency-mode ingest: per-sequence
//! annotation latency (push → commit to the live store) under Poisson
//! arrivals at 1, 2 and 4 threads, with the arrival rate calibrated to
//! ~60% of the measured single-thread decode rate. With ≥ 2 threads the
//! persistent pool picks each arrival up on an idle worker immediately
//! (pipelined ingest); at 1 thread arrivals queue until the bounded
//! submission queue fills — the p50/p99 gap between the two is the
//! latency win the serving path exists for. Each serving row carries the
//! pool's `idle_wakeups` / `async_tasks` counters so a latency regression
//! can be attributed (e.g. thread counts above the host's parallelism
//! spinning each other out of the only core).
//!
//! Besides the usual criterion console report, the bench writes
//! `BENCH_annotate.json` at the repository root so CI can archive the perf
//! trajectory across commits. In `--test` (smoke) mode each configuration
//! runs once and the JSON carries coarse single-run estimates.
//!
//! [`IngestSession`]: ism_engine::IngestSession

use criterion::Criterion;
use ism_bench::positioning_batch;
use ism_c2mn::{
    invalidate_events_after_region_sweep, invalidate_regions_after_event_sweep, sequence_seed,
    BatchAnnotator, C2mn, CoupledNetwork, DecodeScratch, EventSites, RegionSites, SequenceContext,
    Trainer,
};
use ism_engine::{log_path, EngineBuilder, SemanticsEngine};
use ism_indoor::{BuildingGenerator, IndoorSpace};
use ism_mobility::{
    Dataset, MobilityEvent, PositioningConfig, PositioningRecord, SimulationConfig,
};
use ism_pgm::{gibbs_sweep_cached, icm_sweep_cached, AnnealSchedule, SweepCache};
use ism_runtime::{PoolStats, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::{Duration, Instant};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const SHARDS: usize = 8;
const QUEUE_CAPACITY: usize = 8;
/// Queue capacity of the serving (latency-mode) runs: small, so a
/// sequence never waits long for a fill-triggered batch even when no
/// worker is idle.
const SERVING_QUEUE_CAPACITY: usize = 4;
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_annotate.json");

fn main() {
    let mut c = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args();

    // A mall workload sized so a full measurement finishes in seconds:
    // a trained model plus a batch of ~100-record test sequences.
    let mut rng = StdRng::seed_from_u64(1);
    let space = BuildingGenerator::mall().generate(&mut rng).unwrap();
    let dataset = Dataset::generate(
        "bench",
        &space,
        SimulationConfig::quick(),
        PositioningConfig::wifi_mall(),
        None,
        16,
        &mut rng,
    );
    let config = ism_c2mn::C2mnConfig::quick_test();
    let model = C2mn::train(&space, &dataset.sequences, &config, &mut rng).unwrap();
    let sequences = positioning_batch(&dataset.sequences);
    let object_ids: Vec<u64> = dataset.sequences.iter().map(|s| s.object_id).collect();
    let num_records: usize = sequences.iter().map(|s| s.len()).sum();

    let mut throughputs: Vec<(usize, f64)> = Vec::new();
    for threads in THREAD_COUNTS {
        let engine = BatchAnnotator::new(&model, threads, 7);
        c.bench_function(&format!("annotate/mall_batch_{threads}_threads"), |b| {
            b.iter(|| engine.label_batch(black_box(&sequences)))
        });
        if let Some(ns) = c.last_estimate_ns() {
            throughputs.push((threads, sequences.len() as f64 / (ns / 1e9)));
        }
    }

    // Streaming ingest (session push + incremental seal into the live
    // store) vs the offline annotate-into-store reference, per thread
    // count. Each iteration builds a fresh engine so the store always
    // starts empty; the model clone is parameters-only and cheap. Both
    // sides clone the batch inside the timed region — the session consumes
    // owned sequences, so the offline side clones too to keep the ratio a
    // comparison of engine machinery rather than harness allocation.
    let mut ingest: Vec<(usize, Option<f64>, Option<f64>)> = Vec::new();
    for threads in THREAD_COUNTS {
        let annotator = BatchAnnotator::new(&model, threads, 7);
        c.bench_function(&format!("ingest/offline_store_{threads}_threads"), |b| {
            b.iter(|| {
                let batch = sequences.clone();
                annotator.annotate_into_store(black_box(&batch), &object_ids, SHARDS)
            })
        });
        let offline = c
            .last_estimate_ns()
            .map(|ns| sequences.len() as f64 / (ns / 1e9));
        c.bench_function(&format!("ingest/streaming_{threads}_threads"), |b| {
            b.iter(|| {
                let engine = EngineBuilder::new()
                    .threads(threads)
                    .shards(SHARDS)
                    .base_seed(7)
                    .queue_capacity(QUEUE_CAPACITY)
                    .build(model.clone())
                    .unwrap();
                let mut session = engine.ingest();
                for (id, seq) in object_ids.iter().zip(&sequences) {
                    session.push(*id, seq.clone());
                }
                session.seal();
                black_box(engine.num_objects())
            })
        });
        let streaming = c
            .last_estimate_ns()
            .map(|ns| sequences.len() as f64 / (ns / 1e9));
        ingest.push((threads, streaming, offline));
    }

    // Pool-parallel training (per-sequence MCMC sampling fanned out over
    // the worker pool): training sequences/sec per thread count. Weights
    // are byte-identical at every thread count, so this measures pure
    // parallel speedup of Algorithm 1's sampling stage.
    let train_seqs = &dataset.sequences;
    let mut train: Vec<(usize, Option<f64>)> = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = WorkerPool::new(threads);
        c.bench_function(&format!("train/mall_{threads}_threads"), |b| {
            b.iter(|| {
                Trainer::new(&space, config.clone())
                    .seed(7)
                    .pool(&pool)
                    .run(black_box(train_seqs))
                    .unwrap()
                    .model
            })
        });
        let tp = c
            .last_estimate_ns()
            .map(|ns| train_seqs.len() as f64 / (ns / 1e9));
        train.push((threads, tp));
    }

    // Decode kernel: naive vs memoized sweeps at 1 thread over the same
    // batch with identical RNG streams (so both kernels produce identical
    // labels and run identical sweep counts). The rate counts annealed
    // Gibbs half-sweeps (2 per anneal step per decode); the ICM polish
    // runs inside the timed region for both kernels but is excluded from
    // the count, keeping the two rates comparable.
    let half_sweeps = (2 * config.anneal_sweeps.max(1) * sequences.len()) as f64;
    c.bench_function("kernel/naive_sweeps_1_thread", |b| {
        let mut scratch = DecodeScratch::new();
        b.iter(|| {
            for (i, seq) in sequences.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(sequence_seed(7, i));
                black_box(model.label_with_naive(black_box(seq), &mut rng, &mut scratch));
            }
        })
    });
    let sweeps_naive = c.last_estimate_ns().map(|ns| half_sweeps / (ns / 1e9));
    c.bench_function("kernel/cached_sweeps_1_thread", |b| {
        let mut scratch = DecodeScratch::new();
        b.iter(|| {
            for (i, seq) in sequences.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(sequence_seed(7, i));
                black_box(model.label_with(black_box(seq), &mut rng, &mut scratch));
            }
        })
    });
    let sweeps_cached = c.last_estimate_ns().map(|ns| half_sweeps / (ns / 1e9));

    // Cache effectiveness over one clean sequential pass, bracketed by
    // snapshots of the process-wide counters (they accumulate across every
    // decode, including the runs above).
    let before = ism_pgm::kernel_stats();
    {
        let mut scratch = DecodeScratch::new();
        for (i, seq) in sequences.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(sequence_seed(7, i));
            black_box(model.label_with(seq, &mut rng, &mut scratch));
        }
    }
    let after = ism_pgm::kernel_stats();
    let reuse_overall = {
        let filled = after.rows_filled - before.rows_filled;
        let reused = after.rows_reused - before.rows_reused;
        if filled + reused == 0 {
            0.0
        } else {
            reused as f64 / (filled + reused) as f64
        }
    };
    let (reuse_final, pairwise_bytes) = final_temps_reuse(&model, &sequences);
    println!(
        "kernel: naive {} cached {} half-sweeps/sec, reuse overall {:.3} final temps {:.3}, \
         pairwise tables {pairwise_bytes} bytes",
        fmt_opt(sweeps_naive),
        fmt_opt(sweeps_cached),
        reuse_overall,
        reuse_final
    );
    let kernel = KernelResults {
        sweeps_per_sec_naive: sweeps_naive,
        sweeps_per_sec_cached: sweeps_cached,
        row_reuse_rate_overall: reuse_overall,
        row_reuse_rate_final_temps: reuse_final,
        pairwise_table_bytes: pairwise_bytes,
    };

    // Serving latency under Poisson arrivals. Calibrate the offered load
    // to ~60% of the measured single-thread decode rate so the 1-thread
    // run is loaded but stable, then replay the identical (seeded)
    // arrival schedule at every thread count.
    let smoke = std::env::args().any(|a| a == "--test");
    let serving_arrivals = if smoke { 8 } else { 64 };
    let calibrate = Instant::now();
    BatchAnnotator::new(&model, 1, 7).label_batch(&sequences);
    let mean_service = calibrate.elapsed().as_secs_f64() / sequences.len() as f64;
    let arrival_rate = 0.6 / mean_service.max(1e-9);
    let mut serving: Vec<ServingRow> = Vec::new();
    for threads in THREAD_COUNTS {
        let (latencies, pool_stats) = serve_poisson(
            &model,
            threads,
            arrival_rate,
            serving_arrivals,
            &object_ids,
            &sequences,
        );
        let (p50, p99) = (percentile(&latencies, 50.0), percentile(&latencies, 99.0));
        println!(
            "serving/poisson_{threads}_threads: p50 {p50:.3} ms, p99 {p99:.3} ms \
             ({arrival_rate:.1} arrivals/sec, {} idle wakeups, {} async tasks)",
            pool_stats.idle_wakeups, pool_stats.async_tasks
        );
        serving.push(ServingRow {
            threads,
            p50,
            p99,
            idle_wakeups: pool_stats.idle_wakeups,
            async_tasks: pool_stats.async_tasks,
        });
    }

    // Durability: snapshot write/load bandwidth, then warm restart (seal
    // log replay) vs cold re-annotation of the same half-stream. These are
    // one-shot I/O paths, so they are wall-clock timed directly rather
    // than criterion-sampled.
    let persistence = measure_persistence(&model, &space, &object_ids, &sequences);

    write_report(
        &throughputs,
        &ingest,
        &train,
        &kernel,
        &serving,
        &persistence,
        arrival_rate,
        serving_arrivals,
        sequences.len(),
        num_records,
    );
}

/// Decode-kernel measurements for the `kernel_results` report section.
struct KernelResults {
    sweeps_per_sec_naive: Option<f64>,
    sweeps_per_sec_cached: Option<f64>,
    row_reuse_rate_overall: f64,
    row_reuse_rate_final_temps: f64,
    pairwise_table_bytes: u64,
}

/// Durability measurements for the `persistence_results` report section.
struct PersistenceResults {
    snapshot_bytes: u64,
    snapshot_write_mb_per_sec: f64,
    snapshot_load_mb_per_sec: f64,
    seal_log_bytes: u64,
    log_replay_seconds: f64,
    cold_reannotate_seconds: f64,
    /// Warm-restart wall time as a fraction of the cold path (< 1 means
    /// replaying the seal log beats re-annotating the lost sequences).
    replay_vs_cold: f64,
}

/// Snapshot bandwidth over the fully-ingested mall engine, then two ways
/// of recovering an engine whose second half only ever reached the seal
/// log: replaying the log (warm) vs reopening a log-less snapshot and
/// re-annotating the missing p-sequences (cold). Both paths end on the
/// same store, so the ratio isolates what the log buys.
fn measure_persistence(
    model: &C2mn<'_>,
    space: &IndoorSpace,
    object_ids: &[u64],
    sequences: &[Vec<PositioningRecord>],
) -> PersistenceResults {
    let dir = std::env::temp_dir().join(format!("ism-bench-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let threads = *THREAD_COUNTS.last().unwrap();
    let build = || {
        EngineBuilder::new()
            .threads(threads)
            .shards(SHARDS)
            .base_seed(7)
            .queue_capacity(QUEUE_CAPACITY)
            .build(model.clone())
            .unwrap()
    };
    let ingest = |engine: &SemanticsEngine<'_>, range: std::ops::Range<usize>| {
        let mut session = engine.ingest();
        for (id, seq) in object_ids[range.clone()].iter().zip(&sequences[range]) {
            session.push(*id, seq.clone());
        }
        session.seal();
    };

    // Snapshot write/load bandwidth over the whole workload.
    let full = dir.join("full.ism");
    let engine = build();
    ingest(&engine, 0..sequences.len());
    let t = Instant::now();
    engine.save_snapshot(&full).unwrap();
    let write_secs = t.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(&full).unwrap().len();
    drop(engine);
    let t = Instant::now();
    let (_reopened, report) = EngineBuilder::new()
        .threads(threads)
        .open(&full, space)
        .unwrap();
    let load_secs = t.elapsed().as_secs_f64();
    assert_eq!(report.replayed_frames, 0, "full snapshot carries no log");

    // Half the stream in the snapshot, the other half only in the log.
    // `cold.ism` is the same snapshot *without* the log, so its recovery
    // has to re-annotate the second half from p-sequences.
    let split = sequences.len() / 2;
    let half = dir.join("half.ism");
    let cold_path = dir.join("cold.ism");
    let engine = build();
    ingest(&engine, 0..split);
    engine.save_snapshot(&half).unwrap();
    std::fs::copy(&half, &cold_path).expect("copy snapshot");
    ingest(&engine, split..sequences.len());
    drop(engine);
    let seal_log_bytes = std::fs::metadata(log_path(&half)).unwrap().len();

    let t = Instant::now();
    let (warm, report) = EngineBuilder::new()
        .threads(threads)
        .open(&half, space)
        .unwrap();
    let log_replay_seconds = t.elapsed().as_secs_f64();
    assert_eq!(report.replayed_entries, sequences.len() - split);

    let t = Instant::now();
    let (cold, _) = EngineBuilder::new()
        .threads(threads)
        .open(&cold_path, space)
        .unwrap();
    ingest(&cold, split..sequences.len());
    let cold_reannotate_seconds = t.elapsed().as_secs_f64();
    assert_eq!(warm.num_objects(), cold.num_objects());

    let _ = std::fs::remove_dir_all(&dir);
    let mb = snapshot_bytes as f64 / 1e6;
    let results = PersistenceResults {
        snapshot_bytes,
        snapshot_write_mb_per_sec: mb / write_secs.max(1e-9),
        snapshot_load_mb_per_sec: mb / load_secs.max(1e-9),
        seal_log_bytes,
        log_replay_seconds,
        cold_reannotate_seconds,
        replay_vs_cold: log_replay_seconds / cold_reannotate_seconds.max(1e-9),
    };
    println!(
        "persistence: snapshot {} bytes (write {:.1} MB/s, load {:.1} MB/s), \
         log replay {:.4}s vs cold re-annotate {:.4}s ({:.3}x of cold)",
        results.snapshot_bytes,
        results.snapshot_write_mb_per_sec,
        results.snapshot_load_mb_per_sec,
        results.log_replay_seconds,
        results.cold_reannotate_seconds,
        results.replay_vs_cold
    );
    results
}

/// One serving latency row plus the pool counters explaining it.
struct ServingRow {
    threads: usize,
    p50: f64,
    p99: f64,
    idle_wakeups: u64,
    async_tasks: u64,
}

/// Replays the annealed (cached) decode loop per sequence, reading the
/// cache counter deltas to isolate the row-reuse rate at the *final
/// annealing temperatures* — the zero-temperature ICM sweeps that finish
/// the schedule, i.e. the converged regime a cold sampler spends its
/// time in — and summing the pairwise-table bytes of the built contexts.
///
/// The annealed sweeps proper (including the last one at `t_end`) still
/// flip several labels per sweep on this workload, and one flipped label
/// genuinely changes every row whose segmentation window it falls in
/// (`fes`/`fss` couple whole label runs), so those rows *must* refill —
/// the memoization pays once the flip rate drops, which is exactly the
/// window this metric isolates.
///
/// The loop mirrors `C2mn::label_with` (same seeds, same sweep order,
/// same cross-chain invalidation, same ICM fixpoint loop); it is rebuilt
/// here from the public kernel API because the counters are only visible
/// per sweep from outside the decode call.
fn final_temps_reuse(model: &C2mn<'_>, sequences: &[Vec<PositioningRecord>]) -> (f64, u64) {
    let config = model.config();
    let weights = model.weights();
    let coupled = config.structure.event_segmentation || config.structure.space_segmentation;
    let mut final_filled = 0u64;
    let mut final_reused = 0u64;
    let mut table_bytes = 0u64;
    for (qi, records) in sequences.iter().enumerate() {
        if records.is_empty() {
            continue;
        }
        let ctx = SequenceContext::build(model.space(), config, records, &[]);
        table_bytes += ctx.pairwise_table_bytes() as u64;
        let net = CoupledNetwork::new(&ctx, weights);
        let n = ctx.len();
        let mut rng = StdRng::seed_from_u64(sequence_seed(7, qi));
        let mut region_state = ctx.nearest_idx.clone();
        let mut event_state: Vec<usize> = ctx.dbscan_events.iter().map(|e| e.index()).collect();
        let mut regions: Vec<_> = ctx
            .nearest_idx
            .iter()
            .enumerate()
            .map(|(i, &c)| ctx.candidates[i][c])
            .collect();
        let mut events = ctx.dbscan_events.clone();
        let mut region_cache = SweepCache::new();
        let mut event_cache = SweepCache::new();
        {
            let rs = RegionSites {
                net: &net,
                events: &events,
            };
            region_cache.reset(&rs);
            let es = EventSites {
                net: &net,
                regions: &regions,
            };
            event_cache.reset(&es);
        }
        let schedule = AnnealSchedule {
            t_start: config.anneal_t_start,
            t_end: config.anneal_t_end,
            sweeps: config.anneal_sweeps.max(1),
        };
        let mut prev_regions = regions.clone();
        let mut prev_events = events.clone();
        for k in 0..schedule.sweeps {
            let t = schedule.temperature(k);
            prev_regions.clear();
            prev_regions.extend_from_slice(&regions);
            {
                let rs = RegionSites {
                    net: &net,
                    events: &events,
                };
                gibbs_sweep_cached(&rs, &mut region_state, t, &mut rng, &mut region_cache);
            }
            for i in 0..n {
                regions[i] = ctx.candidates[i][region_state[i]];
            }
            if coupled {
                invalidate_events_after_region_sweep(
                    &ctx,
                    &prev_regions,
                    &regions,
                    &events,
                    &mut event_cache,
                );
            }
            prev_events.clear();
            prev_events.extend_from_slice(&events);
            {
                let es = EventSites {
                    net: &net,
                    regions: &regions,
                };
                gibbs_sweep_cached(&es, &mut event_state, t, &mut rng, &mut event_cache);
            }
            for i in 0..n {
                events[i] = MobilityEvent::ALL[event_state[i]];
            }
            if coupled {
                invalidate_regions_after_event_sweep(
                    &ctx,
                    &prev_events,
                    &events,
                    &regions,
                    &mut region_cache,
                );
            }
        }
        // The measured window: the zero-temperature ICM polish that
        // finishes the schedule — same fixpoint loop as `C2mn::label_with`.
        let snap = (region_cache.stats(), event_cache.stats());
        for _ in 0..(2 * n + 4) {
            prev_regions.clear();
            prev_regions.extend_from_slice(&regions);
            let changed_r = {
                let rs = RegionSites {
                    net: &net,
                    events: &events,
                };
                icm_sweep_cached(&rs, &mut region_state, &mut region_cache)
            };
            for i in 0..n {
                regions[i] = ctx.candidates[i][region_state[i]];
            }
            if coupled {
                invalidate_events_after_region_sweep(
                    &ctx,
                    &prev_regions,
                    &regions,
                    &events,
                    &mut event_cache,
                );
            }
            prev_events.clear();
            prev_events.extend_from_slice(&events);
            let changed_e = {
                let es = EventSites {
                    net: &net,
                    regions: &regions,
                };
                icm_sweep_cached(&es, &mut event_state, &mut event_cache)
            };
            for i in 0..n {
                events[i] = MobilityEvent::ALL[event_state[i]];
            }
            if coupled {
                invalidate_regions_after_event_sweep(
                    &ctx,
                    &prev_events,
                    &events,
                    &regions,
                    &mut region_cache,
                );
            }
            if changed_r == 0 && changed_e == 0 {
                break;
            }
        }
        let (r, e) = (region_cache.stats(), event_cache.stats());
        final_filled += (r.rows_filled - snap.0.rows_filled) + (e.rows_filled - snap.1.rows_filled);
        final_reused += (r.rows_reused - snap.0.rows_reused) + (e.rows_reused - snap.1.rows_reused);
    }
    let total = final_filled + final_reused;
    let rate = if total == 0 {
        0.0
    } else {
        final_reused as f64 / total as f64
    };
    (rate, table_bytes)
}

/// Replays `total` Poisson arrivals (seeded, identical across thread
/// counts) into a fresh latency-mode engine and returns the per-sequence
/// latency in milliseconds: push instant → the instant the sequence's
/// commit was observed via [`SemanticsEngine::sequences_committed`].
///
/// The submitting client observes commits between arrivals (closed loop):
/// when a push blocks on backpressure the schedule slips, so reported
/// latency is decode + queueing as the client experiences it.
///
/// Also returns the engine pool's lifetime counters — the engine is fresh
/// per run, so the counters describe exactly this replay.
fn serve_poisson(
    model: &C2mn<'_>,
    threads: usize,
    arrival_rate: f64,
    total: usize,
    object_ids: &[u64],
    sequences: &[Vec<PositioningRecord>],
) -> (Vec<f64>, PoolStats) {
    let engine = EngineBuilder::new()
        .threads(threads)
        .shards(SHARDS)
        .base_seed(7)
        .queue_capacity(SERVING_QUEUE_CAPACITY)
        .build(model.clone())
        .unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let mut session = engine.ingest();
    let mut pushed_at: Vec<Instant> = Vec::with_capacity(total);
    let mut committed_at: Vec<Option<Instant>> = vec![None; total];
    let mut observed = 0u64;
    let start = Instant::now();
    let mut next_arrival = 0.0f64;
    for i in 0..total {
        let u: f64 = rng.random();
        next_arrival += -(1.0 - u).ln() / arrival_rate;
        loop {
            observe_commits(&engine, &mut observed, &mut committed_at);
            let now = start.elapsed().as_secs_f64();
            if now >= next_arrival {
                break;
            }
            let remaining = next_arrival - now;
            std::thread::sleep(Duration::from_secs_f64(remaining.min(2e-4)));
        }
        pushed_at.push(Instant::now());
        session.push(
            object_ids[i % object_ids.len()],
            sequences[i % sequences.len()].clone(),
        );
        observe_commits(&engine, &mut observed, &mut committed_at);
    }
    while (observed as usize) < total {
        observe_commits(&engine, &mut observed, &mut committed_at);
        std::thread::sleep(Duration::from_micros(100));
    }
    session.seal();
    let latencies = pushed_at
        .iter()
        .zip(&committed_at)
        .map(|(pushed, committed)| {
            committed
                .expect("every arrival commits")
                .saturating_duration_since(*pushed)
                .as_secs_f64()
                * 1e3
        })
        .collect();
    (latencies, engine.pool_stats())
}

/// Timestamps every commit whose global index became visible since the
/// last call.
fn observe_commits(
    engine: &SemanticsEngine<'_>,
    observed: &mut u64,
    committed_at: &mut [Option<Instant>],
) {
    let committed = engine.sequences_committed();
    let now = Instant::now();
    while *observed < committed && (*observed as usize) < committed_at.len() {
        committed_at[*observed as usize] = Some(now);
        *observed += 1;
    }
}

/// Nearest-rank percentile (`p` in 0..=100) of unsorted samples.
fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("null".to_string(), |x| format!("{x:.3}"))
}

/// Emits `BENCH_annotate.json` (hand-rolled JSON: the vendored serde does
/// not serialize).
#[allow(clippy::too_many_arguments)]
fn write_report(
    throughputs: &[(usize, f64)],
    ingest: &[(usize, Option<f64>, Option<f64>)],
    train: &[(usize, Option<f64>)],
    kernel: &KernelResults,
    serving: &[ServingRow],
    persistence: &PersistenceResults,
    arrival_rate: f64,
    serving_arrivals: usize,
    num_sequences: usize,
    num_records: usize,
) {
    // Speedups are relative to the measured 1-thread run; when a CLI
    // filter skipped it, report `null` rather than a made-up baseline.
    let baseline = throughputs
        .iter()
        .find(|&&(threads, _)| threads == 1)
        .map(|&(_, tp)| tp);
    let entries: Vec<String> = throughputs
        .iter()
        .map(|&(threads, tp)| {
            let speedup = baseline.map_or("null".to_string(), |base| format!("{:.3}", tp / base));
            format!(
                "    {{\"threads\": {threads}, \"sequences_per_sec\": {tp:.3}, \
                 \"speedup_vs_1_thread\": {speedup}}}"
            )
        })
        .collect();
    let ingest_entries: Vec<String> = ingest
        .iter()
        .map(|&(threads, streaming, offline)| {
            let ratio = match (streaming, offline) {
                (Some(s), Some(o)) if o > 0.0 => format!("{:.3}", s / o),
                _ => "null".to_string(),
            };
            format!(
                "    {{\"threads\": {threads}, \
                 \"streaming_sequences_per_sec\": {}, \
                 \"offline_sequences_per_sec\": {}, \
                 \"streaming_vs_offline\": {ratio}}}",
                fmt_opt(streaming),
                fmt_opt(offline)
            )
        })
        .collect();
    // Speedups relative to the measured 1-thread training run; `null`
    // when a CLI filter skipped it.
    let train_baseline = train
        .iter()
        .find(|&&(threads, _)| threads == 1)
        .and_then(|&(_, tp)| tp);
    let train_entries: Vec<String> = train
        .iter()
        .map(|&(threads, tp)| {
            let speedup = match (tp, train_baseline) {
                (Some(tp), Some(base)) if base > 0.0 => format!("{:.3}", tp / base),
                _ => "null".to_string(),
            };
            format!(
                "    {{\"threads\": {threads}, \
                 \"train_sequences_per_sec\": {}, \
                 \"speedup_vs_1_thread\": {speedup}}}",
                fmt_opt(tp)
            )
        })
        .collect();
    let serving_entries: Vec<String> = serving
        .iter()
        .map(|row| {
            format!(
                "    {{\"threads\": {}, \"p50_latency_ms\": {:.3}, \
                 \"p99_latency_ms\": {:.3}, \"idle_wakeups\": {}, \
                 \"async_tasks\": {}}}",
                row.threads, row.p50, row.p99, row.idle_wakeups, row.async_tasks
            )
        })
        .collect();
    let cached_vs_naive = match (kernel.sweeps_per_sec_cached, kernel.sweeps_per_sec_naive) {
        (Some(c), Some(n)) if n > 0.0 => format!("{:.3}", c / n),
        _ => "null".to_string(),
    };
    let kernel_entry = format!(
        "{{\n    \"sweeps_per_sec_naive\": {},\n    \"sweeps_per_sec_cached\": {},\n    \
         \"cached_vs_naive\": {cached_vs_naive},\n    \
         \"row_reuse_rate_overall\": {:.4},\n    \
         \"row_reuse_rate_final_temps\": {:.4},\n    \
         \"pairwise_table_bytes\": {}\n  }}",
        fmt_opt(kernel.sweeps_per_sec_naive),
        fmt_opt(kernel.sweeps_per_sec_cached),
        kernel.row_reuse_rate_overall,
        kernel.row_reuse_rate_final_temps,
        kernel.pairwise_table_bytes
    );
    let persistence_entry = format!(
        "{{\n    \"snapshot_bytes\": {},\n    \
         \"snapshot_write_mb_per_sec\": {:.3},\n    \
         \"snapshot_load_mb_per_sec\": {:.3},\n    \
         \"seal_log_bytes\": {},\n    \
         \"log_replay_seconds\": {:.6},\n    \
         \"cold_reannotate_seconds\": {:.6},\n    \
         \"replay_vs_cold\": {:.4}\n  }}",
        persistence.snapshot_bytes,
        persistence.snapshot_write_mb_per_sec,
        persistence.snapshot_load_mb_per_sec,
        persistence.seal_log_bytes,
        persistence.log_replay_seconds,
        persistence.cold_reannotate_seconds,
        persistence.replay_vs_cold
    );
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let serving_note = format!(
        "serving ran on a host with {available} available core(s); thread counts above \
         host_parallelism time-share cores, so added threads can worsen latency — read the \
         per-row idle_wakeups/async_tasks counters before comparing rows"
    );
    let json = format!(
        "{{\n  \"bench\": \"annotate_throughput\",\n  \"workload\": \"mall\",\n  \
         \"num_sequences\": {num_sequences},\n  \"num_records\": {num_records},\n  \
         \"host_parallelism\": {available},\n  \"queue_capacity\": {QUEUE_CAPACITY},\n  \
         \"shards\": {SHARDS},\n  \"results\": [\n{}\n  ],\n  \
         \"ingest_results\": [\n{}\n  ],\n  \
         \"train_results\": [\n{}\n  ],\n  \
         \"kernel_results\": {kernel_entry},\n  \
         \"persistence_results\": {persistence_entry},\n  \
         \"serving_arrival_rate_per_sec\": {arrival_rate:.3},\n  \
         \"serving_arrivals\": {serving_arrivals},\n  \
         \"serving_queue_capacity\": {SERVING_QUEUE_CAPACITY},\n  \
         \"serving_note\": \"{serving_note}\",\n  \
         \"serving_results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
        ingest_entries.join(",\n"),
        train_entries.join(",\n"),
        serving_entries.join(",\n")
    );
    match std::fs::write(OUT_PATH, &json) {
        Ok(()) => println!("wrote {OUT_PATH}"),
        Err(e) => eprintln!("could not write {OUT_PATH}: {e}"),
    }
}
