//! Warm restart: snapshot a live engine, "crash", and reopen it — the
//! seal log replays what the snapshot missed without re-annotating a
//! single sequence, and the stream continues with the same seeds as if
//! the process had never died.
//!
//! Run with: `cargo run --release --example warm_restart`

use indoor_semantics::engine::log_path;
use indoor_semantics::mobility::TimePeriod;
use indoor_semantics::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let dir = std::env::temp_dir().join(format!("ism-warm-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = dir.join("engine.ism");

    // A venue, a stream of p-sequences, and a trained engine.
    let venue = BuildingGenerator::small_office()
        .generate(&mut rng)
        .unwrap();
    let dataset = Dataset::generate(
        "warm-restart",
        &venue,
        SimulationConfig::quick(),
        PositioningConfig::synthetic(8.0, 2.0),
        None,
        12,
        &mut rng,
    );
    let stream: Vec<(u64, Vec<PositioningRecord>)> = dataset
        .sequences
        .iter()
        .map(|s| (s.object_id, s.positioning().collect()))
        .collect();
    let split = stream.len() / 2;

    // Reference: one engine that ingests everything, uninterrupted.
    let whole = EngineBuilder::new()
        .shards(4)
        .base_seed(11)
        .train(
            &venue,
            &dataset.sequences,
            &C2mnConfig::quick_test(),
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
    let mut s = whole.ingest();
    s.push_batch(stream.iter().cloned());
    s.seal();

    // Process 1: ingest the first half, snapshot, then two more sealed
    // chunks that only ever reach the append-log — and "crash".
    {
        let engine = EngineBuilder::new()
            .shards(4)
            .base_seed(11)
            .train(
                &venue,
                &dataset.sequences,
                &C2mnConfig::quick_test(),
                &mut StdRng::seed_from_u64(3),
            )
            .unwrap();
        let mut s = engine.ingest();
        s.push_batch(stream[..split].iter().cloned());
        s.seal();
        engine.save_snapshot(&snapshot).unwrap();
        println!(
            "process 1: sealed {} sequences, snapshot = {} bytes",
            split,
            std::fs::metadata(&snapshot).unwrap().len()
        );
        let mid = split + (stream.len() - split) / 2;
        for chunk in [&stream[split..mid], &stream[mid..]] {
            let mut s = engine.ingest();
            s.push_batch(chunk.iter().cloned());
            s.seal();
        }
        println!(
            "process 1: sealed {} more sequences into the log ({} bytes), then crashed",
            stream.len() - split,
            std::fs::metadata(log_path(&snapshot)).unwrap().len()
        );
        // Tear the log's final bytes to simulate dying mid-append.
        let log = log_path(&snapshot);
        let bytes = std::fs::read(&log).unwrap();
        std::fs::write(&log, &bytes[..bytes.len() - 3]).unwrap();
        println!("         (the crash tore the last log frame)");
    }

    // Process 2: warm restart. The decode kernels never run during
    // `open` — the log frames are replayed, not re-annotated.
    let kernels_before = indoor_semantics::pgm::kernel_stats();
    let (engine, report) = EngineBuilder::new().open(&snapshot, &venue).unwrap();
    let kernels_after = indoor_semantics::pgm::kernel_stats();
    println!(
        "\nprocess 2: recovered {} snapshot objects + {} log frames ({} entries), \
         truncated torn tail: {}",
        report.snapshot_objects,
        report.replayed_frames,
        report.replayed_entries,
        report.truncated_tail
    );
    assert!(report.truncated_tail);
    assert_eq!(
        kernels_after.rows_filled, kernels_before.rows_filled,
        "warm restart must not re-annotate"
    );
    println!("           no decode kernel ran: replay, not re-annotation");

    // The torn tail's sequences were never durable; re-ingest them. The
    // engine resumes the global numbering, so seeds line up exactly.
    let lost = stream.len() - report.next_sequence_index as usize;
    let mut s = engine.ingest();
    s.push_batch(stream[stream.len() - lost..].iter().cloned());
    s.seal();
    println!("           re-ingested the {lost} sequences the torn frame lost");

    // Byte-identical to the engine that never crashed.
    let regions: Vec<RegionId> = venue.regions().iter().map(|r| r.id).collect();
    let qt = TimePeriod::new(0.0, 1e9);
    assert_eq!(engine.num_objects(), whole.num_objects());
    assert_eq!(
        engine.tk_prq(&regions, 5, qt),
        whole.tk_prq(&regions, 5, qt)
    );
    assert_eq!(
        engine.tk_frpq(&regions, 5, qt),
        whole.tk_frpq(&regions, 5, qt)
    );
    for (id, _) in &stream {
        assert_eq!(engine.semantics_of(*id), whole.semantics_of(*id));
    }
    println!(
        "\nrestarted engine == uninterrupted engine: {} objects, identical m-semantics, \
         identical top-k answers",
        engine.num_objects()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
