//! `ism-codec` — hand-rolled, versioned, deterministic binary format for
//! durable engine state.
//!
//! The vendored serde derives in this workspace expand to nothing, so until
//! this crate existed nothing the engine learned survived the process:
//! `TrainCheckpoint` resume was same-process only and every restart
//! re-annotated the whole store from raw records. `ism-codec` is the real
//! serialization layer: a small, dependency-free binary format with the
//! exact properties the workspace's determinism contract needs.
//!
//! # Format
//!
//! * **Primitives** — little-endian fixed-width integers for values that
//!   must round-trip bit-exactly (`f64` weights, seeds), LEB128 varints for
//!   counts and ids, ZigZag for signed deltas, and the order-preserving
//!   [`ordered_bits`] f64 mapping — the same conventions proven by the
//!   compressed posting codec in `ism-queries`.
//! * **Artifacts** — every persisted file starts with an 8-byte header:
//!   magic `b"ISMB"`, a little-endian `u16` format version, and a one-byte
//!   [`ArtifactKind`]. Readers reject unknown magic, newer versions, and
//!   kind mismatches with typed errors before touching the payload.
//! * **Frames** — after the header, the body is a sequence of frames:
//!   `u32` payload length, `u32` CRC-32 checksum, payload bytes. Snapshots
//!   and checkpoints are a single frame; the engine's seal log appends one
//!   frame per seal, which is what makes a torn tail detectable: a frame
//!   whose length runs past end-of-file or whose checksum fails marks the
//!   crash point, and recovery discards exactly that tail.
//! * **No panics on corrupt input** — decoding goes through a
//!   bounds-checked [`Reader`]; every length prefix is validated against
//!   the remaining input *before* any allocation, so a hostile or torn file
//!   produces a typed [`CodecError`], never a panic or an OOM.
//!
//! # Determinism
//!
//! Encoding is a pure function of the value: no timestamps, no padding, no
//! map iteration order (containers encode in their deterministic in-memory
//! order). Equal values encode to equal bytes, which is what lets the
//! round-trip and cross-process-resume tests compare artifacts byte for
//! byte.

#![forbid(unsafe_code)]

mod error;
mod file;
mod frame;
mod primitives;
mod reader;
mod traits;

pub use error::{CodecError, PersistError};
pub use file::{read_artifact, read_file, write_artifact, write_atomic};
pub use frame::{
    append_frame, decode_artifact, encode_artifact, read_header, write_header, ArtifactKind,
    FrameIter, FORMAT_VERSION, FRAME_OVERHEAD, HEADER_LEN, MAGIC,
};
pub use primitives::{
    crc32, from_ordered_bits, ordered_bits, unzigzag, write_f64_bits, write_u16, write_u32,
    write_u64, write_varint, zigzag,
};
pub use reader::Reader;
pub use traits::{Decode, Encode};
