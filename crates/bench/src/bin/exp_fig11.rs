//! Figure 11: training time with different first-configured variables —
//! C2MN (events first, via ST-DBSCAN) vs C2MN@R (regions first, via
//! nearest-neighbour matching).

use ism_bench::{at_r_config, f3, mall_dataset, print_table, Scale};
use ism_c2mn::Trainer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let (space, dataset) = mall_dataset(&scale, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let (train, _) = dataset.split(0.7, &mut rng);
    let pool = scale.pool();
    let base = scale.max_iter.max(2);
    let mut rows = Vec::new();
    for iters in [base / 2, base, (base * 3) / 2, base * 2] {
        let mut config = scale.c2mn_config();
        config.max_iter = iters.max(1);
        config.delta = 0.0;
        let c2mn = Trainer::new(&space, config.clone())
            .seed(3)
            .pool(&pool)
            .run(&train)
            .unwrap();
        let at_r = Trainer::new(&space, at_r_config(&config))
            .seed(3)
            .pool(&pool)
            .run(&train)
            .unwrap();
        rows.push(vec![
            format!("{iters}"),
            f3(c2mn.report.train_seconds),
            f3(at_r.report.train_seconds),
        ]);
    }
    print_table(
        &format!(
            "Figure 11 — training time (s) on {} workers: first-configured variable",
            pool.threads()
        ),
        &["max_iter", "C2MN", "C2MN@R"],
        &rows,
    );
}
