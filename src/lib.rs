//! # indoor-semantics
//!
//! A full reproduction of *"Indoor Mobility Semantics Annotation Using
//! Coupled Conditional Markov Networks"* (Li, Lu, Cheema, Shou, Chen —
//! ICDE 2020) as a Rust workspace.
//!
//! This façade crate re-exports the public API of every workspace member so
//! downstream users can depend on a single crate:
//!
//! * [`geometry`] — 2-D kernel (circle–rectangle intersection areas, turns).
//! * [`indoor`] — floorplans, partitions/doors, semantic regions,
//!   accessibility graph and minimum indoor walking distance (MIWD).
//! * [`mobility`] — random-waypoint indoor mobility simulator, positioning
//!   error models, p-sequence preprocessing.
//! * [`cluster`] — ST-DBSCAN spatio-temporal clustering.
//! * [`optim`] — L-BFGS with line search.
//! * [`pgm`] — probabilistic graphical model toolkit (HMM, linear-chain CRF,
//!   Gibbs/ICM inference with a memoized Markov-blanket sweep cache and
//!   `KernelStats` observability).
//! * [`runtime`] — deterministic **persistent** worker pool: long-lived
//!   threads created once, item-ordered `run` / `run_with`, commutative
//!   `map_reduce`, fire-and-forget `try_spawn` for pipelined ingest, and
//!   `PoolStats` observability — backing the batch annotation and query
//!   engines without ever spawning per call.
//! * [`c2mn`] — the paper's coupled conditional Markov network: feature
//!   functions, the `Trainer` session API for alternate learning
//!   (Algorithm 1, pool-parallel and resumable with per-iteration
//!   observation), joint decoding, label-and-merge, and all structural
//!   variants.
//! * [`baselines`] — SMoT, HMM+DC, SAPDV, SAPDA.
//! * [`queries`] — TkPRQ / TkFRPQ top-k semantic queries: flat sequential
//!   reference plus the sharded engine with delta+varint-compressed
//!   time-bucket indexes, batched fan-out (`QueryBatch`) and standing
//!   queries folded forward from seal summaries.
//! * [`engine`] — the unified streaming front-end: `SemanticsEngine` owns
//!   model, worker pool, and a live sharded store; `IngestSession` streams
//!   p-sequences in with deterministic output, handing each arrival to an
//!   idle worker immediately (pipelined ingest), with several sessions
//!   ingesting concurrently; queries are methods, with a seal-invalidated
//!   result cache and standing-query registration.
//! * [`eval`] — RA/EA/CA/PA metrics, splits, cross-validation.
//!
//! ## Quickstart
//!
//! The engine path: train once, stream p-sequences in as they arrive,
//! query everything sealed so far.
//!
//! ```
//! use indoor_semantics::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. Build a small synthetic venue and simulate labelled mobility data.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let venue = BuildingGenerator::small_office().generate(&mut rng).unwrap();
//! let dataset = Dataset::generate(
//!     "demo",
//!     &venue,
//!     SimulationConfig::quick(),
//!     PositioningConfig::synthetic(8.0, 2.0),
//!     None,
//!     4,
//!     &mut rng,
//! );
//!
//! // 2. Train the coupled model and build the engine around it.
//! let engine = EngineBuilder::new()
//!     .threads(2)
//!     .shards(4)
//!     .base_seed(7)
//!     .train(&venue, &dataset.sequences, &C2mnConfig::quick_test(), &mut rng)
//!     .unwrap();
//!
//! // 3. Stream p-sequences in; sealing publishes them to the queries.
//! let mut session = engine.ingest();
//! for seq in &dataset.sequences {
//!     session.push(seq.object_id, seq.positioning().collect());
//! }
//! session.seal();
//!
//! // 4. Ask semantic questions over everything annotated so far.
//! let regions: Vec<RegionId> = venue.regions().iter().map(|r| r.id).collect();
//! let qt = indoor_semantics::mobility::TimePeriod::new(0.0, 1e6);
//! let popular = engine.tk_prq(&regions, 3, qt);
//! assert!(popular.len() <= 3);
//! let first_object = dataset.sequences[0].object_id;
//! assert!(engine.semantics_of(first_object).is_some());
//! ```
//!
//! The pieces remain available individually (`C2mn::annotate`,
//! `BatchAnnotator`, `ShardedStoreBuilder`, `tk_prq_sharded`, …) for
//! callers that want to wire them by hand.

#![deny(missing_docs)]

pub use ism_baselines as baselines;
pub use ism_c2mn as c2mn;
pub use ism_cluster as cluster;
pub use ism_codec as codec;
pub use ism_engine as engine;
pub use ism_eval as eval;
pub use ism_geometry as geometry;
pub use ism_indoor as indoor;
pub use ism_mobility as mobility;
pub use ism_optim as optim;
pub use ism_pgm as pgm;
pub use ism_queries as queries;
pub use ism_runtime as runtime;

/// Convenience prelude importing the most frequently used types.
pub mod prelude {
    pub use ism_baselines::{HmmDc, SapDa, SapDv, Smot};
    pub use ism_c2mn::{
        sequence_seed, train_seed, BatchAnnotator, C2mn, C2mnConfig, ModelSnapshot, ModelStructure,
        SampledChain, TrainCheckpoint, TrainControl, TrainError, TrainOutcome, TrainProgress,
        TrainReport, Trainer, Weights,
    };
    pub use ism_cluster::{DensityClass, StDbscan, StDbscanParams};
    pub use ism_codec::{ArtifactKind, CodecError, Decode, Encode, PersistError};
    pub use ism_engine::{
        CacheStats, EngineBuilder, EngineError, IngestSession, KernelStats, RecoveryReport,
        SemanticsEngine, StandingQueryId,
    };
    pub use ism_eval::{combined_accuracy, perfect_accuracy, LabelAccuracy};
    pub use ism_geometry::{Circle, Point2, Rect};
    pub use ism_indoor::{BuildingGenerator, IndoorSpace, PartitionId, RegionId};
    pub use ism_mobility::{
        Dataset, MobilityEvent, MobilitySemantics, PositioningConfig, PositioningRecord,
        SimulationConfig, Simulator,
    };
    pub use ism_queries::{
        shard_of, tk_frpq, tk_frpq_sharded, tk_prq, tk_prq_sharded, QueryAnswer, QueryBatch,
        QuerySet, SealSummary, SemanticsStore, ShardedSemanticsStore, ShardedStoreBuilder,
        StandingTkFrpq, StandingTkPrq, StoreError,
    };
    pub use ism_runtime::{PoolStats, SubmissionQueue, WorkerPool};
}
