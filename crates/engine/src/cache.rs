//! Engine-owned result cache for the one-shot top-k queries.
//!
//! A dashboard re-issuing the same TkPRQ/TkFRPQ between seals re-pays the
//! whole index evaluation for an answer that cannot have changed: query
//! answers only move when a seal publishes new visit postings, and only
//! for queries whose region set intersects the regions those postings
//! touch. The cache exploits exactly that: answers are keyed by the
//! *normalised* query (distinct sorted regions, `k`, the `qt` bit
//! patterns), and each seal's
//! [`SealSummary::touched_regions`](ism_queries::SealSummary) evicts
//! precisely the entries whose regions intersect it. A seal that publishes
//! no visit postings (only pass events) evicts nothing — no answer could
//! have moved.

use ism_indoor::RegionId;
use ism_mobility::TimePeriod;
use ism_queries::{QueryAnswer, QuerySet};
use std::collections::{HashMap, VecDeque};

/// Most entries the cache holds; at capacity the oldest inserted entry is
/// evicted first (deterministic FIFO — no clock involved).
pub(crate) const CACHE_CAPACITY: usize = 1024;

/// A normalised query identity: duplicate/unsorted region slices and
/// numerically equal `qt` values map to the same key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    prq: bool,
    regions: Vec<RegionId>,
    k: usize,
    qt_bits: (u64, u64),
}

impl CacheKey {
    pub(crate) fn new(prq: bool, query: &[RegionId], k: usize, qt: TimePeriod) -> Self {
        CacheKey {
            prq,
            regions: QuerySet::new(query).iter().collect(),
            k,
            qt_bits: (qt.start.to_bits(), qt.end.to_bits()),
        }
    }
}

/// Observable cache counters — see
/// [`SemanticsEngine::cache_stats`](crate::SemanticsEngine::cache_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently cached.
    pub entries: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
}

/// The cache proper: FIFO-bounded map plus hit/miss counters.
#[derive(Debug, Default)]
pub(crate) struct QueryCache {
    entries: HashMap<CacheKey, QueryAnswer>,
    order: VecDeque<CacheKey>,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    pub(crate) fn get(&mut self, key: &CacheKey) -> Option<QueryAnswer> {
        match self.entries.get(key) {
            Some(answer) => {
                self.hits += 1;
                Some(answer.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub(crate) fn insert(&mut self, key: CacheKey, answer: QueryAnswer) {
        if self.entries.contains_key(&key) {
            return;
        }
        if self.entries.len() >= CACHE_CAPACITY {
            if let Some(oldest) = self.order.pop_front() {
                self.entries.remove(&oldest);
            }
        }
        self.order.push_back(key.clone());
        self.entries.insert(key, answer);
    }

    /// Evicts every entry whose region set intersects `touched`
    /// (ascending, as a [`SealSummary`](ism_queries::SealSummary) reports
    /// it). Disjoint entries stay — their answers cannot have moved.
    pub(crate) fn invalidate_touching(&mut self, touched: &[RegionId]) {
        if touched.is_empty() || self.entries.is_empty() {
            return;
        }
        self.entries
            .retain(|key, _| !intersects_sorted(&key.regions, touched));
        let entries = &self.entries;
        self.order.retain(|key| entries.contains_key(key));
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            hits: self.hits,
            misses: self.misses,
        }
    }
}

/// Whether two ascending region slices share an element (two-pointer walk).
// analyzer: allow(lib-panic) `i < a.len()` and `j < b.len()` are the loop condition
fn intersects_sorted(a: &[RegionId], b: &[RegionId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(prq: bool, regions: &[u32], k: usize) -> CacheKey {
        let regions: Vec<RegionId> = regions.iter().copied().map(RegionId).collect();
        CacheKey::new(prq, &regions, k, TimePeriod::new(0.0, 100.0))
    }

    #[test]
    fn keys_normalise_region_slices() {
        assert_eq!(key(true, &[3, 1, 3, 2], 5), key(true, &[1, 2, 3], 5));
        assert_ne!(key(true, &[1, 2], 5), key(false, &[1, 2], 5));
        assert_ne!(key(true, &[1, 2], 5), key(true, &[1, 2], 6));
    }

    #[test]
    fn invalidation_evicts_only_intersecting_entries() {
        let mut cache = QueryCache::default();
        cache.insert(key(true, &[1, 2], 3), QueryAnswer::Prq(Vec::new()));
        cache.insert(key(false, &[4, 5], 3), QueryAnswer::Frpq(Vec::new()));
        assert_eq!(cache.stats().entries, 2);
        cache.invalidate_touching(&[RegionId(2), RegionId(9)]);
        assert_eq!(cache.stats().entries, 1);
        assert!(cache.get(&key(true, &[1, 2], 3)).is_none());
        assert!(cache.get(&key(false, &[4, 5], 3)).is_some());
        // An empty touched set (a seal of pass-only postings) evicts
        // nothing.
        cache.invalidate_touching(&[]);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut cache = QueryCache::default();
        for i in 0..CACHE_CAPACITY as u32 + 2 {
            cache.insert(key(true, &[i], 1), QueryAnswer::Prq(Vec::new()));
        }
        assert_eq!(cache.stats().entries, CACHE_CAPACITY);
        assert!(cache.get(&key(true, &[0], 1)).is_none());
        assert!(cache.get(&key(true, &[1], 1)).is_none());
        assert!(cache.get(&key(true, &[2], 1)).is_some());
    }
}
