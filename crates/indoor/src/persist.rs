//! `ism-codec` impls for indoor identifiers.
//!
//! Ids encode as varints: region/partition/door ids are dense small
//! integers, so most take a single byte on disk.

use ism_codec::{write_varint, CodecError, Decode, Encode, Reader};

use crate::ids::{DoorId, PartitionId, RegionId};

macro_rules! codec_for_id {
    ($name:ident, $what:expr) => {
        impl Encode for $name {
            fn encode(&self, out: &mut Vec<u8>) {
                write_varint(out, u64::from(self.0));
            }
        }

        impl Decode for $name {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                let raw = r.varint()?;
                u32::try_from(raw)
                    .map($name)
                    .map_err(|_| CodecError::InvalidValue { what: $what })
            }
        }
    };
}

codec_for_id!(RegionId, "region id exceeds u32");
codec_for_id!(PartitionId, "partition id exceeds u32");
codec_for_id!(DoorId, "door id exceeds u32");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_stay_small() {
        for raw in [0u32, 1, 127, 128, u32::MAX] {
            let id = RegionId(raw);
            let bytes = id.to_bytes();
            assert_eq!(RegionId::from_bytes(&bytes).unwrap(), id);
            if raw < 128 {
                assert_eq!(bytes.len(), 1);
            }
        }
    }

    #[test]
    fn oversized_id_is_rejected() {
        let mut bytes = Vec::new();
        write_varint(&mut bytes, u64::from(u32::MAX) + 1);
        assert!(matches!(
            RegionId::from_bytes(&bytes),
            Err(CodecError::InvalidValue { .. })
        ));
    }
}
