//! The unrolled coupled network: global energy and exact Markov-blanket
//! local features.
//!
//! The central invariant, exercised by the tests below, is that for any
//! single-site relabelling the difference of the *local* feature vectors
//! equals the difference of the *global* energy — i.e. the conditionals
//! used by Gibbs sampling and ICM are exactly those of the joint model.

use crate::structure::idx;
use crate::{SequenceContext, Weights, NUM_FEATURES};
use ism_indoor::RegionId;
use ism_mobility::MobilityEvent;
use ism_pgm::ConditionalModel;

/// A C2MN instantiated over one positioning sequence.
pub struct CoupledNetwork<'c> {
    /// The preprocessed sequence.
    pub ctx: &'c SequenceContext<'c>,
    /// The shared template weights.
    pub weights: &'c Weights,
}

impl<'c> CoupledNetwork<'c> {
    /// Creates the network.
    pub fn new(ctx: &'c SequenceContext<'c>, weights: &'c Weights) -> Self {
        CoupledNetwork { ctx, weights }
    }

    /// `fsm` for an arbitrary region at record `i` (candidate cache first,
    /// direct geometry as fallback).
    fn fsm_value(&self, i: usize, region: RegionId) -> f64 {
        if let Some(c) = self.ctx.candidate_index(i, region) {
            return self.ctx.fsm[i][c];
        }
        let rec = &self.ctx.records[i];
        let circle = ism_geometry::Circle::new(rec.location.xy, self.ctx.config.uncertainty_radius);
        self.ctx
            .space
            .region_circle_overlap(region, rec.location.floor, circle)
            / circle.area().max(f64::EPSILON)
    }

    /// Maximal run `a..=b` around `i` where `same(k)` holds relative to `i`.
    #[inline]
    fn run_around<F: Fn(usize, usize) -> bool>(&self, i: usize, same: F) -> (usize, usize) {
        let n = self.ctx.len();
        let mut a = i;
        while a > 0 && same(a - 1, i) {
            a -= 1;
        }
        let mut b = i;
        while b + 1 < n && same(b + 1, i) {
            b += 1;
        }
        (a, b)
    }

    /// Global energy `Σ_ct w_ct · f_ct` of a full labelling.
    pub fn total_energy(&self, regions: &[RegionId], events: &[MobilityEvent]) -> f64 {
        let ctx = self.ctx;
        let s = &ctx.config.structure;
        let w = &self.weights.0;
        let n = ctx.len();
        debug_assert_eq!(regions.len(), n);
        debug_assert_eq!(events.len(), n);
        let mut energy = 0.0;
        for i in 0..n {
            energy += w[idx::SM] * self.fsm_value(i, regions[i]);
            energy += w[idx::EM] * ctx.fem[i][events[i].index()];
        }
        for g in 0..n.saturating_sub(1) {
            if s.transitions {
                energy += w[idx::ST] * ctx.fst(g, regions[g], regions[g + 1]);
                energy += w[idx::ET] * ctx.fet(events[g], events[g + 1]);
            }
            if s.synchronizations {
                energy += w[idx::SC] * ctx.fsc(g, regions[g], regions[g + 1]);
                energy += w[idx::EC] * ctx.fec(g, events[g], events[g + 1]);
            }
        }
        if s.event_segmentation && n > 0 {
            let mut a = 0;
            while a < n {
                let mut b = a;
                while b + 1 < n && events[b + 1] == events[a] {
                    b += 1;
                }
                let f = ctx.fes(a, b, events[a], |k| regions[k]);
                for k in 0..3 {
                    energy += w[idx::ES + k] * f[k];
                }
                a = b + 1;
            }
        }
        if s.space_segmentation && n > 0 {
            let mut a = 0;
            while a < n {
                let mut b = a;
                while b + 1 < n && regions[b + 1] == regions[a] {
                    b += 1;
                }
                let f = ctx.fss(a, b, |k| events[k]);
                for k in 0..3 {
                    energy += w[idx::SS + k] * f[k];
                }
                a = b + 1;
            }
        }
        energy
    }

    /// Local feature vector of assigning `cand` to region site `i`: the sum
    /// of the features of every clique containing `r_i`, with all other
    /// sites read through the accessors.
    pub fn region_local_features<R, E>(
        &self,
        i: usize,
        cand: RegionId,
        region_at: R,
        event_at: E,
        out: &mut [f64; NUM_FEATURES],
    ) where
        R: Fn(usize) -> RegionId,
        E: Fn(usize) -> MobilityEvent,
    {
        let ctx = self.ctx;
        let s = &ctx.config.structure;
        let n = ctx.len();
        out.fill(0.0);
        let eff = |k: usize| if k == i { cand } else { region_at(k) };

        out[idx::SM] = self.fsm_value(i, cand);
        if s.transitions {
            if i > 0 {
                out[idx::ST] += ctx.fst(i - 1, region_at(i - 1), cand);
            }
            if i + 1 < n {
                out[idx::ST] += ctx.fst(i, cand, region_at(i + 1));
            }
        }
        if s.synchronizations {
            if i > 0 {
                out[idx::SC] += ctx.fsc(i - 1, region_at(i - 1), cand);
            }
            if i + 1 < n {
                out[idx::SC] += ctx.fsc(i, cand, region_at(i + 1));
            }
        }
        if s.event_segmentation {
            // The event run containing i is unaffected by region labels;
            // only its fes features change through DISTNUM.
            let (a, b) = self.run_around(i, |k, j| event_at(k) == event_at(j));
            let f = ctx.fes(a, b, event_at(i), eff);
            out[idx::ES..idx::ES + 3].copy_from_slice(&f);
        }
        if s.space_segmentation {
            // Changing r_i can split or merge region runs: recompute fss
            // over the window spanned by the runs of i−1 and i+1 (their
            // outer boundaries cannot move).
            let lo = if i == 0 {
                0
            } else {
                self.run_around(i - 1, |k, j| region_at(k) == region_at(j))
                    .0
            };
            let hi = if i + 1 >= n {
                n - 1
            } else {
                self.run_around(i + 1, |k, j| region_at(k) == region_at(j))
                    .1
            };
            let mut a = lo;
            while a <= hi {
                let mut b = a;
                while b < hi && eff(b + 1) == eff(a) {
                    b += 1;
                }
                let f = ctx.fss(a, b, &event_at);
                for k in 0..3 {
                    out[idx::SS + k] += f[k];
                }
                a = b + 1;
            }
        }
    }

    /// Local feature vector of assigning `cand` to event site `i`.
    pub fn event_local_features<R, E>(
        &self,
        i: usize,
        cand: MobilityEvent,
        region_at: R,
        event_at: E,
        out: &mut [f64; NUM_FEATURES],
    ) where
        R: Fn(usize) -> RegionId,
        E: Fn(usize) -> MobilityEvent,
    {
        let ctx = self.ctx;
        let s = &ctx.config.structure;
        let n = ctx.len();
        out.fill(0.0);
        let eff = |k: usize| if k == i { cand } else { event_at(k) };

        out[idx::EM] = ctx.fem[i][cand.index()];
        if s.transitions {
            if i > 0 {
                out[idx::ET] += ctx.fet(event_at(i - 1), cand);
            }
            if i + 1 < n {
                out[idx::ET] += ctx.fet(cand, event_at(i + 1));
            }
        }
        if s.synchronizations {
            if i > 0 {
                out[idx::EC] += ctx.fec(i - 1, event_at(i - 1), cand);
            }
            if i + 1 < n {
                out[idx::EC] += ctx.fec(i, cand, event_at(i + 1));
            }
        }
        if s.event_segmentation {
            // Changing e_i can split or merge event runs.
            let lo = if i == 0 {
                0
            } else {
                self.run_around(i - 1, |k, j| event_at(k) == event_at(j)).0
            };
            let hi = if i + 1 >= n {
                n - 1
            } else {
                self.run_around(i + 1, |k, j| event_at(k) == event_at(j)).1
            };
            let mut a = lo;
            while a <= hi {
                let mut b = a;
                while b < hi && eff(b + 1) == eff(a) {
                    b += 1;
                }
                let f = ctx.fes(a, b, eff(a), &region_at);
                for k in 0..3 {
                    out[idx::ES + k] += f[k];
                }
                a = b + 1;
            }
        }
        if s.space_segmentation {
            // The region run containing i is fixed; its fss features change
            // through the event-run counts and boundary indicators.
            let (a, b) = self.run_around(i, |k, j| region_at(k) == region_at(j));
            let f = ctx.fss(a, b, eff);
            out[idx::SS..idx::SS + 3].copy_from_slice(&f);
        }
    }
}

/// Region-chain sites as a [`ConditionalModel`]: state entries are dense
/// candidate indices into `ctx.candidates[site]`, the event chain is fixed.
pub struct RegionSites<'c> {
    /// The network.
    pub net: &'c CoupledNetwork<'c>,
    /// The fixed event labelling.
    pub events: &'c [MobilityEvent],
}

impl ConditionalModel for RegionSites<'_> {
    fn num_sites(&self) -> usize {
        self.net.ctx.len()
    }

    fn num_candidates(&self, site: usize) -> usize {
        self.net.ctx.candidates[site].len()
    }

    fn local_log_potential(&self, site: usize, candidate: usize, state: &[usize]) -> f64 {
        let ctx = self.net.ctx;
        let mut f = [0.0; NUM_FEATURES];
        self.net.region_local_features(
            site,
            ctx.candidates[site][candidate],
            |k| ctx.candidates[k][state[k]],
            |k| self.events[k],
            &mut f,
        );
        self.net.weights.dot(&f)
    }
}

/// Event-chain sites as a [`ConditionalModel`]: state entries index
/// [`MobilityEvent::ALL`], the region chain is fixed.
pub struct EventSites<'c> {
    /// The network.
    pub net: &'c CoupledNetwork<'c>,
    /// The fixed region labelling.
    pub regions: &'c [RegionId],
}

impl ConditionalModel for EventSites<'_> {
    fn num_sites(&self) -> usize {
        self.net.ctx.len()
    }

    fn num_candidates(&self, _site: usize) -> usize {
        2
    }

    fn local_log_potential(&self, site: usize, candidate: usize, state: &[usize]) -> f64 {
        let mut f = [0.0; NUM_FEATURES];
        self.net.event_local_features(
            site,
            MobilityEvent::ALL[candidate],
            |k| self.regions[k],
            |k| MobilityEvent::ALL[state[k]],
            &mut f,
        );
        self.net.weights.dot(&f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C2mnConfig;
    use ism_geometry::Point2;
    use ism_indoor::{BuildingGenerator, IndoorPoint, IndoorSpace};
    use ism_mobility::PositioningRecord;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (IndoorSpace, C2mnConfig) {
        let space = BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        (space, C2mnConfig::quick_test())
    }

    fn random_walk(space: &IndoorSpace, n: usize, seed: u64) -> Vec<PositioningRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xy = space.partitions()[4].rect.center();
        (0..n)
            .map(|i| {
                xy = Point2::new(
                    xy.x + rng.random_range(-4.0..4.0),
                    xy.y + rng.random_range(-2.0..2.0),
                );
                PositioningRecord::new(IndoorPoint::new(0, xy), 8.0 * i as f64)
            })
            .collect()
    }

    /// The key invariant: single-site local-feature differences match
    /// global-energy differences, for both chains and every structure.
    #[test]
    fn local_conditionals_match_global_energy() {
        let (space, base) = setup();
        for structure in [
            crate::ModelStructure::full(),
            crate::ModelStructure::cmn(),
            crate::ModelStructure::no_transitions(),
            crate::ModelStructure::no_synchronizations(),
            crate::ModelStructure::no_event_segmentation(),
            crate::ModelStructure::no_space_segmentation(),
        ] {
            let config = base.clone().with_structure(structure);
            let recs = random_walk(&space, 14, 42);
            let ctx = SequenceContext::build(&space, &config, &recs, &[]);
            let weights = Weights::uniform(1.3);
            let net = CoupledNetwork::new(&ctx, &weights);
            let mut rng = StdRng::seed_from_u64(7);

            // Random initial labelling from candidates.
            let mut regions: Vec<RegionId> = (0..ctx.len())
                .map(|i| ctx.candidates[i][rng.random_range(0..ctx.candidates[i].len())])
                .collect();
            let mut events: Vec<MobilityEvent> = (0..ctx.len())
                .map(|_| MobilityEvent::ALL[rng.random_range(0..MobilityEvent::ALL.len())])
                .collect();

            for _trial in 0..40 {
                let i = rng.random_range(0..ctx.len());
                // --- Region flip -------------------------------------
                let old_r = regions[i];
                let new_r = ctx.candidates[i][rng.random_range(0..ctx.candidates[i].len())];
                let mut f_old = [0.0; NUM_FEATURES];
                let mut f_new = [0.0; NUM_FEATURES];
                net.region_local_features(i, old_r, |k| regions[k], |k| events[k], &mut f_old);
                net.region_local_features(i, new_r, |k| regions[k], |k| events[k], &mut f_new);
                let local_delta = weights.dot(&f_new) - weights.dot(&f_old);
                let e_old = net.total_energy(&regions, &events);
                regions[i] = new_r;
                let e_new = net.total_energy(&regions, &events);
                assert!(
                    (e_new - e_old - local_delta).abs() < 1e-9,
                    "region flip mismatch ({structure:?}): global {} vs local {}",
                    e_new - e_old,
                    local_delta
                );
                regions[i] = old_r;

                // --- Event flip --------------------------------------
                let old_e = events[i];
                let new_e = MobilityEvent::ALL[rng.random_range(0..MobilityEvent::ALL.len())];
                net.event_local_features(i, old_e, |k| regions[k], |k| events[k], &mut f_old);
                net.event_local_features(i, new_e, |k| regions[k], |k| events[k], &mut f_new);
                let local_delta = weights.dot(&f_new) - weights.dot(&f_old);
                let e_old = net.total_energy(&regions, &events);
                events[i] = new_e;
                let e_new = net.total_energy(&regions, &events);
                assert!(
                    (e_new - e_old - local_delta).abs() < 1e-9,
                    "event flip mismatch ({structure:?}): global {} vs local {}",
                    e_new - e_old,
                    local_delta
                );
                events[i] = old_e;
            }
        }
    }

    #[test]
    fn adapters_expose_expected_shapes() {
        let (space, config) = setup();
        let recs = random_walk(&space, 10, 5);
        let ctx = SequenceContext::build(&space, &config, &recs, &[]);
        let weights = Weights::uniform(1.0);
        let net = CoupledNetwork::new(&ctx, &weights);
        let events = vec![MobilityEvent::Stay; ctx.len()];
        let rs = RegionSites {
            net: &net,
            events: &events,
        };
        assert_eq!(rs.num_sites(), 10);
        for i in 0..10 {
            assert_eq!(rs.num_candidates(i), ctx.candidates[i].len());
        }
        let regions: Vec<RegionId> = (0..ctx.len()).map(|i| ctx.candidates[i][0]).collect();
        let es = EventSites {
            net: &net,
            regions: &regions,
        };
        assert_eq!(es.num_sites(), 10);
        assert_eq!(es.num_candidates(3), 2);
        // Potentials are finite.
        let state = vec![0usize; 10];
        for i in 0..10 {
            assert!(rs.local_log_potential(i, 0, &state).is_finite());
            assert!(es.local_log_potential(i, 1, &state).is_finite());
        }
    }

    #[test]
    fn zero_weights_make_all_labelings_equal() {
        let (space, config) = setup();
        let recs = random_walk(&space, 8, 9);
        let ctx = SequenceContext::build(&space, &config, &recs, &[]);
        let weights = Weights::zeros();
        let net = CoupledNetwork::new(&ctx, &weights);
        let regions: Vec<RegionId> = (0..ctx.len()).map(|i| ctx.candidates[i][0]).collect();
        let events = vec![MobilityEvent::Pass; ctx.len()];
        assert_eq!(net.total_energy(&regions, &events), 0.0);
    }
}
