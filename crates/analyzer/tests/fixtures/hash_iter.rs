//! hash-iter fixture: HashMap order leaking into ordered output.

use std::collections::HashMap;

pub fn leaky(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, _) in m {
        out.push(*k);
    }
    out
}

pub fn leaky_chain(m: &HashMap<u32, u32>) -> String {
    let mut s = String::new();
    for k in m.keys() {
        s.push_str(&k.to_string());
    }
    s
}

pub fn sorted(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}

pub fn commutative(m: &HashMap<u32, u32>) -> u32 {
    m.values().sum()
}
