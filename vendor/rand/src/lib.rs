//! Vendored, offline subset of the `rand` 0.9 API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the surface the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (stable across platforms and releases, which is what the
//!   reproducibility harness needs),
//! * `random::<T>()`, `random_range(..)` over integer/float ranges, and
//!   `random_bool(p)`.
//!
//! It intentionally does **not** promise value-compatibility with upstream
//! `rand`; all seeds in this repo were pinned against this implementation.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "natural" domain by
/// [`Rng::random`]: `[0, 1)` for floats, the full value range for integers.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
///
/// Mirrors upstream's `SampleUniform`: [`SampleRange`] is implemented once,
/// generically, on top of this trait. The single blanket impl is load-bearing
/// for type inference — `rng.random_range(-4.0..4.0)` must unify the literal
/// with the surrounding expression the way upstream `rand` does, which
/// per-type `SampleRange` impls would break.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)` when `inclusive` is false, `[lo, hi]` otherwise.
    /// The caller guarantees the range is non-empty.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, uniform over all values for integers).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`, expanding it with
    /// SplitMix64 (the standard seeding recipe for xoshiro generators).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike upstream `rand`'s ChaCha-based `StdRng`, this generator's
    /// stream is frozen by this vendored crate, so every seed pinned in the
    /// test suite reproduces forever.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro must not start from the all-zero state.
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x0123_4567, 0x89AB_CDEF];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-4.0f64..4.0);
            assert!((-4.0..4.0).contains(&w));
            let k = rng.random_range(0..=5);
            assert!((0..=5).contains(&k));
        }
    }

    #[test]
    fn random_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
