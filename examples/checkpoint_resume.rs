//! Cross-process training checkpoint/resume: interrupt training in one
//! process, resume it from the checkpoint file in another, and end on
//! weights byte-identical to never having stopped.
//!
//! Three modes:
//!
//! * `cargo run --release --example checkpoint_resume` — self-contained:
//!   runs interrupt + resume in-process and checks byte-exactness.
//! * `... -- save <dir>` — trains two iterations, checkpoints to
//!   `<dir>/train.ckpt`, prints nothing else, and exits (the
//!   "interrupted process").
//! * `... -- resume <dir>` — a fresh process: resumes from the file,
//!   finishes training, and writes the final weight bytes to
//!   `<dir>/weights.hex` for the caller to compare.
//!
//! CI drives `save` and `resume` as two separate `cargo run` invocations
//! and asserts the resumed weights equal an uninterrupted run's.

use indoor_semantics::mobility::LabeledSequence;
use indoor_semantics::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

const SEED: u64 = 23;

fn training_data() -> (IndoorSpace, Vec<LabeledSequence>) {
    let mut rng = StdRng::seed_from_u64(1);
    let space = BuildingGenerator::small_office()
        .generate(&mut rng)
        .unwrap();
    let dataset = Dataset::generate(
        "ckpt",
        &space,
        SimulationConfig::quick(),
        PositioningConfig::synthetic(8.0, 2.0),
        None,
        6,
        &mut rng,
    );
    (space, dataset.sequences)
}

fn weights_hex(weights: &Weights) -> String {
    weights
        .0
        .iter()
        .map(|w| format!("{:016x}", w.to_bits()))
        .collect::<Vec<_>>()
        .join("")
}

/// The uninterrupted reference: train to completion in one go.
fn train_whole(space: &IndoorSpace, seqs: &[LabeledSequence]) -> Weights {
    Trainer::new(space, C2mnConfig::quick_test())
        .seed(SEED)
        .run(seqs)
        .unwrap()
        .model
        .weights()
        .clone()
}

/// The "interrupted process": two iterations, checkpointed to disk.
fn save(space: &IndoorSpace, seqs: &[LabeledSequence], dir: &Path) {
    Trainer::new(space, C2mnConfig::quick_test())
        .seed(SEED)
        .checkpoint_to(dir.join("train.ckpt"))
        .observer(|p| {
            if p.iteration == 2 {
                TrainControl::Stop
            } else {
                TrainControl::Continue
            }
        })
        .run(seqs)
        .unwrap();
}

/// The "resuming process": nothing carried over but the file + the seed.
fn resume(space: &IndoorSpace, seqs: &[LabeledSequence], dir: &Path) -> Weights {
    Trainer::new(space, C2mnConfig::quick_test())
        .seed(SEED)
        .resume_from(dir.join("train.ckpt"))
        .unwrap()
        .run(seqs)
        .unwrap()
        .model
        .weights()
        .clone()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (space, seqs) = training_data();
    match args.get(1).map(String::as_str) {
        Some("save") => {
            let dir = Path::new(&args[2]);
            std::fs::create_dir_all(dir).unwrap();
            save(&space, &seqs, dir);
            println!(
                "checkpointed 2 iterations to {}",
                dir.join("train.ckpt").display()
            );
        }
        Some("resume") => {
            let dir = Path::new(&args[2]);
            let weights = resume(&space, &seqs, dir);
            std::fs::write(dir.join("weights.hex"), weights_hex(&weights)).unwrap();
            println!("resumed and finished; weights written to weights.hex");
        }
        Some("reference") => {
            let dir = Path::new(&args[2]);
            std::fs::create_dir_all(dir).unwrap();
            let weights = train_whole(&space, &seqs);
            std::fs::write(dir.join("reference.hex"), weights_hex(&weights)).unwrap();
            println!("uninterrupted reference weights written to reference.hex");
        }
        None => {
            // Self-contained smoke: interrupt + resume in one process.
            let dir = std::env::temp_dir().join(format!("ism-ckpt-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let whole = train_whole(&space, &seqs);
            save(&space, &seqs, &dir);
            let resumed = resume(&space, &seqs, &dir);
            assert_eq!(
                weights_hex(&resumed),
                weights_hex(&whole),
                "resumed training must be byte-identical to uninterrupted"
            );
            println!(
                "interrupted-at-2-then-resumed == uninterrupted, bit for bit:\n  {}",
                weights_hex(&whole)
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
        Some(other) => {
            eprintln!("unknown mode {other:?}; use save <dir> | resume <dir> | reference <dir>");
            std::process::exit(2);
        }
    }
}
