//! Indoor space model: floorplans, partitions, doors, semantic regions,
//! indoor topology and distances.
//!
//! This crate implements the indoor substrate the C2MN paper depends on:
//!
//! * an indoor venue decomposed into rectangular **partitions** (rooms,
//!   hallway segments) connected by **doors** (following the decomposition
//!   of Xie et al. [25]),
//! * non-overlapping **semantic regions**, each a union of partitions
//!   (shops, corridor stretches, staircases),
//! * the **accessibility door graph** and the **minimum indoor walking
//!   distance** (MIWD, Lu et al. [17]) with precomputed door-to-door
//!   shortest paths,
//! * expected region-to-region MIWD (the `E[d_I(p,q)]` term used by the
//!   space-transition and spatial-consistency features),
//! * a per-floor grid index for point→partition lookup and candidate-region
//!   retrieval,
//! * synthetic **building generators** (an office preset for tests, a 7-floor
//!   mall preset standing in for the paper's real venue, and a 10-floor
//!   "Vita-like" preset matching the synthetic-data experiments).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod generator;
mod graph;
mod ids;
mod index;
mod model;
mod persist;
mod space;

pub use error::IndoorError;
pub use generator::{BuildingGenerator, GeneratorConfig};
pub use graph::{DoorGraph, PlannedPath};
pub use ids::{DoorId, PartitionId, RegionId};
pub use index::FloorGrid;
pub use model::{Door, DoorKind, IndoorPoint, Partition, Region, RegionKind};
pub use space::IndoorSpace;
