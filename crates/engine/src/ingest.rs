//! Pipelined ingest core shared by every session of one engine.
//!
//! The engine used to decode strictly in drained batches: pushes buffered
//! in a per-session queue and nothing ran until the queue filled. This
//! module holds the state that makes ingest *pipelined* and *concurrent*
//! instead:
//!
//! * one engine-wide [`SubmissionQueue`] stamps every pushed sequence with
//!   a global index in push order, no matter which session pushed it;
//! * sequences are handed to **idle workers immediately**
//!   ([`WorkerPool::try_spawn`]) so decoding overlaps with arrival, while
//!   a filled queue still falls back to a synchronous batch fan-out — the
//!   memory bound is unchanged;
//! * decode results land in a **reorder buffer** ([`IngestState::ready`])
//!   and only the contiguous prefix is appended to the store, in global
//!   index order — so the sealed store stays byte-identical to offline
//!   annotation regardless of which worker finished first.
//!
//! Lock order: `state` before `store` ([`IngestShared::commit_ready`]
//! nests the store write lock inside the state lock); nothing ever takes
//! `state` while holding `store`.
//!
//! [`WorkerPool::try_spawn`]: ism_runtime::WorkerPool::try_spawn

use ism_mobility::{MobilitySemantics, PositioningRecord};
use ism_queries::ShardedSemanticsStore;
use ism_runtime::SubmissionQueue;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::BTreeMap;

/// One submitted-but-undecoded sequence: `(object_id, p-records)`.
pub(crate) type PendingItem = (u64, Vec<PositioningRecord>);

/// The ingest state every session of one engine shares.
pub(crate) struct IngestShared {
    /// Submission/decode ledger (see the module docs for lock order).
    pub(crate) state: Mutex<IngestState>,
    /// Signalled on every commit and every in-flight decrement.
    pub(crate) progress: Condvar,
    /// The live store: queries take `read`, commits and seals take
    /// `write`.
    pub(crate) store: RwLock<ShardedSemanticsStore>,
}

/// The mutable ledger under [`IngestShared::state`].
pub(crate) struct IngestState {
    /// Engine-wide submission queue: one global numbering across all
    /// concurrent sessions, stamped in push order.
    pub(crate) queue: SubmissionQueue<PendingItem>,
    /// Decode tasks handed to workers (or running inline) but not yet
    /// committed.
    pub(crate) inflight: usize,
    /// Out-of-order decode results waiting for their predecessors:
    /// `global index → (object_id, m-semantics)`.
    pub(crate) ready: BTreeMap<u64, (u64, Vec<MobilitySemantics>)>,
    /// Global index of the next sequence to append to the store.
    pub(crate) next_commit: u64,
    /// A pipelined decode task panicked; surfaced by the next flush.
    pub(crate) panicked: bool,
}

impl IngestShared {
    pub(crate) fn new(
        store: ShardedSemanticsStore,
        queue_capacity: usize,
        first_index: u64,
    ) -> Self {
        IngestShared {
            state: Mutex::new(IngestState {
                queue: SubmissionQueue::starting_at(queue_capacity, first_index),
                inflight: 0,
                ready: BTreeMap::new(),
                next_commit: first_index,
                panicked: false,
            }),
            progress: Condvar::new(),
            store: RwLock::new(store),
        }
    }

    /// Appends the contiguous prefix of `ready` to the store in global
    /// index order — the reorder barrier that keeps the sealed store
    /// byte-identical to offline annotation no matter which worker
    /// finished first. The store write lock is only taken when there is
    /// something to commit.
    pub(crate) fn commit_ready(&self, state: &mut IngestState) {
        let mut store = None;
        while let Some((object_id, semantics)) = state.ready.remove(&state.next_commit) {
            store
                .get_or_insert_with(|| self.store.write())
                .append(object_id, semantics);
            state.next_commit += 1;
        }
    }
}
