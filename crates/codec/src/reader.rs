//! Bounds-checked cursor over encoded bytes.

use crate::error::CodecError;
use crate::primitives::{from_ordered_bits, unzigzag};

/// A cursor over an encoded buffer where every read is bounds-checked and
/// every length prefix is validated against the remaining input *before*
/// any allocation happens. This is the only way `ism-codec` reads bytes, so
/// corrupt or hostile input yields a typed [`CodecError`] — never a panic,
/// never an attempt to allocate a bogus multi-gigabyte buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts a reader at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset from the start of the buffer.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Takes the next `n` bytes, or fails with [`CodecError::Truncated`].
    // analyzer: allow(lib-panic) the range is guarded by the remaining-length check above it
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if n > self.remaining() {
            return Err(CodecError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u16`.
    // analyzer: allow(lib-panic) `bytes(2)` returned a length-2 slice
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    // analyzer: allow(lib-panic) `bytes(4)` returned a length-4 slice
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    // analyzer: allow(lib-panic) `bytes(8)` returned a length-8 slice
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a raw IEEE-754 bit pattern written by
    /// [`crate::write_f64_bits`].
    pub fn f64_bits(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an f64 stored in [`crate::ordered_bits`] form.
    pub fn ordered_f64(&mut self) -> Result<f64, CodecError> {
        Ok(from_ordered_bits(self.u64()?))
    }

    /// Reads a `bool` encoded as a single `0`/`1` byte.
    pub fn boolean(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::InvalidValue { what: "bool tag" }),
        }
    }

    /// Reads an LEB128 varint. Rejects encodings longer than 10 bytes or
    /// overflowing 64 bits (overlong encodings of small values are
    /// accepted: the writer never produces them, but they are harmless).
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(CodecError::InvalidValue {
                    what: "varint overflow",
                });
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte < 0x80 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::InvalidValue {
                    what: "varint too long",
                });
            }
        }
    }

    /// Reads a ZigZag-ed signed varint.
    pub fn signed_varint(&mut self) -> Result<i64, CodecError> {
        Ok(unzigzag(self.varint()?))
    }

    /// Reads a varint **byte length** and validates it against the
    /// remaining input. The returned value is always safe to pass to
    /// [`Reader::bytes`] or to use as an allocation size.
    pub fn len_prefix(&mut self) -> Result<usize, CodecError> {
        let len = self.varint()?;
        let len = usize::try_from(len).map_err(|_| CodecError::InvalidValue {
            what: "length prefix overflows usize",
        })?;
        if len > self.remaining() {
            return Err(CodecError::Truncated {
                needed: len,
                available: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Reads a varint **element count** for a container whose elements each
    /// occupy at least `min_item_size` bytes (≥ 1 for every encodable
    /// type). The count is validated against the remaining input before the
    /// caller allocates, so a corrupt count of `u64::MAX` fails here
    /// instead of OOM-ing in `Vec::with_capacity`.
    pub fn count_prefix(&mut self, min_item_size: usize) -> Result<usize, CodecError> {
        let count = self.varint()?;
        let count = usize::try_from(count).map_err(|_| CodecError::InvalidValue {
            what: "count prefix overflows usize",
        })?;
        let min_bytes =
            count
                .checked_mul(min_item_size.max(1))
                .ok_or(CodecError::InvalidValue {
                    what: "count prefix overflows",
                })?;
        if min_bytes > self.remaining() {
            return Err(CodecError::Truncated {
                needed: min_bytes,
                available: self.remaining(),
            });
        }
        Ok(count)
    }

    /// Asserts the buffer has been fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes {
                trailing: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::write_varint;

    #[test]
    fn reads_are_bounds_checked() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(matches!(
            r.u32(),
            Err(CodecError::Truncated {
                needed: 4,
                available: 2
            })
        ));
        // A failed read consumes nothing.
        assert_eq!(r.u16().unwrap(), u16::from_le_bytes([2, 3]));
        assert!(r.finish().is_ok());
    }

    #[test]
    fn varint_rejects_overflow_and_overlength() {
        // 10 continuation bytes with a large final byte: overflows u64.
        let buf = [0xFF; 9].iter().copied().chain([0x7F]).collect::<Vec<_>>();
        assert!(matches!(
            Reader::new(&buf).varint(),
            Err(CodecError::InvalidValue { .. })
        ));
        // u64::MAX itself round-trips.
        let mut ok = Vec::new();
        write_varint(&mut ok, u64::MAX);
        assert_eq!(Reader::new(&ok).varint().unwrap(), u64::MAX);
    }

    #[test]
    fn len_prefix_validates_before_allocation() {
        // Declared length of ~u64::MAX/2 with 1 byte of actual payload.
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX / 2);
        buf.push(0xAB);
        let err = Reader::new(&buf).len_prefix().unwrap_err();
        assert!(matches!(
            err,
            CodecError::Truncated { .. } | CodecError::InvalidValue { .. }
        ));
    }

    #[test]
    fn count_prefix_guards_capacity() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1_000_000);
        let err = Reader::new(&buf).count_prefix(8).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }
}
