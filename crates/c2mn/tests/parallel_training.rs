//! Determinism + resume property suite for the [`Trainer`] session API.
//!
//! Pins the training determinism contract:
//!
//! * pool-parallel training at thread counts {1, 2, 4} learns weights
//!   **byte-identical** to the single-threaded sequential reference, for
//!   random datasets, seeds, and model structures;
//! * an interrupted run (observer early-stop) resumed from its
//!   [`TrainCheckpoint`] equals the uninterrupted run byte-exactly;
//! * [`Trainer::initial_weights`] is a pure warm start: explicitly passing
//!   the default initialisation changes nothing, and two warm-started runs
//!   from the same checkpointed weights agree run-to-run.

use ism_c2mn::{
    C2mnConfig, FirstConfigured, ModelStructure, TrainControl, TrainOutcome, Trainer, Weights,
};
use ism_indoor::{BuildingGenerator, IndoorSpace};
use ism_mobility::{Dataset, LabeledSequence, PositioningConfig, SimulationConfig};
use ism_runtime::WorkerPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Parameters of one random training case.
#[derive(Debug, Clone, Copy)]
struct Case {
    data_seed: u64,
    train_seed: u64,
    objects: usize,
    structure: u8,
    first_configured: u8,
    max_iter: usize,
}

fn structure_of(case: &Case) -> ModelStructure {
    match case.structure % 4 {
        0 => ModelStructure::full(),
        1 => ModelStructure::cmn(),
        2 => ModelStructure::no_transitions(),
        _ => ModelStructure::no_space_segmentation(),
    }
}

fn config_of(case: &Case) -> C2mnConfig {
    let mut config = C2mnConfig::quick_test().with_structure(structure_of(case));
    config.max_iter = case.max_iter;
    config.first_configured = if case.first_configured == 0 {
        FirstConfigured::Events
    } else {
        FirstConfigured::Regions
    };
    config
}

fn training_data(case: &Case) -> (IndoorSpace, Vec<LabeledSequence>) {
    let mut rng = StdRng::seed_from_u64(case.data_seed);
    let space = BuildingGenerator::small_office()
        .generate(&mut rng)
        .unwrap();
    let dataset = Dataset::generate(
        "pt",
        &space,
        SimulationConfig::quick(),
        PositioningConfig::synthetic(8.0, 2.0),
        None,
        case.objects,
        &mut rng,
    );
    (space, dataset.sequences)
}

fn weight_bits(outcome: &TrainOutcome<'_>) -> [u64; 12] {
    outcome.model.weights().0.map(f64::to_bits)
}

prop_compose! {
    fn arb_case()(
        data_seed in 0u64..1_000,
        train_seed in 0u64..u64::MAX / 2,
        objects in 2usize..6,
        structure in 0u8..8,
        first_configured in 0u8..2,
        max_iter in 2usize..6,
    ) -> Case {
        Case { data_seed, train_seed, objects, structure, first_configured, max_iter }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pool-parallel training equals the single-threaded sequential
    /// reference byte-exactly at every thread count.
    #[test]
    fn parallel_weights_equal_sequential_reference(case in arb_case()) {
        let (space, seqs) = training_data(&case);
        let config = config_of(&case);
        let reference = Trainer::new(&space, config.clone())
            .seed(case.train_seed)
            .run(&seqs)
            .unwrap();
        for threads in THREAD_COUNTS {
            let pool = WorkerPool::new(threads);
            let got = Trainer::new(&space, config.clone())
                .seed(case.train_seed)
                .pool(&pool)
                .run(&seqs)
                .unwrap();
            prop_assert_eq!(
                weight_bits(&got),
                weight_bits(&reference),
                "weights diverged at threads = {}",
                threads
            );
            prop_assert_eq!(got.report.iterations, reference.report.iterations);
            prop_assert_eq!(got.report.converged, reference.report.converged);
        }
    }

    /// An observer-interrupted run resumed from its checkpoint produces
    /// the uninterrupted run's weights byte-exactly — at any thread count.
    #[test]
    fn checkpoint_resume_equals_uninterrupted_run(case in arb_case()) {
        let (space, seqs) = training_data(&case);
        let config = config_of(&case);
        let whole = Trainer::new(&space, config.clone())
            .seed(case.train_seed)
            .run(&seqs)
            .unwrap();
        // Stop somewhere strictly inside the run (if it lasted > 1 iter).
        let stop_after = (whole.report.iterations / 2).max(1);
        let interrupted = Trainer::new(&space, config.clone())
            .seed(case.train_seed)
            .observer(|p| {
                if p.iteration >= stop_after {
                    TrainControl::Stop
                } else {
                    TrainControl::Continue
                }
            })
            .run(&seqs)
            .unwrap();
        prop_assert!(interrupted.report.iterations <= whole.report.iterations);
        for threads in THREAD_COUNTS {
            let pool = WorkerPool::new(threads);
            let resumed = Trainer::new(&space, config.clone())
                .seed(case.train_seed)
                .pool(&pool)
                .checkpoint(interrupted.checkpoint.clone())
                .run(&seqs)
                .unwrap();
            prop_assert_eq!(
                weight_bits(&resumed),
                weight_bits(&whole),
                "resume diverged at threads = {}",
                threads
            );
            // The resumed run continues the global iteration numbering.
            prop_assert_eq!(resumed.report.iterations, whole.report.iterations);
            prop_assert_eq!(resumed.report.converged, whole.report.converged);
        }
    }

    /// `initial_weights` is a pure warm start: explicitly passing the
    /// default uniform initialisation is a no-op, and warm-started runs
    /// are themselves deterministic.
    #[test]
    fn initial_weights_warm_start_is_deterministic(case in arb_case()) {
        let (space, seqs) = training_data(&case);
        let config = config_of(&case);
        let default_run = Trainer::new(&space, config.clone())
            .seed(case.train_seed)
            .run(&seqs)
            .unwrap();
        let explicit = Trainer::new(&space, config.clone())
            .seed(case.train_seed)
            .initial_weights(Weights::uniform(0.5))
            .run(&seqs)
            .unwrap();
        prop_assert_eq!(weight_bits(&explicit), weight_bits(&default_run));

        // Warm-starting from checkpointed weights (e.g. the previous
        // deployment's parameters) is reproducible across runs and thread
        // counts.
        let warm = default_run.checkpoint.weights().clone();
        let reference = Trainer::new(&space, config.clone())
            .seed(case.train_seed ^ 0xD1CE)
            .initial_weights(warm.clone())
            .run(&seqs)
            .unwrap();
        for threads in THREAD_COUNTS {
            let pool = WorkerPool::new(threads);
            let again = Trainer::new(&space, config.clone())
                .seed(case.train_seed ^ 0xD1CE)
                .pool(&pool)
                .initial_weights(warm.clone())
                .run(&seqs)
                .unwrap();
            prop_assert_eq!(
                weight_bits(&again),
                weight_bits(&reference),
                "warm start diverged at threads = {}",
                threads
            );
        }
    }
}
