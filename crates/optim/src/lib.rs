//! Numerical optimisation: limited-memory BFGS with line search.
//!
//! The C2MN paper estimates its clique-template weights by minimising a
//! (negative, regularised) pseudo-likelihood with the quasi-Newton method
//! **L-BFGS** (Liu & Nocedal 1989). No optimisation crate exists in the
//! sanctioned dependency set, so this crate implements:
//!
//! * the [`Objective`] trait (value + gradient evaluation),
//! * [`lbfgs::minimize`] — L-BFGS with two-loop recursion and a
//!   backtracking Armijo line search,
//! * [`gradcheck::max_gradient_error`] — central-difference gradient
//!   verification used by tests of the learning code.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod gradcheck;
pub mod lbfgs;
mod objective;

pub use lbfgs::{minimize, LbfgsParams, LbfgsResult, TerminationReason};
pub use objective::Objective;
