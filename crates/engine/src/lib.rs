//! Unified streaming engine over annotation, storage, and semantic
//! queries.
//!
//! The paper's pipeline — decode p-sequences into m-semantics, accumulate
//! them per object, serve TkPRQ/TkFRPQ — used to be exposed as
//! disconnected pieces the caller wired by hand (`C2mn::train` →
//! `BatchAnnotator` → `ShardedStoreBuilder` → free query functions, each
//! taking its own `WorkerPool`), and ingestion was strictly offline. This
//! crate redesigns that surface around one owning type:
//!
//! * [`SemanticsEngine`] — owns the trained model, the worker pool, and a
//!   **live** [`ShardedSemanticsStore`]; queries are methods
//!   ([`tk_prq`](SemanticsEngine::tk_prq) /
//!   [`tk_frpq`](SemanticsEngine::tk_frpq)) over everything sealed so far.
//! * [`EngineBuilder`] — threads, shards, base seed, submission-queue
//!   capacity, optional warm-start store; [`build`](EngineBuilder::build)
//!   from a trained model or [`train`](EngineBuilder::train) in one step.
//! * [`IngestSession`] — the streaming front-end: p-sequences go in
//!   incrementally (bounded queue feeding the pool), sealed m-semantics
//!   come out the other end, **byte-identical** to the offline
//!   `BatchAnnotator` reference for any thread count and any push
//!   chunking.
//! * [`EngineError`] — the unified error surface replacing the panicking
//!   paths of the hand-wired pipeline.
//!
//! ```
//! use ism_engine::EngineBuilder;
//! use ism_c2mn::{C2mn, C2mnConfig, Weights};
//! use ism_indoor::BuildingGenerator;
//! use ism_mobility::{Dataset, PositioningConfig, SimulationConfig, TimePeriod};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let venue = BuildingGenerator::small_office().generate(&mut rng).unwrap();
//! let dataset = Dataset::generate(
//!     "demo", &venue, SimulationConfig::quick(),
//!     PositioningConfig::synthetic(8.0, 1.5), None, 4, &mut rng);
//! let model = C2mn::from_weights(&venue, C2mnConfig::quick_test(), Weights::uniform(1.0));
//!
//! let mut engine = EngineBuilder::new()
//!     .threads(2)
//!     .shards(4)
//!     .base_seed(42)
//!     .build(model)
//!     .unwrap();
//!
//! // Stream p-sequences in as they "arrive"; seal to publish.
//! let mut session = engine.ingest();
//! for seq in &dataset.sequences {
//!     session.push(seq.object_id, seq.positioning().collect());
//! }
//! let ingested = session.seal();
//! assert_eq!(ingested, dataset.sequences.len() as u64);
//!
//! // Queries are methods over everything sealed so far.
//! let regions: Vec<_> = venue.regions().iter().map(|r| r.id).collect();
//! let top = engine.tk_prq(&regions, 3, TimePeriod::new(0.0, 1e6));
//! assert!(top.len() <= 3);
//! ```

#![deny(missing_docs)]

mod error;
mod session;

pub use error::EngineError;
pub use session::IngestSession;

use ism_c2mn::{BatchAnnotator, C2mn, C2mnConfig, Trainer};
use ism_indoor::{IndoorSpace, RegionId};
use ism_mobility::{
    LabeledSequence, MobilityEvent, MobilitySemantics, PositioningRecord, TimePeriod,
};
use ism_queries::{tk_frpq_sharded, tk_prq_sharded, ShardedSemanticsStore, DEFAULT_SHARDS};
use ism_runtime::WorkerPool;
use rand::Rng;

/// Default capacity of an ingest session's submission queue: how many
/// submitted-but-undecoded p-sequences buffer before a chunk fans out.
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

/// Configures and constructs a [`SemanticsEngine`].
///
/// Every knob has a sensible default: threads = available parallelism,
/// shards = [`DEFAULT_SHARDS`], base seed = 0, queue capacity =
/// [`DEFAULT_QUEUE_CAPACITY`], no warm-start store.
#[derive(Debug, Clone, Default)]
#[must_use = "an EngineBuilder does nothing until `build` or `train`"]
pub struct EngineBuilder {
    threads: Option<usize>,
    shards: Option<usize>,
    base_seed: u64,
    queue_capacity: Option<usize>,
    first_sequence_index: u64,
    initial: Option<ShardedSemanticsStore>,
}

impl EngineBuilder {
    /// Creates a builder with every knob at its default.
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Worker threads for decoding, sealing, and query fan-out (clamped to
    /// ≥ 1). Never changes any result — see the determinism contract.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Shard count of the live store. Never changes query results.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Base seed of the per-sequence RNG derivation
    /// (`sequence_seed(base_seed, global_sequence_index)`).
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Capacity of each ingest session's submission queue (clamped to
    /// ≥ 1): the most submitted-but-undecoded sequences ever buffered.
    /// Never changes any result, only memory/latency.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Global index of the first sequence the engine will ingest — set it
    /// when resuming a numbered stream so seeds continue rather than
    /// restart (defaults to 0).
    pub fn first_sequence_index(mut self, index: u64) -> Self {
        self.first_sequence_index = index;
        self
    }

    /// Warm-starts the engine with previously annotated data. The store's
    /// shard count must agree with [`shards`](EngineBuilder::shards) if
    /// both are given; otherwise the store's count wins.
    pub fn initial_store(mut self, store: ShardedSemanticsStore) -> Self {
        self.initial = Some(store);
        self
    }

    /// Builds an engine around an already-trained model.
    pub fn build<'a>(self, model: C2mn<'a>) -> Result<SemanticsEngine<'a>, EngineError> {
        let pool = self.pool();
        self.build_with_pool(model, pool)
    }

    /// The worker pool this builder's engine will own.
    fn pool(&self) -> WorkerPool {
        match self.threads {
            Some(threads) => WorkerPool::new(threads),
            None => WorkerPool::with_available_parallelism(),
        }
    }

    fn build_with_pool<'a>(
        self,
        model: C2mn<'a>,
        pool: WorkerPool,
    ) -> Result<SemanticsEngine<'a>, EngineError> {
        let store = match self.initial {
            Some(mut store) => {
                if let Some(shards) = self.shards {
                    if store.num_shards() != shards {
                        return Err(ism_queries::StoreError::ShardCountMismatch {
                            left: shards,
                            right: store.num_shards(),
                        }
                        .into());
                    }
                }
                // A handed-over store may carry unsealed appends.
                store.seal_with(&pool);
                store
            }
            None => ShardedSemanticsStore::new(self.shards.unwrap_or(DEFAULT_SHARDS)),
        };
        Ok(SemanticsEngine {
            model,
            pool,
            base_seed: self.base_seed,
            queue_capacity: self.queue_capacity.unwrap_or(DEFAULT_QUEUE_CAPACITY).max(1),
            store,
            next_index: self.first_sequence_index,
        })
    }

    /// Trains a C2MN on `train` (Algorithm 1) and builds an engine around
    /// it in one step.
    ///
    /// Training runs on the engine's own [`WorkerPool`] — the per-sequence
    /// MCMC sampling fans out over the same workers that will later serve
    /// decoding and queries, with the base seed drawn from `rng`. Thread
    /// count never changes the learned weights (the [`Trainer`]
    /// determinism contract), so this is purely a wall-clock knob.
    pub fn train<'a, R: Rng + ?Sized>(
        self,
        space: &'a IndoorSpace,
        train: &[LabeledSequence],
        config: &C2mnConfig,
        rng: &mut R,
    ) -> Result<SemanticsEngine<'a>, EngineError> {
        let pool = self.pool();
        let outcome = Trainer::new(space, config.clone())
            .seed(rng.random::<u64>())
            .pool(&pool)
            .run(train)?;
        self.build_with_pool(outcome.model, pool)
    }
}

/// The unified annotation/storage/query engine.
///
/// Owns the trained [`C2mn`], the [`WorkerPool`], and a live
/// [`ShardedSemanticsStore`]. Data enters through streaming
/// [`ingest`](SemanticsEngine::ingest) sessions (or the offline
/// [`annotate_batch`](SemanticsEngine::annotate_batch) /
/// [`label_batch`](SemanticsEngine::label_batch) helpers) and is served by
/// the query methods.
///
/// ## Determinism contract
///
/// The engine inherits — and composes — the contracts of its layers:
/// global sequence `i` decodes with `sequence_seed(base_seed, i)`
/// regardless of worker, session chunking, or queue capacity; objects hash
/// whole into shards; per-shard query partials merge commutatively. The
/// sealed store and every query answer are therefore **byte-identical for
/// any thread count, shard count, and push chunking**, equal to the
/// offline single-threaded reference.
#[derive(Debug)]
pub struct SemanticsEngine<'a> {
    model: C2mn<'a>,
    pool: WorkerPool,
    base_seed: u64,
    queue_capacity: usize,
    store: ShardedSemanticsStore,
    next_index: u64,
}

impl<'a> SemanticsEngine<'a> {
    /// A fresh [`EngineBuilder`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The owned trained model.
    pub fn model(&self) -> &C2mn<'a> {
        &self.model
    }

    /// The worker pool shared by decoding, sealing, and queries.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The base seed of the per-sequence RNG derivation.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The submission-queue capacity of ingest sessions.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Shard count of the live store.
    pub fn num_shards(&self) -> usize {
        self.store.num_shards()
    }

    /// Sequences ingested over the engine's lifetime (the global index of
    /// the next pushed sequence).
    pub fn sequences_ingested(&self) -> u64 {
        self.next_index
    }

    /// Distinct objects with sealed m-semantics.
    pub fn num_objects(&self) -> usize {
        self.store.len()
    }

    /// Read access to the live store (sealed data).
    pub fn store(&self) -> &ShardedSemanticsStore {
        &self.store
    }

    /// Hands the live store over to the caller, consuming the engine
    /// (pass it to [`EngineBuilder::initial_store`] to resume later).
    pub fn into_store(self) -> ShardedSemanticsStore {
        self.store
    }

    /// The sealed m-semantics of `object_id`, if any.
    pub fn semantics_of(&self, object_id: u64) -> Option<&[MobilitySemantics]> {
        self.store.get(object_id)
    }

    /// Opens a streaming ingest session. The session borrows the engine
    /// exclusively; sealing (or dropping) it publishes everything pushed.
    pub fn ingest(&mut self) -> IngestSession<'_, 'a> {
        IngestSession::new(self)
    }

    /// Offline convenience: labels a batch of p-sequences with per-record
    /// `(region, event)` pairs on the engine's pool. Does not touch the
    /// store or the global sequence counter.
    pub fn label_batch(
        &self,
        sequences: &[Vec<PositioningRecord>],
    ) -> Vec<Vec<(RegionId, MobilityEvent)>> {
        self.annotator().label_batch(sequences)
    }

    /// Offline convenience: annotates a batch into merged m-semantics on
    /// the engine's pool. Does not touch the store or the global sequence
    /// counter.
    pub fn annotate_batch(
        &self,
        sequences: &[Vec<PositioningRecord>],
    ) -> Vec<Vec<MobilitySemantics>> {
        self.annotator().annotate_batch(sequences)
    }

    /// Top-k popular regions among `query` within `qt`, over all sealed
    /// data, evaluated on the engine's pool.
    pub fn tk_prq(&self, query: &[RegionId], k: usize, qt: TimePeriod) -> Vec<(RegionId, usize)> {
        tk_prq_sharded(&self.store, query, k, qt, &self.pool)
    }

    /// Top-k frequently co-visited region pairs among `query` within `qt`,
    /// over all sealed data, evaluated on the engine's pool.
    pub fn tk_frpq(
        &self,
        query: &[RegionId],
        k: usize,
        qt: TimePeriod,
    ) -> Vec<((RegionId, RegionId), usize)> {
        tk_frpq_sharded(&self.store, query, k, qt, &self.pool)
    }

    fn annotator(&self) -> BatchAnnotator<'_, 'a> {
        BatchAnnotator::new(&self.model, self.pool.threads(), self.base_seed)
    }

    /// Decodes one drained submission batch (`(global index, (object id,
    /// records))` in index order) and appends the m-semantics to the
    /// store's pending segments.
    pub(crate) fn decode_chunk(&mut self, batch: Vec<(u64, (u64, Vec<PositioningRecord>))>) {
        let Some(&(first, _)) = batch.first() else {
            return;
        };
        let mut object_ids = Vec::with_capacity(batch.len());
        let mut sequences = Vec::with_capacity(batch.len());
        for (index, (object_id, records)) in batch {
            debug_assert_eq!(index, first + object_ids.len() as u64);
            object_ids.push(object_id);
            sequences.push(records);
        }
        let annotated = self.annotator().annotate_batch_at(first, &sequences);
        for (object_id, semantics) in object_ids.iter().zip(annotated) {
            self.store.append(*object_id, semantics);
        }
        self.next_index = first + object_ids.len() as u64;
    }

    /// Seals the store's pending segments on the engine's pool.
    pub(crate) fn seal_store(&mut self) {
        self.store.seal_with(&self.pool);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_c2mn::Weights;
    use ism_indoor::BuildingGenerator;
    use ism_mobility::{Dataset, PositioningConfig, SimulationConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ism_indoor::IndoorSpace, Dataset) {
        let mut rng = StdRng::seed_from_u64(1);
        let space = BuildingGenerator::small_office()
            .generate(&mut rng)
            .unwrap();
        let dataset = Dataset::generate(
            "e",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(8.0, 1.5),
            None,
            6,
            &mut rng,
        );
        (space, dataset)
    }

    fn model(space: &ism_indoor::IndoorSpace) -> C2mn<'_> {
        C2mn::from_weights(space, C2mnConfig::quick_test(), Weights::uniform(1.0))
    }

    #[test]
    fn builder_defaults_are_sane() {
        let (space, _) = setup();
        let engine = EngineBuilder::new().build(model(&space)).unwrap();
        assert!(engine.threads() >= 1);
        assert_eq!(engine.num_shards(), DEFAULT_SHARDS);
        assert_eq!(engine.base_seed(), 0);
        assert_eq!(engine.queue_capacity(), DEFAULT_QUEUE_CAPACITY);
        assert_eq!(engine.sequences_ingested(), 0);
        assert_eq!(engine.num_objects(), 0);
        // Queue capacity clamps to ≥ 1.
        let engine = EngineBuilder::new()
            .queue_capacity(0)
            .build(model(&space))
            .unwrap();
        assert_eq!(engine.queue_capacity(), 1);
    }

    #[test]
    fn builder_trains_on_the_engine_pool_with_thread_invariant_weights() {
        let (space, dataset) = setup();
        let config = C2mnConfig::quick_test();
        // Sequential reference: `C2mn::train` draws the same base seed
        // from an identically-seeded rng and samples on one thread.
        let mut rng = StdRng::seed_from_u64(77);
        let reference = C2mn::train(&space, &dataset.sequences, &config, &mut rng).unwrap();
        for threads in [1, 2, 4] {
            let mut rng = StdRng::seed_from_u64(77);
            let engine = EngineBuilder::new()
                .threads(threads)
                .train(&space, &dataset.sequences, &config, &mut rng)
                .unwrap();
            assert_eq!(engine.threads(), threads);
            assert_eq!(
                engine.model().weights().0.map(f64::to_bits),
                reference.weights().0.map(f64::to_bits),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn training_failures_surface_as_engine_errors() {
        let (space, _) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let err = EngineBuilder::new()
            .train(&space, &[], &C2mnConfig::quick_test(), &mut rng)
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::Train(ism_c2mn::TrainError::EmptyTrainingSet)
        );
    }

    #[test]
    fn initial_store_shard_mismatch_is_an_error() {
        let (space, _) = setup();
        let err = EngineBuilder::new()
            .shards(4)
            .initial_store(ShardedSemanticsStore::new(3))
            .build(model(&space))
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::Store(ism_queries::StoreError::ShardCountMismatch { left: 4, right: 3 })
        );
        // Without an explicit shard count the store's count wins.
        let engine = EngineBuilder::new()
            .initial_store(ShardedSemanticsStore::new(3))
            .build(model(&space))
            .unwrap();
        assert_eq!(engine.num_shards(), 3);
    }

    #[test]
    fn sessions_accumulate_and_seeds_continue() {
        let (space, dataset) = setup();
        let sequences: Vec<Vec<PositioningRecord>> = dataset
            .sequences
            .iter()
            .map(|s| s.positioning().collect())
            .collect();
        let ids: Vec<u64> = dataset.sequences.iter().map(|s| s.object_id).collect();
        let split = sequences.len() / 2;

        // Offline reference over the whole stream in one go.
        let reference =
            BatchAnnotator::new(&model(&space), 1, 9).annotate_into_store(&sequences, &ids, 4);

        // Two sessions, second continuing the first's numbering.
        let mut engine = EngineBuilder::new()
            .threads(2)
            .shards(4)
            .base_seed(9)
            .queue_capacity(2)
            .build(model(&space))
            .unwrap();
        let mut s1 = engine.ingest();
        s1.push_batch(
            ids[..split]
                .iter()
                .copied()
                .zip(sequences[..split].iter().cloned()),
        );
        assert_eq!(s1.seal(), split as u64);
        assert_eq!(engine.sequences_ingested(), split as u64);
        let mut s2 = engine.ingest();
        s2.push_batch(
            ids[split..]
                .iter()
                .copied()
                .zip(sequences[split..].iter().cloned()),
        );
        drop(s2); // drop seals too
        assert_eq!(engine.sequences_ingested(), sequences.len() as u64);

        for s in 0..4 {
            let want: Vec<_> = reference
                .iter_shard(s)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            let got: Vec<_> = engine
                .store()
                .iter_shard(s)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            assert_eq!(got, want, "shard {s}");
        }
    }

    #[test]
    fn engine_queries_match_free_functions() {
        let (space, dataset) = setup();
        let sequences: Vec<Vec<PositioningRecord>> = dataset
            .sequences
            .iter()
            .map(|s| s.positioning().collect())
            .collect();
        let ids: Vec<u64> = dataset.sequences.iter().map(|s| s.object_id).collect();
        let mut engine = EngineBuilder::new()
            .threads(2)
            .shards(3)
            .base_seed(5)
            .build(model(&space))
            .unwrap();
        let mut session = engine.ingest();
        session.push_batch(ids.iter().copied().zip(sequences.iter().cloned()));
        session.seal();

        let regions: Vec<RegionId> = space.regions().iter().map(|r| r.id).collect();
        let qt = TimePeriod::new(0.0, 1e9);
        let pool = WorkerPool::new(1);
        assert_eq!(
            engine.tk_prq(&regions, 5, qt),
            tk_prq_sharded(engine.store(), &regions, 5, qt, &pool)
        );
        assert_eq!(
            engine.tk_frpq(&regions, 5, qt),
            tk_frpq_sharded(engine.store(), &regions, 5, qt, &pool)
        );
        // Per-object lookup agrees with the store.
        for &id in &ids {
            assert_eq!(engine.semantics_of(id), engine.store().get(id));
        }
    }

    #[test]
    fn into_store_round_trips_through_initial_store() {
        let (space, dataset) = setup();
        let sequences: Vec<Vec<PositioningRecord>> = dataset
            .sequences
            .iter()
            .map(|s| s.positioning().collect())
            .collect();
        let ids: Vec<u64> = dataset.sequences.iter().map(|s| s.object_id).collect();
        let split = 2.min(sequences.len());

        // One engine ingesting everything...
        let mut whole = EngineBuilder::new()
            .threads(1)
            .shards(3)
            .base_seed(21)
            .build(model(&space))
            .unwrap();
        let mut s = whole.ingest();
        s.push_batch(ids.iter().copied().zip(sequences.iter().cloned()));
        s.seal();

        // ...equals an engine resumed from a handed-over store.
        let mut first = EngineBuilder::new()
            .threads(1)
            .shards(3)
            .base_seed(21)
            .build(model(&space))
            .unwrap();
        let mut s = first.ingest();
        s.push_batch(
            ids[..split]
                .iter()
                .copied()
                .zip(sequences[..split].iter().cloned()),
        );
        s.seal();
        let ingested = first.sequences_ingested();
        let mut resumed = EngineBuilder::new()
            .threads(2)
            .base_seed(21)
            .first_sequence_index(ingested)
            .initial_store(first.into_store())
            .build(model(&space))
            .unwrap();
        let mut s = resumed.ingest();
        s.push_batch(
            ids[split..]
                .iter()
                .copied()
                .zip(sequences[split..].iter().cloned()),
        );
        s.seal();

        for shard in 0..3 {
            let want: Vec<_> = whole
                .store()
                .iter_shard(shard)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            let got: Vec<_> = resumed
                .store()
                .iter_shard(shard)
                .map(|(id, sem)| (id, sem.to_vec()))
                .collect();
            assert_eq!(got, want, "shard {shard}");
        }
    }

    #[test]
    fn offline_helpers_do_not_touch_the_counter() {
        let (space, dataset) = setup();
        let sequences: Vec<Vec<PositioningRecord>> = dataset
            .sequences
            .iter()
            .map(|s| s.positioning().collect())
            .collect();
        let engine = EngineBuilder::new()
            .threads(2)
            .base_seed(7)
            .build(model(&space))
            .unwrap();
        let labels = engine.label_batch(&sequences);
        let semantics = engine.annotate_batch(&sequences);
        assert_eq!(labels.len(), sequences.len());
        assert_eq!(semantics.len(), sequences.len());
        assert_eq!(engine.sequences_ingested(), 0);
        assert_eq!(engine.num_objects(), 0);
        // They equal the BatchAnnotator reference directly.
        let reference = BatchAnnotator::new(engine.model(), 1, 7);
        assert_eq!(labels, reference.label_batch(&sequences));
        assert_eq!(semantics, reference.annotate_batch(&sequences));
    }
}
