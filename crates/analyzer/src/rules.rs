//! The lint rules, the allow-pragma machinery, and the per-file driver.
//!
//! Every rule works on the token stream of [`crate::lexer`] — no AST.
//! The rules are deliberately conservative: where the token stream
//! cannot prove an iteration order-insensitive or an index in-bounds,
//! they report, and a reviewed `// analyzer: allow(<rule>) <reason>`
//! pragma records the human judgement in the source itself.

use std::collections::BTreeSet;
use std::ops::RangeInclusive;
use std::path::Path;

use crate::lexer::{lex, Lexed, Token, TokenKind};

/// Rule identifiers, as spelled in reports and allow-pragmas.
pub const RULES: [&str; 5] = [
    "hash-iter",
    "unseeded-rng",
    "wall-clock",
    "lib-panic",
    "undocumented-unsafe",
];

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path as given to [`lint_file`] (workspace-relative in the CLI).
    pub path: String,
    pub line: u32,
    /// One of [`RULES`], or the internal `bad-pragma` for malformed
    /// suppressions (those cannot themselves be suppressed).
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A parsed `// analyzer: allow(<rule>) <reason>` pragma.
#[derive(Debug)]
pub struct Pragma {
    pub rule: String,
    pub reason: String,
    pub line: u32,
    /// Source lines this pragma suppresses: its own line when trailing
    /// code, otherwise the next statement or brace-delimited item.
    pub scope: RangeInclusive<u32>,
    /// How many findings it actually suppressed (an unused pragma is
    /// itself reported — stale suppressions must not accumulate).
    pub used: usize,
}

/// Everything the linter produced for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived pragma suppression.
    pub findings: Vec<Finding>,
    /// Suppressed findings, with the pragma reason attached.
    pub suppressed: Vec<(Finding, String)>,
}

/// Lints one file's source text. `path` decides which rules apply (see
/// [`Scope`]); it is echoed into findings verbatim.
pub fn lint_file(path: &str, source: &str) -> FileReport {
    let lexed = lex(source);
    let scope = Scope::of(path);
    let test_mask = test_region_mask(&lexed.tokens);

    let mut raw: Vec<Finding> = Vec::new();
    if scope.hash_iter {
        hash_iter(path, &lexed, &test_mask, &mut raw);
    }
    if scope.unseeded_rng {
        unseeded_rng(path, &lexed, &test_mask, &mut raw);
    }
    if scope.wall_clock {
        wall_clock(path, &lexed, &test_mask, &mut raw);
    }
    if scope.lib_panic {
        lib_panic(path, &lexed, &test_mask, &mut raw);
    }
    // undocumented-unsafe applies everywhere, tests included: a test
    // exercising unsafe code needs its justification just as much.
    undocumented_unsafe(path, &lexed, &mut raw);

    // One finding per (line, rule): a line indexing a slice five times
    // is one decision for the reader, not five.
    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    raw.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);

    let mut pragmas = parse_pragmas(path, &lexed, &mut raw);
    let mut report = FileReport::default();
    'findings: for finding in raw {
        for pragma in pragmas.iter_mut() {
            if pragma.rule == finding.rule && pragma.scope.contains(&finding.line) {
                pragma.used += 1;
                report.suppressed.push((finding, pragma.reason.clone()));
                continue 'findings;
            }
        }
        report.findings.push(finding);
    }
    for pragma in &pragmas {
        if pragma.used == 0 {
            report.findings.push(Finding {
                path: path.to_string(),
                line: pragma.line,
                rule: "bad-pragma",
                message: format!(
                    "unused allow({}) pragma — nothing in its scope triggers the rule",
                    pragma.rule
                ),
            });
        }
    }
    report.findings.sort_by_key(|f| f.line);
    report
}

/// Which rules apply to a file, derived from its workspace path.
struct Scope {
    hash_iter: bool,
    unseeded_rng: bool,
    wall_clock: bool,
    lib_panic: bool,
}

impl Scope {
    fn of(path: &str) -> Self {
        let p = path.replace('\\', "/");
        let vendored = p.contains("vendor/");
        // Panic-free-contract crates: decode/query/storage layers whose
        // library paths must return errors, not abort the process.
        let lib_panic = [
            "crates/codec/",
            "crates/queries/",
            "crates/engine/",
            "crates/runtime/",
        ]
        .iter()
        .any(|c| p.contains(c));
        // Kernel / decode / query modules: code on the annotation or
        // query hot path, where wall-clock reads break replayability.
        // (c2mn's trainer does wall-clock *reporting*, which is fine —
        // progress lines are not part of the deterministic output.)
        let wall_clock = ["crates/pgm/", "crates/queries/", "crates/engine/"]
            .iter()
            .any(|c| p.contains(c))
            || (p.contains("crates/c2mn/")
                && !p.ends_with("trainer.rs")
                && !p.ends_with("config.rs")
                && !p.ends_with("error.rs"));
        Scope {
            hash_iter: true,
            // The vendored rand crate *defines* `from_entropy`; the rule
            // polices its users, not its implementation.
            unseeded_rng: !vendored,
            wall_clock,
            lib_panic,
        }
    }
}

/// Marks every token inside `#[cfg(test)]` / `#[test]` items. The mask
/// is by token index.
fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = match matching(tokens, i + 1, '[', ']') {
                Some(c) => c,
                None => break,
            };
            let attr = &tokens[i + 2..close];
            let is_test_attr =
                attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"));
            if is_test_attr {
                // Cover the attribute itself, any further attributes, and
                // the annotated item (to its closing brace or `;`).
                let mut j = close + 1;
                while tokens.get(j).is_some_and(|t| t.is_punct('#'))
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    j = match matching(tokens, j + 1, '[', ']') {
                        Some(c) => c + 1,
                        None => return mask,
                    };
                }
                let mut end = j;
                while end < tokens.len() {
                    if tokens[end].is_punct('{') {
                        end = matching(tokens, end, '{', '}').unwrap_or(tokens.len() - 1);
                        break;
                    }
                    if tokens[end].is_punct(';') {
                        break;
                    }
                    end += 1;
                }
                for m in mask.iter_mut().take(end.min(tokens.len() - 1) + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the token closing the bracket opened at `open` (which must
/// hold `open_c`), honouring nesting.
fn matching(tokens: &[Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

fn finding(path: &str, line: u32, rule: &'static str, message: String) -> Finding {
    Finding {
        path: path.to_string(),
        line,
        rule,
        message,
    }
}

// ---------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------

/// Parses `// analyzer: allow(<rule>) <reason>` comments. Malformed
/// pragmas (unknown rule, missing reason) are pushed into `raw` as
/// `bad-pragma` findings.
fn parse_pragmas(path: &str, lexed: &Lexed, raw: &mut Vec<Finding>) -> Vec<Pragma> {
    let token_lines = lexed.token_lines();
    let mut pragmas = Vec::new();
    for comment in &lexed.comments {
        let Some(rest) = comment
            .text
            .trim_start_matches('/')
            .trim()
            .strip_prefix("analyzer:")
        else {
            continue;
        };
        let rest = rest.trim();
        let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            raw.push(finding(
                path,
                comment.line,
                "bad-pragma",
                format!("malformed analyzer pragma: `{}`", comment.text.trim()),
            ));
            continue;
        };
        let (rule, reason) = (inner.0.trim().to_string(), inner.1.trim().to_string());
        if !RULES.contains(&rule.as_str()) {
            raw.push(finding(
                path,
                comment.line,
                "bad-pragma",
                format!("allow() names unknown rule `{rule}`"),
            ));
            continue;
        }
        if reason.is_empty() {
            raw.push(finding(
                path,
                comment.line,
                "bad-pragma",
                format!("allow({rule}) carries no reason — every suppression must be justified"),
            ));
            continue;
        }
        let scope = pragma_scope(comment.line, &token_lines, lexed);
        pragmas.push(Pragma {
            rule,
            reason,
            line: comment.line,
            scope,
            used: 0,
        });
    }
    pragmas
}

/// The lines a pragma at `line` suppresses. Trailing a code line, it
/// covers that line. On its own line, it covers the next statement —
/// through the first balanced `{…}` block if the construct opens one
/// before its terminating `;` (so a pragma above an `fn` covers the
/// whole body).
fn pragma_scope(line: u32, token_lines: &BTreeSet<u32>, lexed: &Lexed) -> RangeInclusive<u32> {
    if token_lines.contains(&line) {
        return line..=line;
    }
    let Some(start) = lexed.tokens.iter().position(|t| t.line > line) else {
        return line..=line;
    };
    let first_line = lexed.tokens[start].line;
    let mut depth = 0usize;
    for (j, t) in lexed.tokens.iter().enumerate().skip(start) {
        if t.is_punct('{') {
            if let Some(close) = matching(&lexed.tokens, j, '{', '}') {
                return first_line..=lexed.tokens[close].line;
            }
            return first_line..=u32::MAX;
        }
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if (t.is_punct(';') || t.is_punct('}')) && depth == 0 {
            // `;` ends a statement; `}` ends the enclosing block (the
            // pragma covered a tail expression).
            return first_line..=lexed.tokens[j].line;
        }
    }
    first_line..=u32::MAX
}

// ---------------------------------------------------------------------
// Rule: undocumented-unsafe
// ---------------------------------------------------------------------

/// Every `unsafe` keyword must have a `SAFETY:` comment on the same line
/// or in the contiguous comment block directly above. A `/// # Safety`
/// doc heading documents the *caller's* obligation, not why this
/// particular use is sound, so it does not count.
fn undocumented_unsafe(path: &str, lexed: &Lexed, raw: &mut Vec<Finding>) {
    let token_lines = lexed.token_lines();
    for (j, t) in lexed.tokens.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // `unsafe` inside an attribute (e.g. `#[allow(unsafe_code)]` in
        // a lint list) is not an unsafe block; cheap filter: previous
        // token `(` after an ident means argument position.
        if j >= 1 && lexed.tokens[j - 1].is_punct('(') {
            continue;
        }
        let line = t.line;
        let mut documented = lexed
            .comments
            .iter()
            .any(|c| c.line == line && c.text.contains("SAFETY:"));
        if !documented {
            // The `unsafe` may sit mid-statement (`let x = unsafe {…}`
            // spanning lines) — the SAFETY comment belongs above the
            // *statement*, so walk comments up from its first line.
            let mut stmt_start = j;
            while stmt_start > 0 {
                let p = &lexed.tokens[stmt_start - 1];
                if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
                    break;
                }
                stmt_start -= 1;
            }
            let mut l = lexed.tokens[stmt_start].line.min(line) - 1;
            while l > 0 && !token_lines.contains(&l) {
                let comments_here: Vec<_> = lexed.comments.iter().filter(|c| c.line == l).collect();
                if comments_here.is_empty() {
                    break;
                }
                if comments_here.iter().any(|c| c.text.contains("SAFETY:")) {
                    documented = true;
                    break;
                }
                l -= 1;
            }
        }
        if !documented {
            raw.push(finding(
                path,
                line,
                "undocumented-unsafe",
                "`unsafe` without a `// SAFETY:` comment explaining why it is sound".to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule: wall-clock
// ---------------------------------------------------------------------

/// `Instant::now` / `SystemTime` in kernel/decode/query modules: output
/// that depends on the clock is not replayable.
fn wall_clock(path: &str, lexed: &Lexed, test_mask: &[bool], raw: &mut Vec<Finding>) {
    for (j, t) in lexed.tokens.iter().enumerate() {
        if test_mask[j] {
            continue;
        }
        let hit = (t.is_ident("Instant")
            && lexed.tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && lexed.tokens.get(j + 3).is_some_and(|t| t.is_ident("now")))
            || t.is_ident("SystemTime");
        if hit {
            raw.push(finding(
                path,
                t.line,
                "wall-clock",
                format!(
                    "`{}` in a kernel/decode/query module — clock reads break replayability",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule: unseeded-rng
// ---------------------------------------------------------------------

/// `thread_rng` / `from_entropy` anywhere, and `seed_from_u64` whose
/// seed expression is not constant or derived from a seed.
fn unseeded_rng(path: &str, lexed: &Lexed, test_mask: &[bool], raw: &mut Vec<Finding>) {
    for (j, t) in lexed.tokens.iter().enumerate() {
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") {
            // OS entropy is nondeterministic even in tests.
            raw.push(finding(
                path,
                t.line,
                "unseeded-rng",
                format!("`{}` draws OS entropy — derive the seed instead", t.text),
            ));
            continue;
        }
        if !t.is_ident("seed_from_u64") || test_mask[j] {
            continue;
        }
        let Some(open) = lexed.tokens.get(j + 1).filter(|t| t.is_punct('(')) else {
            continue;
        };
        let _ = open;
        let Some(close) = matching(&lexed.tokens, j + 1, '(', ')') else {
            continue;
        };
        let args = &lexed.tokens[j + 2..close];
        if !seed_expr_is_derived(args) {
            raw.push(finding(
                path,
                t.line,
                "unseeded-rng",
                "`seed_from_u64` with a seed that is neither constant nor derived from a seed"
                    .to_string(),
            ));
        }
    }
}

/// A seed expression is acceptable when every identifier in it is
/// seed-derived: literals, arithmetic, casts, and idents/calls whose
/// name contains `seed` (`sequence_seed(..)`, `base_seed`, …).
fn seed_expr_is_derived(args: &[Token]) -> bool {
    // A call to a `*seed*` helper launders its arguments: the helper is
    // the derivation. The callee is the ident right before the first
    // `(` (handles path-qualified `mod::sequence_seed(…)`).
    if let Some(open) = args.iter().position(|t| t.is_punct('(')) {
        if open >= 1
            && args[open - 1].kind == TokenKind::Ident
            && args[open - 1].text.contains("seed")
        {
            return true;
        }
    }
    if args
        .first()
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text.contains("seed"))
    {
        return true;
    }
    args.iter().all(|t| match t.kind {
        TokenKind::Ident => {
            t.text.contains("seed")
                || t.text.contains("SEED")
                || matches!(
                    t.text.as_str(),
                    "as" | "u64" | "u32" | "usize" | "wrapping_add" | "wrapping_mul"
                )
        }
        _ => true,
    })
}

// ---------------------------------------------------------------------
// Rule: lib-panic
// ---------------------------------------------------------------------

/// Macros whose bracketed interior is exempt from lib-panic checks:
/// either the macro is itself an intentional assertion, or its interior
/// is formatting, not library control flow.
const EXEMPT_MACROS: [&str; 14] = [
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "matches",
    "write",
    "writeln",
    "format",
    "print",
    "println",
    "eprintln",
    "vec",
];

/// `unwrap`/`expect`/`panic!`/`todo!`/slice indexing in non-test code of
/// panic-free-contract crates.
fn lib_panic(path: &str, lexed: &Lexed, test_mask: &[bool], raw: &mut Vec<Finding>) {
    let tokens = &lexed.tokens;
    let mut skip_until = 0usize;
    for j in 0..tokens.len() {
        if test_mask[j] || j < skip_until {
            continue;
        }
        let t = &tokens[j];
        // Exempt macro interiors (assert!, writeln!, vec![…], …).
        if t.kind == TokenKind::Ident
            && EXEMPT_MACROS.contains(&t.text.as_str())
            && tokens.get(j + 1).is_some_and(|n| n.is_punct('!'))
        {
            if let Some(open) = tokens.get(j + 2) {
                let (oc, cc) = match &*open.text {
                    "(" => ('(', ')'),
                    "[" => ('[', ']'),
                    "{" => ('{', '}'),
                    _ => continue,
                };
                if let Some(close) = matching(tokens, j + 2, oc, cc) {
                    skip_until = close + 1;
                }
            }
            continue;
        }
        // .unwrap() / .expect(…)
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && j >= 1
            && tokens[j - 1].is_punct('.')
            && tokens.get(j + 1).is_some_and(|n| n.is_punct('('))
        {
            raw.push(finding(
                path,
                t.line,
                "lib-panic",
                format!("`.{}()` in a panic-free-contract crate", t.text),
            ));
            continue;
        }
        // panic! / todo! / unimplemented!
        if (t.is_ident("panic") || t.is_ident("todo") || t.is_ident("unimplemented"))
            && tokens.get(j + 1).is_some_and(|n| n.is_punct('!'))
        {
            raw.push(finding(
                path,
                t.line,
                "lib-panic",
                format!("`{}!` in a panic-free-contract crate", t.text),
            ));
            continue;
        }
        // Slice indexing: `expr[i]` — an ident, `]`, or `)` directly
        // followed by `[`. (Attributes `#[…]` and `vec![…]` never match:
        // their `[` follows `#` or `!`.)
        if t.is_punct('[')
            && j >= 1
            && (tokens[j - 1].kind == TokenKind::Ident
                || tokens[j - 1].is_punct(']')
                || tokens[j - 1].is_punct(')'))
        {
            // Not indexing: array type `[T; N]` after `:`/`->`, or a
            // declaration-position ident like `let [a, b] = …`.
            let prev = &tokens[j - 1];
            if prev.kind == TokenKind::Ident
                && matches!(
                    prev.text.as_str(),
                    "let" | "in" | "return" | "mut" | "ref" | "const" | "static" | "as" | "else"
                )
            {
                continue;
            }
            raw.push(finding(
                path,
                t.line,
                "lib-panic",
                "slice indexing in a panic-free-contract crate (use `get`/iterators or justify)"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule: hash-iter
// ---------------------------------------------------------------------

/// Methods that iterate a hash collection.
const ITER_METHODS: [&str; 6] = ["iter", "iter_mut", "into_iter", "keys", "values", "drain"];

/// Chain methods that make iteration order irrelevant (commutative
/// reductions) or re-establish an order (sorts, ordered collects).
const NEUTRALIZERS: [&str; 16] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sum",
    "product",
    "count",
    "len",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "all",
    "any",
];

/// Order-sensitive sinks inside a `for`-over-hash body.
const ORDER_SINKS: [&str; 7] = [
    "push", "push_str", "write", "writeln", "print", "println", "format",
];

/// Iterating a `HashMap`/`HashSet` into ordered output without a sort.
/// Heuristic: find identifiers bound to hash types in this file, then
/// flag `.iter()`-family calls and `for … in` loops over them unless the
/// surrounding statement neutralizes the order.
fn hash_iter(path: &str, lexed: &Lexed, test_mask: &[bool], raw: &mut Vec<Finding>) {
    let tokens = &lexed.tokens;
    let hash_idents = collect_hash_idents(tokens);
    if hash_idents.is_empty() {
        return;
    }
    for j in 0..tokens.len() {
        if test_mask[j] {
            continue;
        }
        let t = &tokens[j];
        // `hash.iter()` and friends.
        if t.kind == TokenKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && j >= 2
            && tokens[j - 1].is_punct('.')
            && tokens[j - 2].kind == TokenKind::Ident
            && hash_idents.contains(&tokens[j - 2].text)
            && tokens.get(j + 1).is_some_and(|n| n.is_punct('('))
        {
            if !statement_neutralizes(tokens, j) {
                raw.push(finding(
                    path,
                    t.line,
                    "hash-iter",
                    format!(
                        "`{}.{}()` feeds ordered output without a sort — hash iteration \
                         order is arbitrary",
                        tokens[j - 2].text,
                        t.text
                    ),
                ));
            }
            continue;
        }
        // `for x in &hash { … }`.
        if t.is_ident("for") {
            let Some(in_pos) = tokens[j..].iter().position(|t| t.is_ident("in")) else {
                continue;
            };
            let in_abs = j + in_pos;
            let Some(body_open) = tokens[in_abs..]
                .iter()
                .position(|t| t.is_punct('{'))
                .map(|p| in_abs + p)
            else {
                continue;
            };
            let header = &tokens[in_abs + 1..body_open];
            let over_hash = header.iter().enumerate().any(|(k, h)| {
                h.kind == TokenKind::Ident
                    && hash_idents.contains(&h.text)
                    // Direct iteration, not `hash.values().sum()` (that
                    // form is caught and judged by the branch above).
                    && !header.get(k + 1).is_some_and(|n| n.is_punct('.'))
            });
            if !over_hash {
                continue;
            }
            let Some(body_close) = matching(tokens, body_open, '{', '}') else {
                continue;
            };
            let body = &tokens[body_open..body_close];
            let sinks = body
                .iter()
                .any(|b| b.kind == TokenKind::Ident && ORDER_SINKS.contains(&b.text.as_str()));
            if sinks {
                raw.push(finding(
                    path,
                    t.line,
                    "hash-iter",
                    "`for` over a hash collection writes ordered output — iteration order \
                     is arbitrary"
                        .to_string(),
                ));
            }
        }
    }
}

/// Identifiers bound to `HashMap`/`HashSet` in this file, by declaration
/// patterns: `name: [&][mut] HashMap<…>` and `[let [mut]] name =
/// HashMap::new/with_capacity/from…`.
fn collect_hash_idents(tokens: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for j in 0..tokens.len() {
        let t = &tokens[j];
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over `&`, `mut`, `:` / `=`, `::`-paths
        // (`std::collections::HashMap`), to the bound identifier.
        let mut k = j;
        while k >= 1 {
            let prev = &tokens[k - 1];
            if prev.is_punct('&') || prev.is_ident("mut") || prev.is_punct('<') {
                k -= 1;
            } else if prev.is_punct(':') {
                // Could be `name:` or a `::` path segment.
                if k >= 2 && tokens[k - 2].is_punct(':') {
                    if k >= 3 && tokens[k - 3].kind == TokenKind::Ident {
                        k -= 3; // path segment `seg::`
                        continue;
                    }
                    break;
                }
                k -= 1;
            } else if prev.is_punct('=') || prev.kind == TokenKind::Ident {
                k -= 1;
                if prev.kind == TokenKind::Ident {
                    out.insert(prev.text.clone());
                    break;
                }
            } else {
                break;
            }
        }
    }
    out
}

/// Does the statement containing the iteration at token `j` neutralize
/// hash order? Scans forward to the end of the statement (`;` / `{` at
/// nesting depth 0) looking for sorts, commutative reductions, or
/// collects into unordered/self-ordering collections.
fn statement_neutralizes(tokens: &[Token], j: usize) -> bool {
    let mut depth = 0i32;
    let mut k = j;
    let mut stmt_end = tokens.len();
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                // End of an enclosing call: `f(hash.iter())` — judge the
                // rest of the outer statement too.
                depth = 0;
            }
        } else if t.is_punct('{') && depth <= 0 {
            // The iteration is a `for`/`while` header (or match
            // scrutinee): the *body* decides. Order-insensitive bodies
            // (counter maps, hash inserts) are fine; ordered sinks are
            // not.
            let Some(close) = matching(tokens, k, '{', '}') else {
                return false;
            };
            return !tokens[k..close]
                .iter()
                .any(|b| b.kind == TokenKind::Ident && ORDER_SINKS.contains(&b.text.as_str()));
        } else if (t.is_punct(';') || t.is_punct('}')) && depth <= 0 {
            stmt_end = k;
            break;
        } else if t.kind == TokenKind::Ident {
            if NEUTRALIZERS.contains(&t.text.as_str()) {
                return true;
            }
            if t.text == "collect" || t.text == "extend" || t.text == "clone_from_iter" {
                // Ordered target? `collect::<Vec…>` is order-sensitive,
                // hash/BTree targets are not. Without a turbofish the
                // target is unknowable here — be conservative.
                let turbofish = &tokens[k..tokens.len().min(k + 8)];
                if turbofish.iter().any(|t| {
                    t.is_ident("HashMap")
                        || t.is_ident("HashSet")
                        || t.is_ident("BTreeMap")
                        || t.is_ident("BTreeSet")
                }) {
                    return true;
                }
            }
        }
        k += 1;
    }
    // Also neutral: the iteration feeds `.extend` / `merge` of another
    // hash collection, detectable from the statement head: look back to
    // the statement start for `hashident.extend(`.
    let mut b = j;
    while b > 0
        && !tokens[b - 1].is_punct(';')
        && !tokens[b - 1].is_punct('{')
        && !tokens[b - 1].is_punct('}')
    {
        b -= 1;
        if tokens[b].is_ident("extend")
            && b >= 2
            && tokens[b - 1].is_punct('.')
            && tokens[b - 2].kind == TokenKind::Ident
        {
            return true;
        }
    }
    // The canonical sort-after-collect idiom:
    //   let mut v: Vec<_> = hash.into_iter().collect();
    //   v.sort_unstable_by(…);
    // The binding is sorted in a *later* statement of the same block.
    if let Some(name) = let_binding_name(tokens, b) {
        let mut depth = 0i32;
        let mut k = stmt_end;
        while k + 2 < tokens.len() {
            k += 1;
            let t = &tokens[k];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    break; // end of the enclosing block
                }
            } else if t.is_ident(name)
                && tokens[k + 1].is_punct('.')
                && tokens[k + 2].text.starts_with("sort")
            {
                return true;
            }
        }
    }
    false
}

/// If the statement starting at token `start` is `let [mut] name = …`,
/// the bound name.
fn let_binding_name(tokens: &[Token], start: usize) -> Option<&str> {
    let mut k = start;
    if !tokens.get(k)?.is_ident("let") {
        return None;
    }
    k += 1;
    if tokens.get(k)?.is_ident("mut") {
        k += 1;
    }
    let name = tokens.get(k)?;
    (name.kind == TokenKind::Ident).then_some(name.text.as_str())
}

// ---------------------------------------------------------------------

/// Convenience used by fixture tests: lint a file on disk.
pub fn lint_path(path: &Path) -> std::io::Result<FileReport> {
    let source = std::fs::read_to_string(path)?;
    Ok(lint_file(&path.display().to_string(), &source))
}
