//! lib-panic fixture: aborts in a panic-free-contract crate.

pub fn unwrapping(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn expecting(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn indexing(xs: &[u32]) -> u32 {
    xs[0]
}

pub fn panicking() {
    panic!("boom");
}

pub fn todoed() {
    todo!()
}

pub fn asserted(xs: &[u32]) {
    assert!(xs.is_empty(), "must be empty: {xs:?}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1).unwrap();
    }
}
