//! Dual-kernel oracle + blanket-soundness property suite for the memoized
//! Gibbs kernel.
//!
//! The naive sweep (recompute every `(site, candidate)` row every sweep)
//! stays compiled as [`C2mn::label_with_naive`] and serves as the oracle:
//!
//! * the cached decode path must be **byte-identical** to it for every
//!   model structure, random space/workload, and thread count {1, 2, 4};
//! * own-chain Markov blankets must be sound: flipping a site outside
//!   `dependents(s)` never changes `local_log_potential(s, ·)` — bitwise;
//! * cross-chain invalidation must be sound: after a simulated half-sweep,
//!   every row the snapshot-diff helpers leave *clean* must be bitwise
//!   unchanged by the other chain's flips.
//!
//! Under-approximated blankets would silently corrupt sampling (stale rows
//! reused as if current); these tests are the tripwire.

use ism_c2mn::{
    invalidate_events_after_region_sweep, invalidate_regions_after_event_sweep, sequence_seed,
    BatchAnnotator, C2mn, C2mnConfig, CoupledNetwork, DecodeScratch, EventSites, ModelStructure,
    RegionSites, SequenceContext, Weights,
};
use ism_indoor::{BuildingGenerator, IndoorSpace, RegionId};
use ism_mobility::{
    Dataset, MobilityEvent, PositioningConfig, PositioningRecord, SimulationConfig,
};
use ism_pgm::{ConditionalModel, SweepCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STRUCTURES: [fn() -> ModelStructure; 6] = [
    ModelStructure::full,
    ModelStructure::cmn,
    ModelStructure::no_transitions,
    ModelStructure::no_synchronizations,
    ModelStructure::no_event_segmentation,
    ModelStructure::no_space_segmentation,
];

/// A random venue plus positioning sequences simulated in it.
fn workload(seed: u64, objects: usize) -> (IndoorSpace, Vec<Vec<PositioningRecord>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let space = BuildingGenerator::small_office()
        .generate(&mut rng)
        .unwrap();
    let dataset = Dataset::generate(
        "ko",
        &space,
        SimulationConfig::quick(),
        PositioningConfig::synthetic(8.0, 2.0),
        None,
        objects,
        &mut rng,
    );
    let seqs = dataset
        .sequences
        .iter()
        .map(|s| s.positioning().collect())
        .collect();
    (space, seqs)
}

#[test]
fn cached_decode_is_byte_identical_to_naive_oracle() {
    for (si, structure) in STRUCTURES.iter().enumerate() {
        let (space, seqs) = workload(40 + si as u64, 3);
        let config = C2mnConfig::quick_test().with_structure(structure());
        let model = C2mn::from_weights(&space, config, Weights::uniform(1.1));
        let mut scratch_c = DecodeScratch::new();
        let mut scratch_n = DecodeScratch::new();
        for (i, records) in seqs.iter().enumerate() {
            let seed = 1_000 * si as u64 + i as u64;
            let cached =
                model.label_with(records, &mut StdRng::seed_from_u64(seed), &mut scratch_c);
            let naive =
                model.label_with_naive(records, &mut StdRng::seed_from_u64(seed), &mut scratch_n);
            assert_eq!(cached, naive, "structure {si} sequence {i}");
        }
    }
}

#[test]
fn batch_decode_matches_naive_sequential_reference_across_threads() {
    let (space, seqs) = workload(7, 6);
    let model = C2mn::from_weights(&space, C2mnConfig::quick_test(), Weights::uniform(1.0));
    let base_seed = 99;
    // Sequential naive reference with the batch seed derivation.
    let mut scratch = DecodeScratch::new();
    let reference: Vec<_> = seqs
        .iter()
        .enumerate()
        .map(|(i, records)| {
            let mut rng = StdRng::seed_from_u64(sequence_seed(base_seed, i));
            model.label_with_naive(records, &mut rng, &mut scratch)
        })
        .collect();
    for threads in [1, 2, 4] {
        let batch = BatchAnnotator::new(&model, threads, base_seed).label_batch(&seqs);
        assert_eq!(batch, reference, "threads {threads}");
    }
}

/// Random joint states for one context.
fn random_states(
    ctx: &SequenceContext<'_>,
    rng: &mut StdRng,
) -> (Vec<usize>, Vec<RegionId>, Vec<usize>, Vec<MobilityEvent>) {
    let r_state: Vec<usize> = (0..ctx.len())
        .map(|k| rng.random_range(0..ctx.candidates[k].len()))
        .collect();
    let regions: Vec<RegionId> = r_state
        .iter()
        .enumerate()
        .map(|(k, &c)| ctx.candidates[k][c])
        .collect();
    let e_state: Vec<usize> = (0..ctx.len())
        .map(|_| rng.random_range(0..MobilityEvent::ALL.len()))
        .collect();
    let events: Vec<MobilityEvent> = e_state.iter().map(|&c| MobilityEvent::ALL[c]).collect();
    (r_state, regions, e_state, events)
}

#[test]
fn own_chain_blankets_are_sound() {
    for (si, structure) in STRUCTURES.iter().enumerate() {
        let (space, seqs) = workload(70 + si as u64, 2);
        let config = C2mnConfig::quick_test().with_structure(structure());
        let records = &seqs[0];
        let ctx = SequenceContext::build(&space, &config, records, &[]);
        let weights = Weights::uniform(0.8);
        let net = CoupledNetwork::new(&ctx, &weights);
        let n = ctx.len();
        let mut rng = StdRng::seed_from_u64(500 + si as u64);
        for _trial in 0..30 {
            let (mut r_state, _regions, mut e_state, events) = random_states(&ctx, &mut rng);
            let regions: Vec<RegionId> = r_state
                .iter()
                .enumerate()
                .map(|(k, &c)| ctx.candidates[k][c])
                .collect();

            // --- region chain: flip r_i, rows outside dependents(i) keep
            // their exact bits.
            let i = rng.random_range(0..n);
            if ctx.candidates[i].len() > 1 {
                let rs = RegionSites {
                    net: &net,
                    events: &events,
                };
                let before: Vec<Vec<u64>> = (0..n)
                    .map(|j| {
                        (0..ctx.candidates[j].len())
                            .map(|c| rs.local_log_potential(j, c, &r_state).to_bits())
                            .collect()
                    })
                    .collect();
                let old = r_state[i];
                let mut new = rng.random_range(0..ctx.candidates[i].len());
                if new == old {
                    new = (new + 1) % ctx.candidates[i].len();
                }
                r_state[i] = new;
                // The kernel marks dependents at the post-flip state.
                let deps: Vec<usize> = rs.dependents(i, old, &r_state).collect();
                for (j, row) in before.iter().enumerate() {
                    if j == i || deps.contains(&j) {
                        continue;
                    }
                    for (c, &bits) in row.iter().enumerate() {
                        assert_eq!(
                            bits,
                            rs.local_log_potential(j, c, &r_state).to_bits(),
                            "region row {j} cand {c} changed outside blanket of {i} ({si})"
                        );
                    }
                }
                r_state[i] = old;
            }

            // --- event chain: flip e_i, same check.
            let i = rng.random_range(0..n);
            {
                let es = EventSites {
                    net: &net,
                    regions: &regions,
                };
                let before: Vec<Vec<u64>> = (0..n)
                    .map(|j| {
                        (0..MobilityEvent::ALL.len())
                            .map(|c| es.local_log_potential(j, c, &e_state).to_bits())
                            .collect()
                    })
                    .collect();
                let old = e_state[i];
                e_state[i] = (old + 1) % MobilityEvent::ALL.len();
                let deps: Vec<usize> = es.dependents(i, old, &e_state).collect();
                for (j, row) in before.iter().enumerate() {
                    if j == i || deps.contains(&j) {
                        continue;
                    }
                    for (c, &bits) in row.iter().enumerate() {
                        assert_eq!(
                            bits,
                            es.local_log_potential(j, c, &e_state).to_bits(),
                            "event row {j} cand {c} changed outside blanket of {i} ({si})"
                        );
                    }
                }
                e_state[i] = old;
            }
        }
    }
}

#[test]
fn cross_chain_invalidation_covers_every_changed_row() {
    for (si, structure) in STRUCTURES.iter().enumerate() {
        let (space, seqs) = workload(110 + si as u64, 2);
        let config = C2mnConfig::quick_test().with_structure(structure());
        let records = &seqs[0];
        let ctx = SequenceContext::build(&space, &config, records, &[]);
        let weights = Weights::uniform(0.7);
        let net = CoupledNetwork::new(&ctx, &weights);
        let n = ctx.len();
        let mut rng = StdRng::seed_from_u64(900 + si as u64);
        for _trial in 0..20 {
            let (mut r_state, mut regions, mut e_state, mut events) = random_states(&ctx, &mut rng);

            // --- simulated region half-sweep: a handful of region flips;
            // every event row left clean must keep its exact bits.
            let old_regions = regions.clone();
            for _ in 0..rng.random_range(1..4usize) {
                let i = rng.random_range(0..n);
                let c = rng.random_range(0..ctx.candidates[i].len());
                r_state[i] = c;
                regions[i] = ctx.candidates[i][c];
            }
            {
                let es_old = EventSites {
                    net: &net,
                    regions: &old_regions,
                };
                let es_new = EventSites {
                    net: &net,
                    regions: &regions,
                };
                let mut cache = SweepCache::new();
                cache.reset(&es_old);
                cache.fill_all(&es_old, &e_state);
                invalidate_events_after_region_sweep(
                    &ctx,
                    &old_regions,
                    &regions,
                    &events,
                    &mut cache,
                );
                for j in 0..n {
                    if cache.is_dirty(j) {
                        continue;
                    }
                    for c in 0..MobilityEvent::ALL.len() {
                        assert_eq!(
                            es_old.local_log_potential(j, c, &e_state).to_bits(),
                            es_new.local_log_potential(j, c, &e_state).to_bits(),
                            "event row {j} cand {c} stale after region sweep ({si})"
                        );
                    }
                }
            }

            // --- simulated event half-sweep: same check on region rows.
            let old_events = events.clone();
            for _ in 0..rng.random_range(1..4usize) {
                let i = rng.random_range(0..n);
                let c = rng.random_range(0..MobilityEvent::ALL.len());
                e_state[i] = c;
                events[i] = MobilityEvent::ALL[c];
            }
            {
                let rs_old = RegionSites {
                    net: &net,
                    events: &old_events,
                };
                let rs_new = RegionSites {
                    net: &net,
                    events: &events,
                };
                let mut cache = SweepCache::new();
                cache.reset(&rs_old);
                cache.fill_all(&rs_old, &r_state);
                invalidate_regions_after_event_sweep(
                    &ctx,
                    &old_events,
                    &events,
                    &regions,
                    &mut cache,
                );
                for j in 0..n {
                    if cache.is_dirty(j) {
                        continue;
                    }
                    for c in 0..ctx.candidates[j].len() {
                        assert_eq!(
                            rs_old.local_log_potential(j, c, &r_state).to_bits(),
                            rs_new.local_log_potential(j, c, &r_state).to_bits(),
                            "region row {j} cand {c} stale after event sweep ({si})"
                        );
                    }
                }
            }
        }
    }
}
