//! Typed errors of model training.

use std::fmt;

/// Any failure of C2MN training — returned by [`Trainer::run`] and the
/// [`C2mn::train`] convenience wrapper instead of panicking mid-run.
///
/// [`Trainer::run`]: crate::Trainer::run
/// [`C2mn::train`]: crate::C2mn::train
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The training set contains no usable (≥ 2 records) sequence.
    EmptyTrainingSet,
    /// A labelled sequence's ground-truth region is missing from the
    /// candidate set of one of its sites. Training contexts force-include
    /// the truth region, so this indicates a malformed labelled sequence
    /// (e.g. a region id pointing outside the venue) rather than pruning.
    TruthNotInCandidates {
        /// Index of the offending sequence within the training set passed
        /// to the trainer (skipped < 2-record sequences keep their slot,
        /// so this indexes the caller's slice directly).
        sequence: usize,
        /// Record index within that sequence.
        site: usize,
    },
    /// Writing the [`Trainer::checkpoint_to`](crate::Trainer::checkpoint_to)
    /// artifact failed mid-run. Carries the rendered
    /// [`PersistError`](ism_codec::PersistError) (the enum stays `Eq` this
    /// way); the run stops rather than continue un-checkpointed.
    Persist {
        /// The underlying persistence failure, rendered.
        message: String,
    },
    /// A [`TrainCheckpoint`](crate::TrainCheckpoint) was resumed against a
    /// training set of a different shape than the one it was captured from.
    CheckpointMismatch {
        /// The usable sequence whose record count diverged, or `None`
        /// when the usable-sequence count itself diverged.
        sequence: Option<usize>,
        /// What the checkpoint was captured from.
        expected: usize,
        /// What the resumed training set provides.
        found: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyTrainingSet => {
                write!(f, "training set contains no usable (>= 2 records) sequence")
            }
            TrainError::TruthNotInCandidates { sequence, site } => write!(
                f,
                "ground-truth region of sequence {sequence}, site {site} is \
                 not in the candidate set (malformed labelled sequence)"
            ),
            TrainError::Persist { message } => {
                write!(f, "writing the training checkpoint failed: {message}")
            }
            TrainError::CheckpointMismatch {
                sequence: None,
                expected,
                found,
            } => write!(
                f,
                "checkpoint was captured from {expected} usable training \
                 sequences, resumed against {found}"
            ),
            TrainError::CheckpointMismatch {
                sequence: Some(sequence),
                expected,
                found,
            } => write!(
                f,
                "checkpoint recorded {expected} records for usable training \
                 sequence {sequence}, resumed against {found}"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failure() {
        assert!(TrainError::EmptyTrainingSet.to_string().contains("usable"));
        let e = TrainError::TruthNotInCandidates {
            sequence: 3,
            site: 7,
        };
        assert!(e.to_string().contains("sequence 3"));
        assert!(e.to_string().contains("site 7"));
        let e = TrainError::CheckpointMismatch {
            sequence: None,
            expected: 5,
            found: 2,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('2'));
        let e = TrainError::CheckpointMismatch {
            sequence: Some(7),
            expected: 120,
            found: 121,
        };
        assert!(e.to_string().contains("sequence 7"));
        assert!(e.to_string().contains("120") && e.to_string().contains("121"));
    }
}
