//! Deterministic scoped-thread worker pool.
//!
//! The batch annotation engine shards independent per-sequence jobs across
//! a fixed number of OS threads. Two properties drive the design:
//!
//! * **Determinism** — a job's output may depend only on its item index
//!   (callers derive per-item RNGs from `(base_seed, index)`), and results
//!   are returned in item order. Which worker ran which item is therefore
//!   unobservable, so output is byte-identical for any thread count.
//! * **Scratch reuse** — each worker owns one mutable state value built by
//!   an `init` closure and threaded through every job it runs
//!   ([`WorkerPool::run_with`]), so per-sweep buffers are allocated once
//!   per worker instead of once per sequence.
//!
//! Threads are scoped (`std::thread::scope`): jobs may borrow from the
//! caller's stack and no thread outlives a call.

#![deny(missing_docs)]

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// A fixed-size pool of scoped worker threads.
///
/// The pool itself holds no threads between calls; each [`WorkerPool::run`]
/// / [`WorkerPool::run_with`] spawns up to `threads` scoped workers that
/// pull item indices from a shared atomic counter and exit when the items
/// are exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool running jobs on `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// Creates a pool sized to the machine's available parallelism
    /// (falling back to 1 when it cannot be queried).
    pub fn with_available_parallelism() -> Self {
        let threads = thread::available_parallelism().map_or(1, |n| n.get());
        WorkerPool::new(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(index)` for every `index in 0..num_items`, returning the
    /// outputs in item order.
    pub fn run<T, F>(&self, num_items: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_with(num_items, || (), |(), i| job(i))
    }

    /// Runs `job(&mut state, index)` for every `index in 0..num_items`,
    /// returning the outputs in item order.
    ///
    /// Each worker builds one `state` via `init` when it starts and reuses
    /// it across every item it processes — the hook for per-worker scratch
    /// buffers. Items are claimed dynamically (atomic counter), so uneven
    /// per-item costs balance across workers; output order is still the
    /// item order.
    pub fn run_with<S, T, I, F>(&self, num_items: usize, init: I, job: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let workers = self.threads.min(num_items);
        if workers <= 1 {
            let mut state = init();
            return (0..num_items).map(|i| job(&mut state, i)).collect();
        }

        // One slot per item; workers write disjoint slots, so each lock is
        // uncontended and held only for the duration of a move.
        let slots: Vec<Mutex<Option<T>>> = (0..num_items).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= num_items {
                            break;
                        }
                        *slots[i].lock() = Some(job(&mut state, i));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("worker filled every claimed slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::WorkerPool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }

    #[test]
    fn results_are_in_item_order() {
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let out = pool.run(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
        let pool = WorkerPool::new(4);
        pool.run(counts.len(), |i| counts[i].fetch_add(1, Ordering::Relaxed));
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn more_threads_than_items() {
        let pool = WorkerPool::new(16);
        assert_eq!(pool.run(3, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        // Single worker: the state counts how many jobs it has seen; every
        // job observes the same accumulating state instance.
        let pool = WorkerPool::new(1);
        let out = pool.run_with(
            5,
            || 0usize,
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn output_is_thread_count_invariant() {
        // Jobs that depend only on their index produce identical output
        // regardless of worker count.
        let reference = WorkerPool::new(1).run(100, |i| (i as u64).wrapping_mul(0x9E37));
        for threads in [2, 3, 4, 8] {
            let out = WorkerPool::new(threads).run(100, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn jobs_may_borrow_from_the_caller() {
        let data: Vec<u64> = (0..40).collect();
        let pool = WorkerPool::new(3);
        let doubled = pool.run(data.len(), |i| data[i] * 2);
        assert_eq!(doubled[7], 14);
    }
}
