//! Per-sequence preprocessed context: cached observations, density classes,
//! candidate regions and matching features.

use crate::C2mnConfig;
use ism_cluster::{DensityClass, StDbscan, StPoint};
use ism_geometry::{is_turn, Circle};
use ism_indoor::{IndoorSpace, RegionId};
use ism_mobility::{MobilityEvent, PositioningRecord};

/// Everything the coupled network needs about one positioning sequence,
/// computed once before learning or decoding.
pub struct SequenceContext<'a> {
    /// The indoor venue.
    pub space: &'a IndoorSpace,
    /// Model configuration.
    pub config: &'a C2mnConfig,
    /// The observed records.
    pub records: Vec<PositioningRecord>,
    /// Candidate regions per record (pruned by the spatial index; always
    /// non-empty).
    pub candidates: Vec<Vec<RegionId>>,
    /// `fsm` value aligned with `candidates`.
    pub fsm: Vec<Vec<f64>>,
    /// `fem` values per record: `[stay, pass]`.
    pub fem: Vec<[f64; 2]>,
    /// ST-DBSCAN density class per record.
    pub density: Vec<DensityClass>,
    /// Euclidean distance between consecutive observed locations (`n − 1`).
    pub de: Vec<f64>,
    /// Time gap between consecutive records (`n − 1`).
    pub dt: Vec<f64>,
    /// `min(1, γ_ec · speed)` per gap (`n − 1`), the speed term of `fec`.
    pub speed_term: Vec<f64>,
    /// Prefix sums of `de` (`n` entries, `de_prefix[0] = 0`).
    pub de_prefix: Vec<f64>,
    /// Prefix sums of observed turns (`n + 1` entries); a record `i`
    /// (interior) is a turn when the heading change exceeds 90°.
    pub turn_prefix: Vec<u32>,
    /// Candidate index of the nearest region per record (decoder init).
    pub nearest_idx: Vec<usize>,
    /// Event configuration from ST-DBSCAN (clustered → stay, noise → pass).
    pub dbscan_events: Vec<MobilityEvent>,
    /// Offset of gap `g`'s pairwise block inside the flat feature tables
    /// (`n` entries; the block stride is
    /// `candidates[g].len() · candidates[g+1].len()`). Empty when neither
    /// pairwise template is active.
    pub(crate) pair_off: Vec<usize>,
    /// Precomputed `fst(g, candidates[g][a], candidates[g+1][b])` per gap,
    /// flat (empty when transitions are off).
    pub(crate) fst_table: Vec<f64>,
    /// Precomputed `fsc(g, candidates[g][a], candidates[g+1][b])` per gap,
    /// flat (empty when synchronizations are off).
    pub(crate) fsc_table: Vec<f64>,
}

impl<'a> SequenceContext<'a> {
    /// Builds the context for decoding (candidates from the spatial index
    /// only).
    pub fn build(
        space: &'a IndoorSpace,
        config: &'a C2mnConfig,
        records: &[PositioningRecord],
        region_freq: &[f64],
    ) -> Self {
        Self::build_inner(space, config, records, region_freq, None)
    }

    /// Builds the context for training: the ground-truth region of each
    /// record is force-included in its candidate set so empirical features
    /// are always defined.
    pub fn build_for_training(
        space: &'a IndoorSpace,
        config: &'a C2mnConfig,
        records: &[PositioningRecord],
        region_freq: &[f64],
        truth_regions: &[RegionId],
    ) -> Self {
        Self::build_inner(space, config, records, region_freq, Some(truth_regions))
    }

    fn build_inner(
        space: &'a IndoorSpace,
        config: &'a C2mnConfig,
        records: &[PositioningRecord],
        region_freq: &[f64],
        truth: Option<&[RegionId]>,
    ) -> Self {
        let n = records.len();
        let v = config.uncertainty_radius;

        // Density classes over the whole p-sequence (fem + event init).
        let st_points: Vec<StPoint> = records
            .iter()
            .map(|r| StPoint::new(r.location.xy, r.t, r.location.floor))
            .collect();
        let clustering = StDbscan::new(config.dbscan).run(&st_points);
        let density = clustering.classes.clone();
        let dbscan_events: Vec<MobilityEvent> = density
            .iter()
            .map(|c| match c {
                DensityClass::Noise => MobilityEvent::Pass,
                _ => MobilityEvent::Stay,
            })
            .collect();
        let fem: Vec<[f64; 2]> = density
            .iter()
            .map(|c| match c {
                DensityClass::Core => [1.0, 0.0],
                DensityClass::Border => [config.alpha, config.beta],
                DensityClass::Noise => [0.0, 1.0],
            })
            .collect();

        // Candidate regions + spatial matching features.
        let max_freq = region_freq.iter().copied().fold(0.0f64, f64::max);
        let mut candidates = Vec::with_capacity(n);
        let mut fsm = Vec::with_capacity(n);
        let mut nearest_idx = Vec::with_capacity(n);
        let mut cand_buf: Vec<RegionId> = Vec::new();
        for (i, rec) in records.iter().enumerate() {
            space.candidate_regions(&rec.location, v, &mut cand_buf);
            // Sort by distance to the record and truncate.
            let floor = space.clamp_floor(rec.location.floor);
            let dist_to = |r: RegionId| -> f64 {
                space
                    .region(r)
                    .partitions
                    .iter()
                    .filter(|p| space.partition(**p).floor == floor)
                    .map(|p| space.partition(*p).rect.distance_to_point(rec.location.xy))
                    .fold(f64::INFINITY, f64::min)
            };
            cand_buf.sort_by(|&a, &b| dist_to(a).partial_cmp(&dist_to(b)).unwrap());
            cand_buf.truncate(config.max_candidates);
            let nearest = space.nearest_region(&rec.location);
            if !cand_buf.contains(&nearest) {
                cand_buf.push(nearest);
            }
            if let Some(truth) = truth {
                if !cand_buf.contains(&truth[i]) {
                    cand_buf.push(truth[i]);
                }
            }
            let circle = Circle::new(rec.location.xy, v);
            let denom = circle.area().max(f64::EPSILON);
            let row: Vec<f64> = cand_buf
                .iter()
                .map(|&r| {
                    let mut val =
                        space.region_circle_overlap(r, rec.location.floor, circle) / denom;
                    if config.use_frequency_prior && max_freq > 0.0 {
                        let f = region_freq.get(r.index()).copied().unwrap_or(0.0);
                        val *= f / max_freq;
                    }
                    val
                })
                .collect();
            nearest_idx.push(cand_buf.iter().position(|&r| r == nearest).unwrap());
            candidates.push(cand_buf.clone());
            fsm.push(row);
        }

        // Pairwise observation quantities.
        let mut de = Vec::with_capacity(n.saturating_sub(1));
        let mut dt = Vec::with_capacity(n.saturating_sub(1));
        let mut speed_term = Vec::with_capacity(n.saturating_sub(1));
        for w in records.windows(2) {
            let d = w[0].location.xy.distance(w[1].location.xy);
            let g = (w[1].t - w[0].t).max(1e-6);
            de.push(d);
            dt.push(g);
            speed_term.push((config.gamma_ec * d / g).min(1.0));
        }
        let mut de_prefix = Vec::with_capacity(n);
        de_prefix.push(0.0);
        for (k, &d) in de.iter().enumerate() {
            de_prefix.push(de_prefix[k] + d);
        }

        // Turn flags (footnote 4) as prefix sums: turn_prefix[i+1] counts
        // turns among records 0..=i.
        let mut turn_prefix = Vec::with_capacity(n + 1);
        turn_prefix.push(0u32);
        for i in 0..n {
            let is = i > 0
                && i + 1 < n
                && is_turn(
                    records[i - 1].location.xy,
                    records[i].location.xy,
                    records[i + 1].location.xy,
                );
            turn_prefix.push(turn_prefix[i] + u32::from(is));
        }

        let mut ctx = SequenceContext {
            space,
            config,
            records: records.to_vec(),
            candidates,
            fsm,
            fem,
            density,
            de,
            dt,
            speed_term,
            de_prefix,
            turn_prefix,
            nearest_idx,
            dbscan_events,
            pair_off: Vec::new(),
            fst_table: Vec::new(),
            fsc_table: Vec::new(),
        };
        ctx.build_pairwise_tables();
        ctx
    }

    /// Precomputes the per-edge pairwise features `fst`/`fsc` over every
    /// `(candidate, candidate)` pair of every gap into flat arenas.
    ///
    /// Both features bottom out in the same expensive
    /// `region_expected_miwd` lookup; a sweep evaluates them four times per
    /// site visit, and a decode runs tens of sweeps over the same context.
    /// Tabulating once per context (|candidates|² per gap) and indexing by
    /// candidate index is exact memoization: the stored values come from
    /// the very same [`fst`](Self::fst)/[`fsc`](Self::fsc) expressions, so
    /// every read is bitwise identical to recomputation.
    fn build_pairwise_tables(&mut self) {
        let n = self.len();
        let s = &self.config.structure;
        if n < 2 || !(s.transitions || s.synchronizations) {
            return;
        }
        let mut pair_off = Vec::with_capacity(n);
        let mut total = 0usize;
        for g in 0..n - 1 {
            pair_off.push(total);
            total += self.candidates[g].len() * self.candidates[g + 1].len();
        }
        pair_off.push(total);
        let mut fst_table = Vec::with_capacity(if s.transitions { total } else { 0 });
        let mut fsc_table = Vec::with_capacity(if s.synchronizations { total } else { 0 });
        for g in 0..n - 1 {
            for &a in &self.candidates[g] {
                for &b in &self.candidates[g + 1] {
                    if s.transitions {
                        fst_table.push(self.fst(g, a, b));
                    }
                    if s.synchronizations {
                        fsc_table.push(self.fsc(g, a, b));
                    }
                }
            }
        }
        self.pair_off = pair_off;
        self.fst_table = fst_table;
        self.fsc_table = fsc_table;
        ism_pgm::note_pairwise_table_bytes(self.pairwise_table_bytes() as u64);
    }

    /// Bytes held by the precomputed pairwise feature tables.
    pub fn pairwise_table_bytes(&self) -> usize {
        (self.fst_table.len() + self.fsc_table.len()) * std::mem::size_of::<f64>()
            + self.pair_off.len() * std::mem::size_of::<usize>()
    }

    /// Sequence length.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of turns among records `a..=b` (interior vertices only).
    #[inline]
    pub fn turns_in(&self, a: usize, b: usize) -> u32 {
        self.turn_prefix[b + 1] - self.turn_prefix[a]
    }

    /// Total observed Euclidean path length from record `a` to record `b`.
    #[inline]
    pub fn path_length(&self, a: usize, b: usize) -> f64 {
        self.de_prefix[b] - self.de_prefix[a]
    }

    /// The candidate index of a region at record `i`, if present.
    pub fn candidate_index(&self, i: usize, region: RegionId) -> Option<usize> {
        self.candidates[i].iter().position(|&r| r == region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_geometry::Point2;
    use ism_indoor::{BuildingGenerator, IndoorPoint};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (IndoorSpace, C2mnConfig) {
        let space = BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        (space, C2mnConfig::quick_test())
    }

    fn records(space: &IndoorSpace) -> Vec<PositioningRecord> {
        // A short walk across the venue.
        let b = space.partitions()[3].rect.center();
        (0..8)
            .map(|i| {
                PositioningRecord::new(
                    IndoorPoint::new(0, Point2::new(b.x - 8.0 + 2.0 * i as f64, b.y)),
                    10.0 * i as f64,
                )
            })
            .collect()
    }

    #[test]
    fn candidates_are_nonempty_and_contain_nearest() {
        let (space, config) = setup();
        let recs = records(&space);
        let ctx = SequenceContext::build(&space, &config, &recs, &[]);
        assert_eq!(ctx.len(), 8);
        for (i, rec) in recs.iter().enumerate() {
            assert!(!ctx.candidates[i].is_empty());
            let nearest = ctx.candidates[i][ctx.nearest_idx[i]];
            assert_eq!(nearest, space.nearest_region(&rec.location));
            // fsm rows align with candidates and are valid probabilities.
            assert_eq!(ctx.fsm[i].len(), ctx.candidates[i].len());
            for &v in &ctx.fsm[i] {
                assert!((0.0..=1.0 + 1e-9).contains(&v));
            }
        }
    }

    #[test]
    fn training_context_includes_truth() {
        let (space, config) = setup();
        let recs = records(&space);
        // Force an unlikely truth region (far away) for every record.
        let far = space.regions().last().unwrap().id;
        let truth = vec![far; recs.len()];
        let ctx = SequenceContext::build_for_training(&space, &config, &recs, &[], &truth);
        for i in 0..ctx.len() {
            assert!(ctx.candidates[i].contains(&far));
        }
    }

    #[test]
    fn pairwise_quantities_have_correct_lengths() {
        let (space, config) = setup();
        let recs = records(&space);
        let ctx = SequenceContext::build(&space, &config, &recs, &[]);
        assert_eq!(ctx.de.len(), 7);
        assert_eq!(ctx.dt.len(), 7);
        assert_eq!(ctx.speed_term.len(), 7);
        assert_eq!(ctx.de_prefix.len(), 8);
        assert!((ctx.path_length(0, 7) - ctx.de.iter().sum::<f64>()).abs() < 1e-12);
        for &s in &ctx.speed_term {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn straight_walk_has_no_turns() {
        let (space, config) = setup();
        let recs = records(&space);
        let ctx = SequenceContext::build(&space, &config, &recs, &[]);
        assert_eq!(ctx.turns_in(0, ctx.len() - 1), 0);
    }

    #[test]
    fn fem_reflects_density() {
        let (space, config) = setup();
        // A tight cluster of records (a stay): all should be core/border.
        let c = space.partitions()[3].rect.center();
        let recs: Vec<PositioningRecord> = (0..6)
            .map(|i| {
                PositioningRecord::new(
                    IndoorPoint::new(0, Point2::new(c.x + 0.3 * i as f64, c.y)),
                    8.0 * i as f64,
                )
            })
            .collect();
        let ctx = SequenceContext::build(&space, &config, &recs, &[]);
        assert!(ctx
            .density
            .iter()
            .all(|d| *d != ism_cluster::DensityClass::Noise));
        for f in &ctx.fem {
            assert!(f[0] >= f[1], "stay affinity should dominate: {f:?}");
        }
        assert!(ctx.dbscan_events.iter().all(|e| *e == MobilityEvent::Stay));
    }

    #[test]
    fn empty_sequence() {
        let (space, config) = setup();
        let ctx = SequenceContext::build(&space, &config, &[], &[]);
        assert!(ctx.is_empty());
        assert_eq!(ctx.len(), 0);
    }
}
