//! Durability of training: checkpoint files round-trip bit-exactly,
//! interrupted-then-resumed training equals uninterrupted training byte
//! for byte, and corrupt checkpoint files fail with typed errors — never
//! a panic, never an unbounded allocation.

use ism_c2mn::{C2mnConfig, TrainControl, Trainer};
use ism_codec::{write_artifact, ArtifactKind, PersistError};
use ism_indoor::BuildingGenerator;
use ism_mobility::{Dataset, LabeledSequence, PositioningConfig, SimulationConfig};
use ism_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn training_data() -> (ism_indoor::IndoorSpace, Vec<LabeledSequence>) {
    let mut rng = StdRng::seed_from_u64(1);
    let space = BuildingGenerator::small_office()
        .generate(&mut rng)
        .unwrap();
    let dataset = Dataset::generate(
        "train",
        &space,
        SimulationConfig::quick(),
        PositioningConfig::synthetic(8.0, 2.0),
        None,
        5,
        &mut rng,
    );
    (space, dataset.sequences)
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ism-c2mn-persistence-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn checkpoint_file_round_trips_bit_exactly() {
    let (space, seqs) = training_data();
    let path = test_dir("roundtrip").join("train.ckpt");
    let out = Trainer::new(&space, C2mnConfig::quick_test())
        .seed(11)
        .checkpoint_to(&path)
        .observer(|p| {
            if p.iteration == 2 {
                TrainControl::Stop
            } else {
                TrainControl::Continue
            }
        })
        .run(&seqs)
        .unwrap();
    let loaded = ism_c2mn::TrainCheckpoint::load_from(&path).unwrap();
    // `TrainCheckpoint` compares every field, weights included.
    assert_eq!(loaded, out.checkpoint);
    assert_eq!(loaded.next_iteration(), 2);
}

#[test]
fn interrupted_then_resumed_training_is_byte_exact() {
    let (space, seqs) = training_data();
    let config = C2mnConfig::quick_test();

    // Uninterrupted reference.
    let whole = Trainer::new(&space, config.clone())
        .seed(23)
        .run(&seqs)
        .unwrap();

    // Interrupted run: stop after two iterations, checkpointing to disk.
    let path = test_dir("resume").join("train.ckpt");
    let first = Trainer::new(&space, config.clone())
        .seed(23)
        .checkpoint_to(&path)
        .observer(|p| {
            if p.iteration == 2 {
                TrainControl::Stop
            } else {
                TrainControl::Continue
            }
        })
        .run(&seqs)
        .unwrap();
    assert!(first.report.early_stopped);

    // Resume from the file — in a "new process" as far as the trainer is
    // concerned: nothing carries over but the artifact and the seed.
    let resumed = Trainer::new(&space, config)
        .seed(23)
        .resume_from(&path)
        .unwrap()
        .run(&seqs)
        .unwrap();

    assert_eq!(
        resumed.model.weights().0.map(f64::to_bits),
        whole.model.weights().0.map(f64::to_bits),
        "resumed-from-disk training must equal uninterrupted training bit for bit"
    );
    assert_eq!(resumed.checkpoint, whole.checkpoint);
}

#[test]
fn resume_is_byte_exact_across_thread_counts() {
    let (space, seqs) = training_data();
    let config = C2mnConfig::quick_test();
    let whole = Trainer::new(&space, config.clone())
        .seed(31)
        .run(&seqs)
        .unwrap();
    let path = test_dir("resume-threads").join("train.ckpt");
    Trainer::new(&space, config.clone())
        .seed(31)
        .checkpoint_to(&path)
        .observer(|p| {
            if p.iteration == 1 {
                TrainControl::Stop
            } else {
                TrainControl::Continue
            }
        })
        .run(&seqs)
        .unwrap();
    // The resuming "process" may use a different worker count.
    let pool = WorkerPool::new(3);
    let resumed = Trainer::new(&space, config)
        .seed(31)
        .pool(&pool)
        .resume_from(&path)
        .unwrap()
        .run(&seqs)
        .unwrap();
    assert_eq!(
        resumed.model.weights().0.map(f64::to_bits),
        whole.model.weights().0.map(f64::to_bits)
    );
}

#[test]
fn missing_checkpoint_is_a_typed_io_error() {
    let (space, _) = training_data();
    let path = test_dir("missing").join("nope.ckpt");
    let err = Trainer::new(&space, C2mnConfig::quick_test())
        .resume_from(&path)
        .unwrap_err();
    assert!(matches!(err, PersistError::Io { .. }), "got {err:?}");
}

#[test]
fn corrupt_checkpoints_fail_typed_never_panic() {
    let (space, seqs) = training_data();
    let dir = test_dir("corrupt");
    let path = dir.join("train.ckpt");
    Trainer::new(&space, C2mnConfig::quick_test())
        .seed(7)
        .checkpoint_to(&path)
        .observer(|p| {
            if p.iteration == 1 {
                TrainControl::Stop
            } else {
                TrainControl::Continue
            }
        })
        .run(&seqs)
        .unwrap();
    let valid = std::fs::read(&path).unwrap();

    let corrupt = dir.join("corrupt.ckpt");
    // Flip one bit at a sweep of offsets: header, frame prefix, payload.
    for offset in (0..valid.len()).step_by(7) {
        let mut bytes = valid.clone();
        bytes[offset] ^= 0x10;
        std::fs::write(&corrupt, &bytes).unwrap();
        match ism_c2mn::TrainCheckpoint::load_from(&corrupt) {
            // Decoding may only succeed if the flip produced the same
            // logical value (it cannot: CRC-32 catches all 1-bit flips).
            Ok(_) => panic!("1-bit flip at {offset} went undetected"),
            Err(PersistError::Codec { .. }) => {}
            Err(other) => panic!("unexpected error kind at {offset}: {other:?}"),
        }
    }
    // Every strict truncation fails too.
    for len in (0..valid.len()).step_by(11) {
        std::fs::write(&corrupt, &valid[..len]).unwrap();
        assert!(
            ism_c2mn::TrainCheckpoint::load_from(&corrupt).is_err(),
            "truncation to {len} bytes went undetected"
        );
    }
    // A well-formed artifact of the wrong kind is rejected up front.
    write_artifact(&corrupt, ArtifactKind::EngineSnapshot, b"not a checkpoint").unwrap();
    assert!(ism_c2mn::TrainCheckpoint::load_from(&corrupt).is_err());
}
