//! Probabilistic graphical model toolkit.
//!
//! The C2MN paper builds on machinery that has no Rust OSS equivalent (the
//! authors used CRF++ as scaffolding). This crate provides it:
//!
//! * [`hmm`] — discrete hidden Markov models with counting-based estimation
//!   and Viterbi decoding (the paper's HMM+DC and SAP baselines),
//! * [`chain_crf`] — a linear-chain conditional random field trained by
//!   exact forward–backward gradients with L-BFGS (the classic CMN of
//!   §II-B; also used to sanity-check the learning stack),
//! * [`gibbs`] — Markov-blanket samplers over a [`ConditionalModel`]:
//!   Gibbs sweeps, iterated conditional modes (ICM) and simulated
//!   annealing, the inference workhorses of C2MN's alternate learning and
//!   joint decoding. The memoized variants ([`gibbs_sweep_cached`] /
//!   [`icm_sweep_cached`] over a [`SweepCache`]) recompute a site's
//!   candidate row only when its Markov blanket
//!   ([`ConditionalModel::dependents`]) changed — byte-identical to the
//!   naive sweeps, which remain compiled as the reference oracle,
//! * [`util`] — numerically stable log-space helpers.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod chain_crf;
pub mod gibbs;
pub mod hmm;
pub mod util;

pub use chain_crf::{ChainCrf, ChainCrfConfig};
pub use gibbs::{
    gibbs_sweep, gibbs_sweep_cached, gibbs_sweep_with, icm_sweep, icm_sweep_cached, kernel_stats,
    note_pairwise_table_bytes, simulated_annealing, AnnealSchedule, ConditionalModel, KernelStats,
    SweepCache, SweepScratch,
};
pub use hmm::{Hmm, HmmConfig};
pub use util::{log_sum_exp, sample_from_log_weights};
