//! 2-D geometry kernel for indoor-space computations.
//!
//! This crate provides the exact geometric primitives the C2MN annotation
//! pipeline depends on:
//!
//! * [`Point2`] / vector arithmetic,
//! * axis-aligned rectangles ([`Rect`]) used to model indoor partitions,
//! * circles ([`Circle`]) used to model positioning uncertainty regions,
//! * the **exact** circle–rectangle intersection area (the spatial matching
//!   feature `fsm` of the paper integrates an uncertainty disk against a
//!   semantic region),
//! * polyline utilities (path length, average speed, turn counting per the
//!   paper's footnote 4).
//!
//! All routines are allocation-free and suitable for hot loops.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod circle;
mod point;
mod polyline;
mod rect;

pub use circle::{circle_polygon_area, circle_rect_intersection_area, Circle};
pub use point::Point2;
pub use polyline::{count_turns, is_turn, path_length};
pub use rect::Rect;

/// Numerical tolerance used by approximate comparisons in this crate.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` when two floating point values are equal within [`EPSILON`]
/// scaled by the magnitude of the operands.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= EPSILON * scale
}
