//! Markov-blanket inference: Gibbs sampling, ICM, simulated annealing.
//!
//! C2MN's learning and decoding both operate on *local conditionals*: the
//! probability of one target node's label given its Markov blanket
//! (§IV-A). This module abstracts that interface as [`ConditionalModel`]
//! and provides the three sweep strategies the pipeline uses:
//!
//! * [`gibbs_sweep`] — stochastic resampling (the MCMC inference of
//!   Algorithm 1),
//! * [`icm_sweep`] — iterated conditional modes for greedy decoding,
//! * [`simulated_annealing`] — tempered Gibbs for higher-quality decoding.

use crate::util::sample_from_log_weights;
use rand::Rng;

/// A model exposing per-site conditional log-potentials.
///
/// A *site* is one target node (e.g. the region label of record `i`); its
/// candidates are a dense `0..num_candidates(site)` relabelling of the
/// admissible labels. `local_log_potential` must return the unnormalised
/// log-probability of assigning `candidate` at `site` **given the current
/// assignment of every other site** (i.e. the sum of the log-potentials of
/// all cliques touching the site).
pub trait ConditionalModel {
    /// Number of sites in the model.
    fn num_sites(&self) -> usize;

    /// Number of candidate labels at `site`.
    fn num_candidates(&self, site: usize) -> usize;

    /// Unnormalised conditional log-potential of `candidate` at `site`
    /// under the current `state` (dense candidate indices per site).
    fn local_log_potential(&self, site: usize, candidate: usize, state: &[usize]) -> f64;
}

/// Reusable buffers for the sweep hot path.
///
/// [`gibbs_sweep`] needs one log-weight vector per resampled site; decoding
/// a sequence runs tens of sweeps, and a batch workload decodes thousands
/// of sequences. Holding the buffer in a `SweepScratch` owned by the caller
/// (one per worker thread in the batch engine) turns those per-sweep
/// allocations into a single allocation per worker.
#[derive(Debug, Default)]
pub struct SweepScratch {
    log_weights: Vec<f64>,
}

impl SweepScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SweepScratch::default()
    }
}

/// One Gibbs sweep: resamples every site in order from its conditional at
/// temperature `temperature` (1.0 = the model distribution).
///
/// Allocates a fresh buffer per call; hot paths should prefer
/// [`gibbs_sweep_with`] with a reused [`SweepScratch`].
///
/// Returns the number of sites whose label changed.
pub fn gibbs_sweep<M: ConditionalModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    state: &mut [usize],
    temperature: f64,
    rng: &mut R,
) -> usize {
    gibbs_sweep_with(model, state, temperature, rng, &mut SweepScratch::new())
}

/// [`gibbs_sweep`] routed through caller-owned scratch buffers.
///
/// Behaviour (including the RNG stream consumed) is identical to
/// [`gibbs_sweep`]; only the allocation strategy differs.
pub fn gibbs_sweep_with<M: ConditionalModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    state: &mut [usize],
    temperature: f64,
    rng: &mut R,
    scratch: &mut SweepScratch,
) -> usize {
    debug_assert_eq!(state.len(), model.num_sites());
    let inv_t = 1.0 / temperature.max(1e-9);
    let mut changed = 0;
    let weights = &mut scratch.log_weights;
    for site in 0..model.num_sites() {
        let k = model.num_candidates(site);
        if k <= 1 {
            continue;
        }
        weights.clear();
        weights.extend((0..k).map(|c| model.local_log_potential(site, c, state) * inv_t));
        let new = sample_from_log_weights(weights, rng);
        if new != state[site] {
            changed += 1;
        }
        state[site] = new;
    }
    changed
}

/// One ICM sweep: sets every site to its conditional argmax.
///
/// Returns the number of sites whose label changed.
pub fn icm_sweep<M: ConditionalModel + ?Sized>(model: &M, state: &mut [usize]) -> usize {
    debug_assert_eq!(state.len(), model.num_sites());
    let mut changed = 0;
    for site in 0..model.num_sites() {
        let k = model.num_candidates(site);
        if k <= 1 {
            continue;
        }
        let mut best = f64::NEG_INFINITY;
        let mut arg = state[site];
        for c in 0..k {
            let v = model.local_log_potential(site, c, state);
            if v > best {
                best = v;
                arg = c;
            }
        }
        if arg != state[site] {
            changed += 1;
            state[site] = arg;
        }
    }
    changed
}

/// Geometric annealing schedule from `t_start` down to `t_end`.
#[derive(Debug, Clone, Copy)]
pub struct AnnealSchedule {
    /// Initial temperature (> t_end).
    pub t_start: f64,
    /// Final temperature (> 0).
    pub t_end: f64,
    /// Number of Gibbs sweeps across the schedule.
    pub sweeps: usize,
}

impl Default for AnnealSchedule {
    fn default() -> Self {
        AnnealSchedule {
            t_start: 2.0,
            t_end: 0.2,
            sweeps: 20,
        }
    }
}

impl AnnealSchedule {
    /// Temperature of sweep `i` (`0 ≤ i < sweeps`): geometric interpolation
    /// with `temperature(0) = t_start` and
    /// `temperature(sweeps − 1) = t_end`.
    ///
    /// The denominator is `sweeps − 1`, not `sweeps`: dividing by `sweeps`
    /// would leave the final sweep at `t_start·ratio^((sweeps−1)/sweeps)`,
    /// never reaching the configured `t_end` (and a 1-sweep schedule would
    /// run entirely at `t_start`).
    pub fn temperature(&self, i: usize) -> f64 {
        debug_assert!(i < self.sweeps.max(1));
        if self.sweeps <= 1 {
            // A single sweep runs at the coldest configured temperature.
            return self.t_end;
        }
        let ratio = (self.t_end / self.t_start).max(1e-12);
        let frac = i as f64 / (self.sweeps - 1) as f64;
        self.t_start * ratio.powf(frac)
    }
}

/// Simulated annealing: tempered Gibbs sweeps followed by ICM until a local
/// optimum is reached (at most `num_sites` extra ICM sweeps).
pub fn simulated_annealing<M: ConditionalModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    state: &mut [usize],
    schedule: &AnnealSchedule,
    rng: &mut R,
) {
    let mut scratch = SweepScratch::new();
    for i in 0..schedule.sweeps {
        gibbs_sweep_with(model, state, schedule.temperature(i), rng, &mut scratch);
    }
    for _ in 0..model.num_sites().max(1) {
        if icm_sweep(model, state) == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 1-D Ising-style chain: K labels, unary preference for label
    /// `prefs[i]`, pairwise coupling rewarding equal neighbours.
    struct Chain {
        prefs: Vec<usize>,
        k: usize,
        unary: f64,
        coupling: f64,
    }

    impl ConditionalModel for Chain {
        fn num_sites(&self) -> usize {
            self.prefs.len()
        }
        fn num_candidates(&self, _site: usize) -> usize {
            self.k
        }
        fn local_log_potential(&self, site: usize, candidate: usize, state: &[usize]) -> f64 {
            let mut v = if candidate == self.prefs[site] {
                self.unary
            } else {
                0.0
            };
            if site > 0 && state[site - 1] == candidate {
                v += self.coupling;
            }
            if site + 1 < state.len() && state[site + 1] == candidate {
                v += self.coupling;
            }
            v
        }
    }

    #[test]
    fn icm_reaches_unary_optimum_without_coupling() {
        let model = Chain {
            prefs: vec![2, 0, 1, 1, 0],
            k: 3,
            unary: 1.0,
            coupling: 0.0,
        };
        let mut state = vec![0; 5];
        icm_sweep(&model, &mut state);
        assert_eq!(state, vec![2, 0, 1, 1, 0]);
        // A second sweep changes nothing.
        assert_eq!(icm_sweep(&model, &mut state), 0);
    }

    #[test]
    fn coupling_smooths_isolated_dissent() {
        // Strong coupling: starting from the all-zero labelling, the middle
        // site's unary preference for label 1 is overruled by both
        // neighbours (coupling 2+2 beats unary 0.5), so ICM keeps it 0.
        let model = Chain {
            prefs: vec![0, 1, 0, 0, 0],
            k: 2,
            unary: 0.5,
            coupling: 2.0,
        };
        let mut state = vec![0, 0, 0, 0, 0];
        let changed = icm_sweep(&model, &mut state);
        assert_eq!(changed, 0);
        assert_eq!(state, vec![0, 0, 0, 0, 0]);

        // With weak coupling the unary preference wins instead.
        let weak = Chain {
            prefs: vec![0, 1, 0, 0, 0],
            k: 2,
            unary: 0.5,
            coupling: 0.1,
        };
        let mut state = vec![0, 0, 0, 0, 0];
        icm_sweep(&weak, &mut state);
        assert_eq!(state, vec![0, 1, 0, 0, 0]);
    }

    #[test]
    fn gibbs_mixes_toward_mode() {
        let model = Chain {
            prefs: vec![1; 12],
            k: 2,
            unary: 2.0,
            coupling: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut state = vec![0; 12];
        for _ in 0..50 {
            gibbs_sweep(&model, &mut state, 1.0, &mut rng);
        }
        let ones = state.iter().filter(|&&s| s == 1).count();
        assert!(ones >= 10, "state {state:?}");
    }

    #[test]
    fn low_temperature_gibbs_is_greedy() {
        let model = Chain {
            prefs: vec![1, 1, 1, 1],
            k: 2,
            unary: 1.0,
            coupling: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let mut state = vec![0; 4];
        gibbs_sweep(&model, &mut state, 1e-6, &mut rng);
        assert_eq!(state, vec![1, 1, 1, 1]);
    }

    #[test]
    fn annealing_finds_global_mode_despite_bad_init() {
        let model = Chain {
            prefs: vec![1; 20],
            k: 4,
            unary: 1.5,
            coupling: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut state: Vec<usize> = (0..20).map(|i| i % 4).collect();
        simulated_annealing(&model, &mut state, &AnnealSchedule::default(), &mut rng);
        assert_eq!(state, vec![1; 20]);
    }

    #[test]
    fn schedule_reaches_configured_endpoints() {
        // Regression: `frac = i / sweeps` left the final sweep at
        // t_start·ratio^((sweeps−1)/sweeps) > t_end.
        for sweeps in [2usize, 3, 7, 20, 100] {
            let s = AnnealSchedule {
                t_start: 2.0,
                t_end: 0.2,
                sweeps,
            };
            assert!(
                (s.temperature(0) - 2.0).abs() < 1e-12,
                "sweeps={sweeps}: first sweep at {}",
                s.temperature(0)
            );
            assert!(
                (s.temperature(sweeps - 1) - 0.2).abs() < 1e-12,
                "sweeps={sweeps}: final sweep at {}",
                s.temperature(sweeps - 1)
            );
        }
    }

    #[test]
    fn schedule_is_monotonically_cooling() {
        let s = AnnealSchedule::default();
        for i in 1..s.sweeps {
            assert!(s.temperature(i) < s.temperature(i - 1));
        }
    }

    #[test]
    fn one_sweep_schedule_runs_cold() {
        // Regression: with sweeps = 1 the whole anneal used to run at
        // t_start; a single sweep should use the coldest temperature.
        let s = AnnealSchedule {
            t_start: 2.0,
            t_end: 0.2,
            sweeps: 1,
        };
        assert_eq!(s.temperature(0), 0.2);
    }

    #[test]
    fn scratch_sweep_matches_allocating_sweep() {
        let model = Chain {
            prefs: vec![1, 0, 2, 1, 1, 0, 2, 2],
            k: 3,
            unary: 1.0,
            coupling: 0.7,
        };
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        let mut state_a = vec![0; 8];
        let mut state_b = vec![0; 8];
        let mut scratch = SweepScratch::new();
        for _ in 0..20 {
            let ca = gibbs_sweep(&model, &mut state_a, 0.8, &mut rng_a);
            let cb = gibbs_sweep_with(&model, &mut state_b, 0.8, &mut rng_b, &mut scratch);
            assert_eq!(ca, cb);
            assert_eq!(state_a, state_b);
        }
    }

    #[test]
    fn single_candidate_sites_are_skipped() {
        struct Fixed;
        impl ConditionalModel for Fixed {
            fn num_sites(&self) -> usize {
                3
            }
            fn num_candidates(&self, _s: usize) -> usize {
                1
            }
            fn local_log_potential(&self, _s: usize, _c: usize, _st: &[usize]) -> f64 {
                0.0
            }
        }
        let mut state = vec![0; 3];
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(gibbs_sweep(&Fixed, &mut state, 1.0, &mut rng), 0);
        assert_eq!(icm_sweep(&Fixed, &mut state), 0);
    }
}
