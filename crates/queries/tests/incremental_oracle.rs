//! Incremental-maintenance oracle: a sharded store grown by arbitrary
//! append/seal interleavings equals a `ShardedStoreBuilder::build` from
//! scratch over the same entries — shard layout, posting counts, and both
//! top-k queries — over shard counts {1, 3, 8}.

use ism_indoor::RegionId;
use ism_mobility::{MobilityEvent, MobilitySemantics, TimePeriod};
use ism_queries::{tk_frpq_sharded, tk_prq_sharded, ShardedSemanticsStore, ShardedStoreBuilder};
use ism_runtime::WorkerPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 3] = [1, 3, 8];

#[derive(Debug, Clone, Copy)]
struct Case {
    seed: u64,
    entries: u64,
    regions: u32,
    /// Average entries per append/seal round (1 = seal after every append).
    chunk: u64,
    k: usize,
    qt_start: f64,
    qt_len: f64,
}

/// Random `(object, timeline)` entries with frequent duplicate object ids
/// (one object's chunked sub-sequences arriving separately).
fn random_entries(case: &Case) -> Vec<(u64, Vec<MobilitySemantics>)> {
    let mut rng = StdRng::seed_from_u64(case.seed);
    (0..case.entries)
        .map(|i| {
            let object = if i > 0 && rng.random_bool(0.3) {
                rng.random_range(0..i)
            } else {
                i
            };
            let mut t = rng.random_range(0.0..200.0);
            let mut timeline = Vec::new();
            while t < 1000.0 && timeline.len() < 12 {
                let duration = rng.random_range(1.0..70.0);
                timeline.push(MobilitySemantics {
                    region: RegionId(rng.random_range(0..case.regions)),
                    period: TimePeriod::new(t, t + duration),
                    event: if rng.random_bool(0.6) {
                        MobilityEvent::Stay
                    } else {
                        MobilityEvent::Pass
                    },
                });
                t += duration + rng.random_range(0.5..40.0);
            }
            (object, timeline)
        })
        .collect()
}

prop_compose! {
    fn arb_case()(
        seed in 0u64..u64::MAX / 2,
        entries in 1u64..40,
        regions in 1u32..12,
        chunk in 1u64..10,
        k in 1usize..8,
        qt_start in -100.0f64..1100.0,
        qt_len in 0.0f64..500.0,
    ) -> Case {
        Case { seed, entries, regions, chunk, k, qt_start, qt_len }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Append + seal in random-sized rounds == build from scratch, for
    /// every shard count, including the queries served off the indexes.
    #[test]
    fn incremental_growth_equals_full_rebuild(case in arb_case()) {
        let entries = random_entries(&case);
        let query: Vec<RegionId> = (0..case.regions).map(RegionId).collect();
        let qt = TimePeriod::new(case.qt_start, case.qt_start + case.qt_len);
        let mut chunk_rng = StdRng::seed_from_u64(case.seed ^ 0x5EED);
        for shards in SHARD_COUNTS {
            let reference = {
                let mut b = ShardedStoreBuilder::new(shards);
                for (object, timeline) in &entries {
                    b.insert(*object, timeline.clone());
                }
                b.build()
            };
            let mut live = ShardedSemanticsStore::new(shards);
            let mut i = 0;
            while i < entries.len() {
                let n = (chunk_rng.random_range(1..=case.chunk) as usize).min(entries.len() - i);
                for (object, timeline) in &entries[i..i + n] {
                    live.append(*object, timeline.clone());
                }
                // Alternate sequential and pooled seals.
                if chunk_rng.random_bool(0.5) {
                    live.seal();
                } else {
                    live.seal_with(&WorkerPool::new(4));
                }
                i += n;
            }
            prop_assert_eq!(live.num_pending(), 0);
            prop_assert_eq!(live.len(), reference.len(), "len at shards={}", shards);
            prop_assert_eq!(
                live.num_postings(),
                reference.num_postings(),
                "postings at shards={}", shards
            );
            for s in 0..shards {
                let want: Vec<_> = reference
                    .iter_shard(s)
                    .map(|(id, sem)| (id, sem.to_vec()))
                    .collect();
                let got: Vec<_> = live
                    .iter_shard(s)
                    .map(|(id, sem)| (id, sem.to_vec()))
                    .collect();
                prop_assert_eq!(got, want, "shard {} of {} diverged", s, shards);
            }
            let pool = WorkerPool::new(2);
            prop_assert_eq!(
                tk_prq_sharded(&live, &query, case.k, qt, &pool),
                tk_prq_sharded(&reference, &query, case.k, qt, &pool),
                "TkPRQ diverged at shards={}", shards
            );
            prop_assert_eq!(
                tk_frpq_sharded(&live, &query, case.k, qt, &pool),
                tk_frpq_sharded(&reference, &query, case.k, qt, &pool),
                "TkFRPQ diverged at shards={}", shards
            );
        }
    }
}
