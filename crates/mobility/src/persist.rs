//! `ism-codec` impls for mobility types, plus the compressed
//! semantics-run codec shared by the store snapshot and the engine's seal
//! log.
//!
//! A run of [`MobilitySemantics`] is time-ordered, so it compresses the
//! same way the query-side posting codec does: the first start time is an
//! absolute [`ordered_bits`] pattern, subsequent starts are ZigZag varint
//! deltas in ordered-bits space, and each end encodes as a ZigZag offset
//! from its own start. Regions and event tags follow as varint / byte.
//! Encode → decode is the identity on every finite (and non-finite)
//! timestamp — deltas use wrapping arithmetic on the bit patterns, so no
//! input ordering is assumed.

use ism_codec::{
    ordered_bits, write_u64, write_varint, zigzag, CodecError, Decode, Encode, Reader,
};
use ism_indoor::RegionId;

use crate::types::{MobilityEvent, MobilitySemantics, TimePeriod};

impl Encode for MobilityEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }
}

impl Decode for MobilityEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(MobilityEvent::Stay),
            1 => Ok(MobilityEvent::Pass),
            _ => Err(CodecError::InvalidValue {
                what: "mobility event tag",
            }),
        }
    }
}

impl Encode for TimePeriod {
    fn encode(&self, out: &mut Vec<u8>) {
        self.start.encode(out);
        self.end.encode(out);
    }
}

impl Decode for TimePeriod {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let start = f64::decode(r)?;
        let end = f64::decode(r)?;
        // Construct directly: decode must round-trip every bit pattern the
        // writer can produce, including the `end = -0.0, start = 0.0` edge
        // the posting codec documents.
        Ok(TimePeriod { start, end })
    }
}

impl Encode for MobilitySemantics {
    fn encode(&self, out: &mut Vec<u8>) {
        self.region.encode(out);
        self.period.encode(out);
        self.event.encode(out);
    }
}

impl Decode for MobilitySemantics {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MobilitySemantics {
            region: RegionId::decode(r)?,
            period: TimePeriod::decode(r)?,
            event: MobilityEvent::decode(r)?,
        })
    }
}

/// Appends a delta-compressed encoding of `run` to `out`.
pub fn encode_semantics_run(out: &mut Vec<u8>, run: &[MobilitySemantics]) {
    write_varint(out, run.len() as u64);
    let mut prev_start = 0u64;
    for (i, ms) in run.iter().enumerate() {
        let start = ordered_bits(ms.period.start);
        let end = ordered_bits(ms.period.end);
        if i == 0 {
            write_u64(out, start);
        } else {
            write_varint(out, zigzag(start.wrapping_sub(prev_start) as i64));
        }
        write_varint(out, zigzag(end.wrapping_sub(start) as i64));
        ms.region.encode(out);
        ms.event.encode(out);
        prev_start = start;
    }
}

/// Decodes a run written by [`encode_semantics_run`].
pub fn decode_semantics_run(r: &mut Reader<'_>) -> Result<Vec<MobilitySemantics>, CodecError> {
    // Each entry is ≥ 4 bytes after the first (start delta, end offset,
    // region, event); ≥ 1 is all the pre-allocation guard needs.
    let count = r.count_prefix(4)?;
    let mut out = Vec::with_capacity(count);
    let mut prev_start = 0u64;
    for i in 0..count {
        let start = if i == 0 {
            r.u64()?
        } else {
            prev_start.wrapping_add(r.signed_varint()? as u64)
        };
        let end = start.wrapping_add(r.signed_varint()? as u64);
        let region = RegionId::decode(r)?;
        let event = MobilityEvent::decode(r)?;
        out.push(MobilitySemantics {
            region,
            period: TimePeriod {
                start: ism_codec::from_ordered_bits(start),
                end: ism_codec::from_ordered_bits(end),
            },
            event,
        });
        prev_start = start;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(region: u32, start: f64, end: f64, event: MobilityEvent) -> MobilitySemantics {
        MobilitySemantics {
            region: RegionId(region),
            period: TimePeriod { start, end },
            event,
        }
    }

    #[test]
    fn semantics_round_trip() {
        let v = ms(7, 100.5, 230.25, MobilityEvent::Stay);
        let bytes = v.to_bytes();
        assert_eq!(MobilitySemantics::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn bad_event_tag_is_typed_error() {
        let mut bytes = ms(1, 0.0, 1.0, MobilityEvent::Pass).to_bytes();
        let last = bytes.len() - 1;
        bytes[last] = 9;
        assert!(matches!(
            MobilitySemantics::from_bytes(&bytes),
            Err(CodecError::InvalidValue { .. })
        ));
    }

    #[test]
    fn run_codec_round_trips_edge_timestamps() {
        let runs: Vec<Vec<MobilitySemantics>> = vec![
            vec![],
            vec![ms(0, -0.0, 0.0, MobilityEvent::Pass)],
            vec![
                ms(3, 10.0, 40.0, MobilityEvent::Stay),
                ms(5, 40.0, 42.5, MobilityEvent::Pass),
                ms(3, 42.5, 1e9, MobilityEvent::Stay),
            ],
            // Deliberately unsorted + non-finite: the codec must not assume
            // ordering or finiteness.
            vec![
                ms(1, 50.0, 60.0, MobilityEvent::Pass),
                ms(2, -1e300, f64::INFINITY, MobilityEvent::Stay),
            ],
        ];
        for run in runs {
            let mut out = Vec::new();
            encode_semantics_run(&mut out, &run);
            let mut r = Reader::new(&out);
            let decoded = decode_semantics_run(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(decoded.len(), run.len());
            for (a, b) in run.iter().zip(&decoded) {
                assert_eq!(a.region, b.region);
                assert_eq!(a.event, b.event);
                assert_eq!(a.period.start.to_bits(), b.period.start.to_bits());
                assert_eq!(a.period.end.to_bits(), b.period.end.to_bits());
            }
        }
    }

    #[test]
    fn run_codec_no_larger_than_fixed_width() {
        let run: Vec<_> = (0..100)
            .map(|i| {
                ms(
                    i % 4,
                    1000.0 + f64::from(i),
                    1001.0 + f64::from(i),
                    MobilityEvent::Stay,
                )
            })
            .collect();
        let mut out = Vec::new();
        encode_semantics_run(&mut out, &run);
        let mut fixed = Vec::new();
        write_varint(&mut fixed, run.len() as u64);
        for v in &run {
            v.encode(&mut fixed);
        }
        assert!(
            out.len() < fixed.len(),
            "delta {} vs fixed {}",
            out.len(),
            fixed.len()
        );
    }

    #[test]
    fn corrupt_run_count_fails_before_allocating() {
        let mut bytes = Vec::new();
        write_varint(&mut bytes, u64::MAX / 8);
        assert!(decode_semantics_run(&mut Reader::new(&bytes)).is_err());
    }
}
