//! Vendored no-op replacements for serde's derive macros.
//!
//! The build environment has no crates.io access, and nothing in the
//! workspace serializes values yet — `#[derive(Serialize, Deserialize)]`
//! only needs to *compile*. These derives accept the `#[serde(...)]`
//! helper attribute and expand to nothing; real impls can be generated
//! here later without touching any call site.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
