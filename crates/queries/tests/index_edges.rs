//! Edge-case property suite for the compressed, time-bucketed posting
//! index: stay intervals landing exactly on bucket boundaries and the
//! `max_duration` candidate-range widening must never change results
//! versus the flat sequential oracle, and batched evaluation must equal
//! query-at-a-time evaluation.

use ism_indoor::RegionId;
use ism_mobility::{MobilityEvent, MobilitySemantics, TimePeriod};
use ism_queries::{
    tk_frpq, tk_frpq_sharded, tk_prq, tk_prq_sharded, QueryBatch, SemanticsStore,
    ShardedSemanticsStore,
};
use ism_runtime::WorkerPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one grid-aligned case: every start sits on an integer
/// grid point, so with ≥ 16 postings per region many starts coincide with
/// the equi-width bucket boundaries the index derives from them, and the
/// query window edges land exactly on stored starts/ends.
#[derive(Debug, Clone, Copy)]
struct Case {
    seed: u64,
    objects: u64,
    regions: u32,
    grid: u64,
    k: usize,
    qt_lo: u64,
    qt_len: u64,
}

prop_compose! {
    fn arb_case()(
        seed in 0u64..u64::MAX / 2,
        objects in 1u64..40,
        regions in 1u32..6,
        grid in 1u64..20,
        k in 1usize..6,
        qt_lo in 0u64..80,
        qt_len in 0u64..80,
    ) -> Case {
        Case { seed, objects, regions, grid, k, qt_lo, qt_len }
    }
}

/// Builds a store whose starts/ends are integer multiples of `grid`, with
/// a sprinkle of much-longer stays so `max_duration` widening is load
/// bearing: those stays begin well before a late query window yet overlap
/// it, and only the widened candidate range finds them.
fn grid_store(case: &Case) -> SemanticsStore {
    let mut rng = StdRng::seed_from_u64(case.seed);
    let mut store = SemanticsStore::new();
    for object in 0..case.objects {
        let timeline: Vec<MobilitySemantics> = (0..rng.random_range(1..6))
            .map(|_| {
                let start = (rng.random_range(0..100u64) * case.grid) as f64;
                let cells = if rng.random_bool(0.15) {
                    rng.random_range(50..200u64)
                } else {
                    rng.random_range(0..6u64)
                };
                MobilitySemantics {
                    region: RegionId(rng.random_range(0..case.regions)),
                    period: TimePeriod::new(start, start + (cells * case.grid) as f64),
                    event: if rng.random_bool(0.7) {
                        MobilityEvent::Stay
                    } else {
                        MobilityEvent::Pass
                    },
                }
            })
            .collect();
        store.insert(object, timeline);
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bucket-boundary starts/ends and widened candidate ranges never
    /// change results: the compressed sharded index equals the flat scan,
    /// including query windows whose edges touch stored interval edges.
    #[test]
    fn grid_aligned_intervals_match_flat_oracle(case in arb_case()) {
        let store = grid_store(&case);
        let query: Vec<RegionId> = (0..case.regions).map(RegionId).collect();
        let qt = TimePeriod::new(
            (case.qt_lo * case.grid) as f64,
            ((case.qt_lo + case.qt_len) * case.grid) as f64,
        );
        let want_prq = tk_prq(&store, &query, case.k, qt);
        let want_frpq = tk_frpq(&store, &query, case.k, qt);
        for shards in [1usize, 4] {
            let sharded = ShardedSemanticsStore::from_store(&store, shards);
            for threads in [1usize, 3] {
                let pool = WorkerPool::new(threads);
                prop_assert_eq!(
                    &tk_prq_sharded(&sharded, &query, case.k, qt, &pool),
                    &want_prq,
                    "TkPRQ diverged at shards={} threads={}", shards, threads
                );
                prop_assert_eq!(
                    &tk_frpq_sharded(&sharded, &query, case.k, qt, &pool),
                    &want_frpq,
                    "TkFRPQ diverged at shards={} threads={}", shards, threads
                );
            }
        }
    }

    /// A batch carrying both queries — plus empty and unmatched region
    /// sets — answers each slot exactly like the flat oracle.
    #[test]
    fn batched_evaluation_equals_flat_oracle(case in arb_case()) {
        let store = grid_store(&case);
        let query: Vec<RegionId> = (0..case.regions).map(RegionId).collect();
        let qt = TimePeriod::new(
            (case.qt_lo * case.grid) as f64,
            ((case.qt_lo + case.qt_len) * case.grid) as f64,
        );
        let sharded = ShardedSemanticsStore::from_store(&store, 3);
        let pool = WorkerPool::new(2);
        let unknown = vec![RegionId(case.regions + 100)];
        let mut batch = QueryBatch::new();
        batch.tk_prq(&query, case.k, qt);
        batch.tk_frpq(&query, case.k, qt);
        batch.tk_prq(&[], case.k, qt);
        batch.tk_prq(&unknown, case.k, qt);
        batch.tk_frpq(&unknown, case.k, qt);
        let answers = batch.run(&sharded, &pool);
        prop_assert_eq!(
            answers[0].clone().into_prq().unwrap(),
            tk_prq(&store, &query, case.k, qt)
        );
        prop_assert_eq!(
            answers[1].clone().into_frpq().unwrap(),
            tk_frpq(&store, &query, case.k, qt)
        );
        prop_assert_eq!(
            answers[2].clone().into_prq().unwrap(),
            tk_prq(&store, &[], case.k, qt)
        );
        prop_assert_eq!(
            answers[3].clone().into_prq().unwrap(),
            tk_prq(&store, &unknown, case.k, qt)
        );
        prop_assert_eq!(
            answers[4].clone().into_frpq().unwrap(),
            tk_frpq(&store, &unknown, case.k, qt)
        );
    }
}

/// Regression: empty and unknown-region queries early-return the empty
/// ranking on every path — flat, sharded, and batched — even over a
/// populated store.
#[test]
fn empty_and_unknown_queries_agree_across_engines() {
    let store = grid_store(&Case {
        seed: 7,
        objects: 25,
        regions: 4,
        grid: 3,
        k: 5,
        qt_lo: 0,
        qt_len: 50,
    });
    let sharded = ShardedSemanticsStore::from_store(&store, 4);
    let pool = WorkerPool::new(2);
    let qt = TimePeriod::new(0.0, 1e6);
    let unknown = [RegionId(999)];
    let single = [RegionId(1)]; // one region: valid PRQ, empty FRPQ
    for query in [&[][..], &unknown[..]] {
        assert_eq!(tk_prq(&store, query, 5, qt), Vec::new());
        assert_eq!(tk_prq_sharded(&sharded, query, 5, qt, &pool), Vec::new());
        assert_eq!(tk_frpq(&store, query, 5, qt), Vec::new());
        assert_eq!(tk_frpq_sharded(&sharded, query, 5, qt, &pool), Vec::new());
    }
    assert_eq!(
        tk_frpq_sharded(&sharded, &single, 5, qt, &pool),
        tk_frpq(&store, &single, 5, qt)
    );
    assert_eq!(tk_frpq(&store, &single, 5, qt), Vec::new());
}
