//! The training session API: a first-class [`Trainer`] running Algorithm 1
//! with pool-parallel MCMC sampling, per-iteration observation, and exact
//! in-process resume.
//!
//! The alternate learning algorithm used to be a single 445-line function
//! hidden behind `C2mn::train(space, train, config, &mut R)`: the caller
//! threaded an RNG through it, the per-sequence sampling ran site-by-site
//! on one thread, and the only output was the final model. The [`Trainer`]
//! redesigns that surface:
//!
//! * **Pool-parallel** — the per-sequence pseudo-likelihood sampling
//!   (lines 5–8 of Algorithm 1) fans out over a
//!   [`WorkerPool::map_reduce`](ism_runtime::WorkerPool::map_reduce);
//!   sequence `seq` of iteration `iter` samples from an RNG seeded with
//!   [`train_seed`]`(base_seed, iter, seq)`, so the learned weights are
//!   **byte-identical for any thread count** and equal to the sequential
//!   reference.
//! * **Observable** — an [`observer`](Trainer::observer) hook sees a
//!   [`TrainProgress`] after every outer iteration (objective, step size,
//!   weights, wall-clock) and can stop training early.
//! * **Resumable** — [`TrainOutcome::checkpoint`] captures the full
//!   iteration state; [`Trainer::checkpoint`] resumes it byte-exactly.
//!   [`Trainer::initial_weights`] warm-starts a fresh run from previously
//!   learned weights.

use crate::prep::{prepare, TrainingData};
use crate::sample::{sample_sequence, SampleScratch, SequenceSamples};
use crate::step::optimize_step;
use crate::structure::NUM_FEATURES;
use crate::{train_seed, C2mn, C2mnConfig, FirstConfigured, TrainError, Weights};
use ism_codec::PersistError;
use ism_indoor::{IndoorSpace, RegionId};
use ism_mobility::{LabeledSequence, MobilityEvent};
use ism_runtime::WorkerPool;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Diagnostics of one training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Outer iterations performed over the run's lifetime. A resumed run
    /// continues the checkpoint's numbering, so this matches the
    /// uninterrupted run.
    pub iterations: usize,
    /// Whether both chains' weight groups converged (Chebyshev ≤ δ).
    pub converged: bool,
    /// Whether the region-chain weight group converged on its last step.
    pub region_converged: bool,
    /// Whether the event-chain weight group converged on its last step.
    pub event_converged: bool,
    /// Whether an [`observer`](Trainer::observer) stopped the run before
    /// convergence or the iteration cap.
    pub early_stopped: bool,
    /// Training sequences skipped for having fewer than 2 records (they
    /// cannot be labelled as sequences and used to be dropped silently).
    pub skipped_sequences: usize,
    /// Wall-clock training time in seconds (this run only).
    pub train_seconds: f64,
    /// Wall-clock seconds of each outer iteration of this run.
    pub iteration_seconds: Vec<f64>,
    /// Surrogate objective value after each outer iteration of this run.
    pub objective_trace: Vec<f64>,
}

/// Which target chain an outer iteration sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampledChain {
    /// The semantic-region chain was free; events were configured.
    Regions,
    /// The mobility-event chain was free; regions were configured.
    Events,
}

/// Per-iteration progress handed to the [`Trainer::observer`] hook.
#[derive(Debug, Clone)]
pub struct TrainProgress {
    /// The outer iteration that just completed (1-based, counted over the
    /// run's lifetime — a resumed run continues the numbering).
    pub iteration: usize,
    /// The configured iteration cap.
    pub max_iter: usize,
    /// Which chain this iteration sampled.
    pub chain: SampledChain,
    /// Surrogate objective value at the step's solution.
    pub objective: f64,
    /// Chebyshev distance of the weight update on the active components.
    pub step: f64,
    /// The weights after the update.
    pub weights: Weights,
    /// Wall-clock seconds this iteration took.
    pub iteration_seconds: f64,
    /// Whether both chains have converged (training is about to stop).
    pub converged: bool,
}

/// What an [`observer`](Trainer::observer) tells the trainer to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrainControl {
    /// Keep iterating.
    #[default]
    Continue,
    /// Stop after this iteration; [`TrainReport::early_stopped`] is set
    /// and the returned [`TrainOutcome::checkpoint`] resumes exactly here.
    Stop,
}

/// Opaque snapshot of the full iteration state of a training run: the
/// weights, both configured chains, the convergence flags, and the next
/// iteration index.
///
/// Captured by every [`TrainOutcome`]; feed it to [`Trainer::checkpoint`]
/// (with the *same* base seed, configuration, and training set) to resume
/// a run byte-exactly: the resumed run's weights equal the uninterrupted
/// run's, because per-iteration seeds derive from the global iteration
/// index, which the checkpoint preserves.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    pub(crate) weights: Weights,
    pub(crate) next_iteration: usize,
    pub(crate) events_cfg: Vec<Vec<MobilityEvent>>,
    pub(crate) regions_cfg: Vec<Vec<RegionId>>,
    pub(crate) region_converged: bool,
    pub(crate) event_converged: bool,
    pub(crate) did_region_step: bool,
    pub(crate) did_event_step: bool,
}

impl TrainCheckpoint {
    /// The weights at the checkpoint — usable on their own as a
    /// [`Trainer::initial_weights`] warm start for a *fresh* run (e.g.
    /// against new training data, where exact resume is meaningless).
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// The iteration the resumed run will execute next.
    pub fn next_iteration(&self) -> usize {
        self.next_iteration
    }
}

/// Everything a finished [`Trainer::run`] produces.
#[derive(Debug, Clone)]
pub struct TrainOutcome<'a> {
    /// The trained model (weights, region frequencies, report), bound to
    /// the venue the trainer was built over.
    pub model: C2mn<'a>,
    /// Training diagnostics (also available as `model.report()`).
    pub report: TrainReport,
    /// Snapshot of the final iteration state for exact resume.
    pub checkpoint: TrainCheckpoint,
}

type Observer<'ob> = Box<dyn FnMut(&TrainProgress) -> TrainControl + 'ob>;

/// A configurable training session over a venue: Algorithm 1 with
/// pool-parallel per-sequence sampling, deterministic derived seeds, an
/// observation hook, and checkpoint/resume.
///
/// ```
/// # use ism_c2mn::{C2mnConfig, Trainer};
/// # use ism_indoor::BuildingGenerator;
/// # use ism_mobility::{Dataset, PositioningConfig, SimulationConfig};
/// # use ism_runtime::WorkerPool;
/// # use rand::rngs::StdRng;
/// # use rand::SeedableRng;
/// # let mut rng = StdRng::seed_from_u64(1);
/// # let space = BuildingGenerator::small_office().generate(&mut rng).unwrap();
/// # let dataset = Dataset::generate(
/// #     "t", &space, SimulationConfig::quick(),
/// #     PositioningConfig::synthetic(8.0, 2.0), None, 4, &mut rng);
/// let pool = WorkerPool::new(4);
/// let outcome = Trainer::new(&space, C2mnConfig::quick_test())
///     .seed(42)
///     .pool(&pool)
///     .run(&dataset.sequences)
///     .unwrap();
/// assert!(outcome.report.iterations >= 1);
/// let model = outcome.model; // ready to label / annotate
/// # let _ = model;
/// ```
///
/// ## Determinism contract
///
/// Sequence `seq` of outer iteration `iter` draws its MCMC samples from an
/// RNG seeded with [`train_seed`]`(base_seed, iter, seq)` — a function of
/// the indices only, never of the worker that runs it — and the sampled
/// site summaries are folded into the optimizer step in sequence order.
/// The learned weights are therefore **byte-identical for any thread
/// count**, equal to the sequential reference spelled out at
/// [`train_seed`], and reproducible run-to-run.
#[must_use = "a Trainer does nothing until `run`"]
pub struct Trainer<'a, 'ob> {
    space: &'a IndoorSpace,
    config: C2mnConfig,
    seed: u64,
    pool: WorkerPool,
    initial_weights: Option<Weights>,
    checkpoint: Option<TrainCheckpoint>,
    checkpoint_path: Option<PathBuf>,
    observer: Option<Observer<'ob>>,
}

impl fmt::Debug for Trainer<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trainer")
            .field("seed", &self.seed)
            .field("threads", &self.pool.threads())
            .field("initial_weights", &self.initial_weights)
            .field("checkpoint", &self.checkpoint.is_some())
            .field("observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

impl<'a, 'ob> Trainer<'a, 'ob> {
    /// Creates a trainer for `space` with every knob at its default:
    /// base seed 0, a single-threaded pool, uniform initial weights, no
    /// checkpoint, no observer.
    pub fn new(space: &'a IndoorSpace, config: C2mnConfig) -> Self {
        Trainer {
            space,
            config,
            seed: 0,
            pool: WorkerPool::new(1),
            initial_weights: None,
            checkpoint: None,
            checkpoint_path: None,
            observer: None,
        }
    }

    /// The base seed of the [`train_seed`] derivation. Part of the
    /// determinism contract: two runs with equal seed, configuration, and
    /// training set learn byte-identical weights.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The worker pool the per-sequence sampling fans out over (a cloned
    /// handle shares the same persistent workers; an engine shares its
    /// serving pool this way). Thread count never changes the learned
    /// weights.
    pub fn pool(mut self, pool: &WorkerPool) -> Self {
        self.pool = pool.clone();
        self
    }

    /// Warm-starts the run from previously learned weights instead of the
    /// uniform 0.5 initialisation — e.g. retraining on fresh data from the
    /// last deployment's parameters. The run still starts at iteration 0
    /// with freshly configured chains; for byte-exact continuation of an
    /// interrupted run use [`Trainer::checkpoint`].
    pub fn initial_weights(mut self, weights: Weights) -> Self {
        self.initial_weights = Some(weights);
        self
    }

    /// Resumes a run byte-exactly from a [`TrainCheckpoint`] captured by a
    /// previous [`TrainOutcome`] over the same seed, configuration, and
    /// training set. Overrides [`Trainer::initial_weights`].
    pub fn checkpoint(mut self, checkpoint: TrainCheckpoint) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Persists the full iteration state to `path` (atomically, via the
    /// `ism-codec` checkpoint artifact) after every outer iteration and
    /// once more when the run ends. A run killed at any point — including
    /// mid-iteration — leaves the last completed iteration on disk, and
    /// [`Trainer::resume_from`] in a *new process* continues it with the
    /// weights the uninterrupted run would have produced, byte for byte.
    /// A failed write surfaces as [`TrainError::Persist`].
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Loads a [`TrainCheckpoint`] artifact written by
    /// [`Trainer::checkpoint_to`] (or [`TrainCheckpoint::save_to`]) and
    /// resumes from it, exactly like [`Trainer::checkpoint`]. The same
    /// contract applies: seed, configuration, and training set must match
    /// the run that wrote the file.
    pub fn resume_from(self, path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let cp = TrainCheckpoint::load_from(path.as_ref())?;
        Ok(self.checkpoint(cp))
    }

    /// Installs a per-iteration observer: called after every outer
    /// iteration with a [`TrainProgress`]; returning [`TrainControl::Stop`]
    /// ends the run early (the outcome's checkpoint resumes it exactly).
    pub fn observer<F>(mut self, observer: F) -> Self
    where
        F: FnMut(&TrainProgress) -> TrainControl + 'ob,
    {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Runs Algorithm 1 over fully-labelled training sequences.
    ///
    /// Preprocesses the training set ([`TrainError::EmptyTrainingSet`] /
    /// [`TrainError::TruthNotInCandidates`] on malformed input), then
    /// alternates: sample the free chain's sites in parallel over the
    /// pool, fold the samples into an inner L-BFGS step, majority-vote the
    /// samples into the configured chain, until both chains' weight groups
    /// converge, `max_iter` is reached, or the observer stops the run.
    pub fn run(mut self, train: &[LabeledSequence]) -> Result<TrainOutcome<'a>, TrainError> {
        let start = Instant::now();
        let config = self.config.clone();
        let data = prepare(self.space, &config, train)?;
        let n_seqs = data.seqs.len();

        // Restore (or initialise) the full iteration state.
        let mut state = match self.checkpoint.take() {
            Some(cp) => {
                Self::validate_checkpoint(&cp, &data)?;
                cp
            }
            None => TrainCheckpoint {
                weights: self
                    .initial_weights
                    .take()
                    .unwrap_or_else(|| Weights::uniform(0.5)),
                next_iteration: 0,
                events_cfg: data.seqs.iter().map(|s| s.initial_events()).collect(),
                regions_cfg: data.seqs.iter().map(|s| s.initial_regions()).collect(),
                region_converged: false,
                event_converged: false,
                did_region_step: false,
                did_event_step: false,
            },
        };

        let mut report = TrainReport {
            iterations: state.next_iteration,
            skipped_sequences: data.skipped_sequences,
            ..TrainReport::default()
        };
        let region_mask = config.structure.region_step_mask();
        let event_mask = config.structure.event_step_mask();

        // A checkpoint captured at convergence resumes as a no-op: the
        // uninterrupted run stopped here, so training further would move
        // the weights past what it produced.
        let already_converged = state.did_region_step
            && state.did_event_step
            && state.region_converged
            && state.event_converged;
        let first_iteration = if already_converged {
            config.max_iter
        } else {
            state.next_iteration
        };

        for iter in first_iteration..config.max_iter {
            let iter_start = Instant::now();
            report.iterations = iter + 1;
            state.next_iteration = iter + 1;
            let sample_regions = match config.first_configured {
                FirstConfigured::Events => iter % 2 == 0,
                FirstConfigured::Regions => iter % 2 == 1,
            };
            let mask = if sample_regions {
                &region_mask
            } else {
                &event_mask
            };
            // Never empty: every region step mask contains SM and every
            // event step mask contains EM, whatever the structure variant.
            let active: Vec<usize> = (0..NUM_FEATURES).filter(|&k| mask[k]).collect();
            debug_assert!(!active.is_empty());

            // --- MCMC sampling of the free chain (lines 5–8), fanned out
            // over the pool. Workers claim sequences dynamically and fold
            // index-tagged results into per-worker accumulators; sorting
            // by sequence index afterwards restores the sequential order,
            // so thread count is unobservable.
            let weights_now = &state.weights;
            let events_cfg = &state.events_cfg;
            let regions_cfg = &state.regions_cfg;
            let (_, mut tagged) = self.pool.map_reduce(
                n_seqs,
                || (SampleScratch::new(), Vec::new()),
                |(scratch, out): &mut (SampleScratch, Vec<(usize, SequenceSamples)>), s| {
                    let samples = sample_sequence(
                        &data.seqs[s],
                        &events_cfg[s],
                        &regions_cfg[s],
                        weights_now,
                        sample_regions,
                        config.mcmc_m,
                        train_seed(self.seed, iter, s),
                        scratch,
                    );
                    out.push((s, samples));
                },
                |(_, total), (_, part)| total.extend(part),
            );
            tagged.sort_unstable_by_key(|&(s, _)| s);
            let samples: Vec<SequenceSamples> = tagged.into_iter().map(|(_, x)| x).collect();

            // --- Inner L-BFGS on the surrogate (lines 9–17) --------------
            let step = optimize_step(&samples, &state.weights, &active, &config);
            report.objective_trace.push(step.objective);

            // --- Convergence bookkeeping (lines 18–26) -------------------
            let step_size = step.weights.chebyshev(&state.weights, Some(mask));
            if sample_regions {
                state.did_region_step = true;
                state.region_converged = step_size <= config.delta;
            } else {
                state.did_event_step = true;
                state.event_converged = step_size <= config.delta;
            }
            state.weights = step.weights;

            // Update the configured value of the just-sampled chain by
            // averaging (majority-voting) the M samples (line 25).
            for (s, seq_samples) in samples.iter().enumerate() {
                let ctx = &data.seqs[s].ctx;
                for (i, votes) in seq_samples.votes.iter().enumerate() {
                    let argmax = votes
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, c)| **c)
                        .map(|(j, _)| j)
                        .unwrap_or(0);
                    if sample_regions {
                        state.regions_cfg[s][i] = ctx.candidates[i][argmax];
                    } else {
                        state.events_cfg[s][i] = MobilityEvent::ALL[argmax];
                    }
                }
            }

            let converged = state.did_region_step
                && state.did_event_step
                && state.region_converged
                && state.event_converged;
            let iteration_seconds = iter_start.elapsed().as_secs_f64();
            report.iteration_seconds.push(iteration_seconds);

            // Durability point: the iteration's state is complete, so a
            // crash from here on resumes at `iter + 1`.
            if let Some(path) = self.checkpoint_path.as_deref() {
                state.save_to(path).map_err(|e| TrainError::Persist {
                    message: e.to_string(),
                })?;
            }

            if let Some(observer) = self.observer.as_mut() {
                let progress = TrainProgress {
                    iteration: iter + 1,
                    max_iter: config.max_iter,
                    chain: if sample_regions {
                        SampledChain::Regions
                    } else {
                        SampledChain::Events
                    },
                    objective: step.objective,
                    step: step_size,
                    weights: state.weights.clone(),
                    iteration_seconds,
                    converged,
                };
                if observer(&progress) == TrainControl::Stop {
                    report.early_stopped = true;
                    break;
                }
            }
            if converged {
                break;
            }
        }

        // Final write: also covers runs that execute zero iterations (a
        // resumed already-converged checkpoint) so the artifact exists.
        if let Some(path) = self.checkpoint_path.as_deref() {
            state.save_to(path).map_err(|e| TrainError::Persist {
                message: e.to_string(),
            })?;
        }

        report.region_converged = state.region_converged;
        report.event_converged = state.event_converged;
        report.converged = state.did_region_step
            && state.did_event_step
            && state.region_converged
            && state.event_converged;
        report.train_seconds = start.elapsed().as_secs_f64();

        let model = C2mn::from_parts(
            self.space,
            config.clone(),
            state.weights.clone(),
            data.region_freq.clone(),
            report.clone(),
        );
        Ok(TrainOutcome {
            model,
            report,
            checkpoint: state,
        })
    }

    fn validate_checkpoint(
        cp: &TrainCheckpoint,
        data: &TrainingData<'_>,
    ) -> Result<(), TrainError> {
        if cp.events_cfg.len() != data.seqs.len() || cp.regions_cfg.len() != data.seqs.len() {
            return Err(TrainError::CheckpointMismatch {
                sequence: None,
                expected: cp.events_cfg.len(),
                found: data.seqs.len(),
            });
        }
        for (s, seq) in data.seqs.iter().enumerate() {
            if cp.events_cfg[s].len() != seq.ctx.len() || cp.regions_cfg[s].len() != seq.ctx.len() {
                return Err(TrainError::CheckpointMismatch {
                    sequence: Some(s),
                    expected: cp.events_cfg[s].len(),
                    found: seq.ctx.len(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelStructure;
    use ism_indoor::BuildingGenerator;
    use ism_mobility::{Dataset, PositioningConfig, SimulationConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_training_data() -> (ism_indoor::IndoorSpace, Vec<LabeledSequence>) {
        let mut rng = StdRng::seed_from_u64(1);
        let space = BuildingGenerator::small_office()
            .generate(&mut rng)
            .unwrap();
        let dataset = Dataset::generate(
            "train",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(8.0, 2.0),
            None,
            5,
            &mut rng,
        );
        (space, dataset.sequences)
    }

    #[test]
    fn learning_runs_and_improves_weights() {
        let (space, seqs) = tiny_training_data();
        let out = Trainer::new(&space, C2mnConfig::quick_test())
            .seed(2)
            .run(&seqs)
            .unwrap();
        assert!(out.report.iterations >= 2);
        assert!(out.report.train_seconds > 0.0);
        assert_eq!(out.report.iteration_seconds.len(), out.report.iterations);
        assert_eq!(out.report.skipped_sequences, 0);
        // Weights moved away from the uniform init on active templates.
        let weights = out.model.weights();
        let moved = weights
            .0
            .iter()
            .filter(|w| (**w - 0.5).abs() > 1e-6)
            .count();
        assert!(moved >= 4, "weights barely moved: {:?}", weights.0);
        // All weights finite.
        assert!(weights.0.iter().all(|w| w.is_finite()));
    }

    #[test]
    fn cmn_structure_trains_without_segmentation() {
        let (space, seqs) = tiny_training_data();
        let config = C2mnConfig::quick_test().with_structure(ModelStructure::cmn());
        let out = Trainer::new(&space, config).seed(3).run(&seqs).unwrap();
        // Segmentation weights stay at their initial value.
        for k in 6..12 {
            assert!((out.model.weights().0[k] - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn observer_sees_every_iteration_and_can_stop() {
        let (space, seqs) = tiny_training_data();
        let mut seen: Vec<(usize, SampledChain, f64)> = Vec::new();
        let out = Trainer::new(&space, C2mnConfig::quick_test())
            .seed(4)
            .observer(|p| {
                seen.push((p.iteration, p.chain, p.objective));
                if p.iteration == 3 {
                    TrainControl::Stop
                } else {
                    TrainControl::Continue
                }
            })
            .run(&seqs)
            .unwrap();
        assert_eq!(out.report.iterations, 3);
        assert!(out.report.early_stopped);
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].0, 1);
        // Default FirstConfigured::Events ⇒ regions sampled first.
        assert_eq!(seen[0].1, SampledChain::Regions);
        assert_eq!(seen[1].1, SampledChain::Events);
        assert_eq!(out.checkpoint.next_iteration(), 3);
    }

    #[test]
    fn resuming_a_converged_checkpoint_is_a_no_op() {
        let (space, seqs) = tiny_training_data();
        // A huge δ converges as soon as both chains have stepped once.
        let mut config = C2mnConfig::quick_test();
        config.delta = 1e9;
        let done = Trainer::new(&space, config.clone())
            .seed(9)
            .run(&seqs)
            .unwrap();
        assert!(done.report.converged);
        assert!(done.report.iterations < config.max_iter);
        let resumed = Trainer::new(&space, config)
            .seed(9)
            .checkpoint(done.checkpoint)
            .run(&seqs)
            .unwrap();
        assert_eq!(
            resumed.model.weights().0.map(f64::to_bits),
            done.model.weights().0.map(f64::to_bits)
        );
        assert_eq!(resumed.report.iterations, done.report.iterations);
        assert!(resumed.report.converged);
        assert!(resumed.report.objective_trace.is_empty());
    }

    #[test]
    fn checkpoint_against_wrong_training_set_is_rejected() {
        let (space, seqs) = tiny_training_data();
        let config = C2mnConfig::quick_test();
        let out = Trainer::new(&space, config.clone())
            .seed(5)
            .run(&seqs)
            .unwrap();
        let err = Trainer::new(&space, config)
            .seed(5)
            .checkpoint(out.checkpoint)
            .run(&seqs[..seqs.len() - 1])
            .unwrap_err();
        assert!(matches!(err, TrainError::CheckpointMismatch { .. }));
    }

    #[test]
    fn empty_training_set_is_an_error() {
        let (space, _) = tiny_training_data();
        let err = Trainer::new(&space, C2mnConfig::quick_test())
            .run(&[])
            .unwrap_err();
        assert_eq!(err, TrainError::EmptyTrainingSet);
    }

    #[test]
    fn short_sequences_are_counted_not_silently_dropped() {
        let (space, mut seqs) = tiny_training_data();
        let mut short = seqs[0].clone();
        short.records.truncate(1);
        seqs.push(short);
        let out = Trainer::new(&space, C2mnConfig::quick_test())
            .seed(6)
            .run(&seqs)
            .unwrap();
        assert_eq!(out.report.skipped_sequences, 1);
        assert_eq!(out.model.report().skipped_sequences, 1);
    }
}
