//! Criterion benchmarks of the end-to-end pipeline stages: Gibbs sweeps,
//! per-sequence decoding latency (the paper reports < 600 ms for a
//! ~100-record sequence), one training step, and the top-k queries.

use criterion::{criterion_group, criterion_main, Criterion};
use ism_c2mn::{C2mn, C2mnConfig, CoupledNetwork, RegionSites, SequenceContext, Weights};
use ism_indoor::BuildingGenerator;
use ism_mobility::{
    Dataset, MobilityEvent, PositioningConfig, PositioningRecord, SimulationConfig, TimePeriod,
};
use ism_pgm::gibbs_sweep;
use ism_queries::{tk_frpq, tk_prq};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn setup() -> (ism_indoor::IndoorSpace, Dataset) {
    let mut rng = StdRng::seed_from_u64(1);
    let space = BuildingGenerator::mall().generate(&mut rng).unwrap();
    let dataset = Dataset::generate(
        "bench",
        &space,
        SimulationConfig::quick(),
        PositioningConfig::wifi_mall(),
        None,
        12,
        &mut rng,
    );
    (space, dataset)
}

fn bench_gibbs(c: &mut Criterion) {
    let (space, dataset) = setup();
    let config = C2mnConfig::quick_test();
    let records: Vec<PositioningRecord> = dataset.sequences[0].positioning().take(100).collect();
    let ctx = SequenceContext::build(&space, &config, &records, &[]);
    let weights = Weights::uniform(1.0);
    let net = CoupledNetwork::new(&ctx, &weights);
    let events = vec![MobilityEvent::Stay; ctx.len()];
    let rs = RegionSites {
        net: &net,
        events: &events,
    };
    c.bench_function("pipeline/gibbs_region_sweep_100", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut state = ctx.nearest_idx.clone();
        b.iter(|| gibbs_sweep(&rs, black_box(&mut state), 1.0, &mut rng))
    });
}

fn bench_decode(c: &mut Criterion) {
    let (space, dataset) = setup();
    let mut rng = StdRng::seed_from_u64(3);
    let config = C2mnConfig::quick_test();
    let model = C2mn::train(&space, &dataset.sequences, &config, &mut rng).unwrap();
    let records: Vec<PositioningRecord> = dataset.sequences[0].positioning().take(100).collect();
    // The paper: labeling a ~100-record sequence takes < 600 ms.
    c.bench_function("pipeline/decode_100_record_sequence", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| model.label(black_box(&records), &mut rng))
    });
}

fn bench_train_step(c: &mut Criterion) {
    let (space, dataset) = setup();
    let train: Vec<_> = dataset.sequences.iter().take(4).cloned().collect();
    let config = C2mnConfig {
        max_iter: 1,
        mcmc_m: 4,
        mcmc_burn_in: 0,
        inner_lbfgs_iters: 2,
        ..C2mnConfig::quick_test()
    };
    c.bench_function("pipeline/train_one_outer_iteration", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            C2mn::train(&space, black_box(&train), &config, &mut rng).unwrap()
        })
    });
}

fn bench_queries(c: &mut Criterion) {
    let (space, dataset) = setup();
    let store = {
        let mut store = ism_queries::SemanticsStore::new();
        for seq in &dataset.sequences {
            let times: Vec<f64> = seq.records.iter().map(|r| r.record.t).collect();
            let labels: Vec<_> = seq.truth_labels().collect();
            store.insert(seq.object_id, ism_mobility::merge_labels(&times, &labels));
        }
        store
    };
    let query: Vec<_> = space
        .regions()
        .iter()
        .filter(|r| r.kind == ism_indoor::RegionKind::Shop)
        .map(|r| r.id)
        .take(100)
        .collect();
    let qt = TimePeriod::new(0.0, 1200.0);
    c.bench_function("queries/tk_prq", |b| {
        b.iter(|| tk_prq(black_box(&store), &query, 20, qt))
    });
    c.bench_function("queries/tk_frpq", |b| {
        b.iter(|| tk_frpq(black_box(&store), &query, 20, qt))
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_gibbs, bench_decode, bench_train_step, bench_queries
}
criterion_main!(benches);
