//! SMoT: speed-threshold stay/pass detection with nearest-neighbour
//! regions (Alvares et al. [2], as instantiated in §V-A).

use ism_geometry::Point2;
use ism_indoor::{IndoorPoint, IndoorSpace, RegionId};
use ism_mobility::{MobilityEvent, PositioningRecord};

/// SMoT parameters.
#[derive(Debug, Clone, Copy)]
pub struct SmotConfig {
    /// Records moving slower than this (m/s) are stay candidates.
    pub speed_threshold: f64,
    /// Minimum duration (s) for a run of stay candidates to become a stay.
    pub min_stay_duration: f64,
}

impl Default for SmotConfig {
    fn default() -> Self {
        SmotConfig {
            speed_threshold: 0.8,
            min_stay_duration: 30.0,
        }
    }
}

/// The SMoT baseline annotator.
#[derive(Debug, Clone, Copy)]
pub struct Smot<'a> {
    space: &'a IndoorSpace,
    config: SmotConfig,
}

impl<'a> Smot<'a> {
    /// Creates the annotator for a venue.
    pub fn new(space: &'a IndoorSpace, config: SmotConfig) -> Self {
        Smot { space, config }
    }

    /// Labels every record with a (region, event) pair.
    ///
    /// Events: a record is a stay candidate when the slower of its adjacent
    /// segment speeds is below the threshold; candidate runs shorter than
    /// `min_stay_duration` are demoted to pass. Regions: each stay run is
    /// labelled with the nearest region of its centroid; pass records are
    /// labelled individually with their nearest region.
    pub fn label(&self, records: &[PositioningRecord]) -> Vec<(RegionId, MobilityEvent)> {
        let n = records.len();
        if n == 0 {
            return Vec::new();
        }
        // Per-record speed: min of adjacent gap speeds (a stationary record
        // next to a fast segment still counts as slow on one side).
        let gap_speed = |i: usize| -> f64 {
            let d = records[i].location.xy.distance(records[i + 1].location.xy);
            d / (records[i + 1].t - records[i].t).max(1e-6)
        };
        let is_slow: Vec<bool> = (0..n)
            .map(|i| {
                let left = if i > 0 { Some(gap_speed(i - 1)) } else { None };
                let right = if i + 1 < n { Some(gap_speed(i)) } else { None };
                match (left, right) {
                    (Some(a), Some(b)) => a.min(b) < self.config.speed_threshold,
                    (Some(a), None) => a < self.config.speed_threshold,
                    (None, Some(b)) => b < self.config.speed_threshold,
                    (None, None) => true,
                }
            })
            .collect();

        let mut events = vec![MobilityEvent::Pass; n];
        let mut i = 0;
        while i < n {
            if !is_slow[i] {
                i += 1;
                continue;
            }
            let mut j = i;
            while j + 1 < n && is_slow[j + 1] {
                j += 1;
            }
            if records[j].t - records[i].t >= self.config.min_stay_duration {
                for e in events.iter_mut().take(j + 1).skip(i) {
                    *e = MobilityEvent::Stay;
                }
            }
            i = j + 1;
        }

        // Regions.
        let mut regions = vec![RegionId(0); n];
        let mut i = 0;
        while i < n {
            if events[i] == MobilityEvent::Stay {
                let mut j = i;
                while j + 1 < n && events[j + 1] == MobilityEvent::Stay {
                    j += 1;
                }
                // Representative location: centroid of the stay run.
                let mut c = Point2::ZERO;
                for r in &records[i..=j] {
                    c = c + r.location.xy;
                }
                c = c / (j - i + 1) as f64;
                let floor = records[i].location.floor;
                let region = self.space.nearest_region(&IndoorPoint::new(floor, c));
                for r in regions.iter_mut().take(j + 1).skip(i) {
                    *r = region;
                }
                i = j + 1;
            } else {
                regions[i] = self.space.nearest_region(&records[i].location);
                i += 1;
            }
        }
        regions.into_iter().zip(events).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_indoor::BuildingGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn venue() -> IndoorSpace {
        BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap()
    }

    fn rec(space: &IndoorSpace, part: usize, dx: f64, t: f64) -> PositioningRecord {
        let c = space.partitions()[part].rect.center();
        PositioningRecord::new(IndoorPoint::new(0, Point2::new(c.x + dx, c.y)), t)
    }

    #[test]
    fn stationary_run_is_a_stay_in_the_right_region() {
        let space = venue();
        let smot = Smot::new(&space, SmotConfig::default());
        let records: Vec<PositioningRecord> = (0..6)
            .map(|i| rec(&space, 4, 0.1 * i as f64, 15.0 * i as f64))
            .collect();
        let labels = smot.label(&records);
        assert!(labels.iter().all(|l| l.1 == MobilityEvent::Stay));
        let truth = space.partitions()[4].region;
        assert!(labels.iter().all(|l| l.0 == truth));
    }

    #[test]
    fn fast_movement_is_pass() {
        let space = venue();
        let smot = Smot::new(&space, SmotConfig::default());
        // 10 m per 5 s = 2 m/s > threshold.
        let records: Vec<PositioningRecord> = (0..5)
            .map(|i| rec(&space, 2, 10.0 * i as f64, 5.0 * i as f64))
            .collect();
        let labels = smot.label(&records);
        assert!(labels.iter().all(|l| l.1 == MobilityEvent::Pass));
    }

    #[test]
    fn short_pause_is_demoted_to_pass() {
        let space = venue();
        let cfg = SmotConfig {
            speed_threshold: 0.3,
            min_stay_duration: 60.0,
        };
        let smot = Smot::new(&space, cfg);
        // Slow for only 10 seconds, then fast.
        let records = vec![
            rec(&space, 2, 0.0, 0.0),
            rec(&space, 2, 0.5, 10.0),
            rec(&space, 2, 30.0, 15.0),
            rec(&space, 2, 60.0, 20.0),
        ];
        let labels = smot.label(&records);
        assert_eq!(labels[0].1, MobilityEvent::Pass);
        assert_eq!(labels[1].1, MobilityEvent::Pass);
    }

    #[test]
    fn empty_input() {
        let space = venue();
        let smot = Smot::new(&space, SmotConfig::default());
        assert!(smot.label(&[]).is_empty());
    }
}
