//! Streaming ingest sessions.

use crate::SemanticsEngine;
use ism_mobility::PositioningRecord;
use ism_runtime::SubmissionQueue;

/// A streaming annotation session: p-sequences go in one at a time,
/// annotated m-semantics come out the other end already sharded into the
/// engine's live store.
///
/// Pushed sequences buffer in a bounded [`SubmissionQueue`]; whenever it
/// fills, the buffered chunk fans out over the engine's worker pool and
/// its m-semantics land in the store's pending segments. Dropping or
/// [`seal`](IngestSession::seal)ing the session flushes the remainder and
/// seals the store, making everything ingested visible to queries.
///
/// ## Determinism contract
///
/// Sequence number `i` of the engine's lifetime (counted across sessions)
/// is decoded with the seed `sequence_seed(base_seed, i)` — a function of
/// the global sequence index only. Push chunking, queue capacity, and
/// thread count are therefore unobservable: the sealed store is
/// byte-identical to annotating the whole stream offline with
/// [`BatchAnnotator::annotate_into_store`], which the
/// `streaming_oracle` property suite pins.
///
/// [`BatchAnnotator::annotate_into_store`]: ism_c2mn::BatchAnnotator::annotate_into_store
#[derive(Debug)]
pub struct IngestSession<'e, 'a> {
    engine: &'e mut SemanticsEngine<'a>,
    queue: SubmissionQueue<(u64, Vec<PositioningRecord>)>,
    first_index: u64,
    sealed: bool,
}

impl<'e, 'a> IngestSession<'e, 'a> {
    pub(crate) fn new(engine: &'e mut SemanticsEngine<'a>) -> Self {
        let first_index = engine.sequences_ingested();
        let queue = SubmissionQueue::starting_at(engine.queue_capacity(), first_index);
        IngestSession {
            engine,
            queue,
            first_index,
            sealed: false,
        }
    }

    /// Submits one object's p-sequence for annotation.
    ///
    /// Returns immediately unless the submission fills the queue, in which
    /// case the buffered chunk is decoded on the engine's pool before the
    /// call returns (the bound is the memory contract: at most
    /// `queue_capacity` undecoded sequences are ever held).
    pub fn push(&mut self, object_id: u64, records: Vec<PositioningRecord>) {
        if let Some(batch) = self.queue.push((object_id, records)) {
            self.engine.decode_chunk(batch);
        }
    }

    /// Submits a batch of `(object_id, p-sequence)` pairs in order.
    pub fn push_batch<I>(&mut self, entries: I)
    where
        I: IntoIterator<Item = (u64, Vec<PositioningRecord>)>,
    {
        for (object_id, records) in entries {
            self.push(object_id, records);
        }
    }

    /// Decodes everything currently buffered without sealing the store.
    /// Queries still don't see the results until the session ends.
    pub fn flush(&mut self) {
        let batch = self.queue.drain();
        self.engine.decode_chunk(batch);
    }

    /// Sequences pushed into this session so far.
    pub fn pushed(&self) -> u64 {
        self.queue.next_index() - self.first_index
    }

    /// Sequences buffered but not yet decoded.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Ends the session: flushes the queue, seals the engine's store (the
    /// incremental per-shard merge), and returns how many sequences this
    /// session ingested. Dropping the session without calling `seal` does
    /// the same — no pushed sequence is ever lost.
    pub fn seal(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        self.sealed = true;
        self.flush();
        self.engine.seal_store();
        self.pushed()
    }
}

impl Drop for IngestSession<'_, '_> {
    fn drop(&mut self) {
        // Skip the flush-and-seal during panic unwinding: decoding the
        // remaining queue would likely re-panic (same model, same pool)
        // and turn a clean panic into a double-panic abort.
        if !self.sealed && !std::thread::panicking() {
            self.finish();
        }
    }
}
