//! Random-waypoint indoor mobility simulation with per-second ground truth.
//!
//! Mirrors the paper's synthetic-data protocol (§V-C): objects follow the
//! waypoint model — move to a randomly chosen destination region along a
//! pre-planned indoor path, stay there for a random period (1 s – 30 min),
//! then head to the next destination — with a maximum speed of 1.7 m/s and
//! lifespans between 10 s and the full simulation horizon. The true
//! location and region are recorded every second; the true event is *stay*
//! while at a destination and *pass* while moving.

use crate::{GroundTruthPoint, MobilityEvent};
use ism_indoor::{IndoorPoint, IndoorSpace, RegionId, RegionKind};
use rand::Rng;

/// Configuration of the waypoint simulator.
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// Simulation horizon in seconds (paper: 4 h).
    pub duration: f64,
    /// Minimum object lifespan in seconds (paper: 10 s).
    pub lifespan_min: f64,
    /// Maximum walking speed in m/s (paper: 1.7).
    pub max_speed: f64,
    /// Minimum walking speed in m/s.
    pub min_speed: f64,
    /// Minimum stay duration at a destination in seconds (paper: 1 s).
    pub stay_min: f64,
    /// Maximum stay duration in seconds (paper: 30 min).
    pub stay_max: f64,
}

impl SimulationConfig {
    /// The paper's synthetic-experiment setting (4 h horizon).
    pub fn paper() -> Self {
        SimulationConfig {
            duration: 4.0 * 3600.0,
            lifespan_min: 10.0,
            max_speed: 1.7,
            min_speed: 0.5,
            stay_min: 1.0,
            stay_max: 30.0 * 60.0,
        }
    }

    /// A fast profile for tests and examples (20 min horizon, short stays).
    pub fn quick() -> Self {
        SimulationConfig {
            duration: 1200.0,
            lifespan_min: 300.0,
            max_speed: 1.7,
            min_speed: 0.5,
            stay_min: 20.0,
            stay_max: 120.0,
        }
    }
}

/// A simulated object's ground-truth trajectory (1 Hz samples).
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// Object identifier.
    pub object_id: u64,
    /// Per-second ground truth, time-ordered.
    pub points: Vec<GroundTruthPoint>,
}

/// The random-waypoint simulator over an indoor space.
#[derive(Debug, Clone, Copy)]
pub struct Simulator<'a> {
    space: &'a IndoorSpace,
    config: SimulationConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the given venue.
    pub fn new(space: &'a IndoorSpace, config: SimulationConfig) -> Self {
        Simulator { space, config }
    }

    /// The venue being simulated.
    pub fn space(&self) -> &'a IndoorSpace {
        self.space
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Destination regions (shops) of the venue.
    fn destinations(&self) -> Vec<RegionId> {
        self.space
            .regions()
            .iter()
            .filter(|r| r.kind == RegionKind::Shop && !r.partitions.is_empty())
            .map(|r| r.id)
            .collect()
    }

    /// Uniformly samples a point inside the given region.
    fn random_point_in_region<R: Rng + ?Sized>(
        &self,
        region: RegionId,
        rng: &mut R,
    ) -> IndoorPoint {
        let reg = self.space.region(region);
        // Pick a partition weighted by area, then a point inside it, away
        // from walls so walking targets are realistic.
        let total = reg.area.max(f64::EPSILON);
        let mut pick = rng.random::<f64>() * total;
        let mut chosen = reg.partitions[0];
        for &pid in &reg.partitions {
            let a = self.space.partition(pid).rect.area();
            if pick <= a {
                chosen = pid;
                break;
            }
            pick -= a;
        }
        let part = self.space.partition(chosen);
        let margin = 0.15;
        let u = margin + rng.random::<f64>() * (1.0 - 2.0 * margin);
        let v = margin + rng.random::<f64>() * (1.0 - 2.0 * margin);
        IndoorPoint::new(part.floor, part.rect.at(u, v))
    }

    /// Simulates one object's ground-truth trajectory.
    pub fn simulate_object<R: Rng + ?Sized>(&self, object_id: u64, rng: &mut R) -> Trajectory {
        let c = &self.config;
        let destinations = self.destinations();
        assert!(
            !destinations.is_empty(),
            "venue has no destination (shop) regions"
        );

        let lifespan = c.lifespan_min + rng.random::<f64>() * (c.duration - c.lifespan_min);
        let t0 = rng.random::<f64>() * (c.duration - lifespan);
        let t_end = t0 + lifespan;

        let mut points = Vec::with_capacity(lifespan as usize + 2);
        let mut t = t0;

        // Spawn staying at a random destination.
        let mut dest = destinations[rng.random_range(0..destinations.len())];
        let mut pos = self.random_point_in_region(dest, rng);

        'life: loop {
            // --- Stay phase ---------------------------------------------
            let stay = c.stay_min + rng.random::<f64>() * (c.stay_max - c.stay_min);
            let stay_end = (t + stay).min(t_end);
            while t <= stay_end {
                points.push(GroundTruthPoint {
                    location: pos,
                    t,
                    region: dest,
                    event: MobilityEvent::Stay,
                });
                t += 1.0;
            }
            if t >= t_end {
                break 'life;
            }

            // --- Travel phase -------------------------------------------
            let next = loop {
                let cand = destinations[rng.random_range(0..destinations.len())];
                if cand != dest || destinations.len() == 1 {
                    break cand;
                }
            };
            let goal = self.random_point_in_region(next, rng);
            let route = match self.space.plan_route(pos, goal) {
                Some(r) => r,
                None => break 'life, // unreachable destination: end the life
            };
            let speed = c.min_speed + rng.random::<f64>() * (c.max_speed - c.min_speed);
            let travel_time = route.total / speed;
            let depart = t;
            while t < depart + travel_time {
                if t > t_end {
                    break 'life;
                }
                let dist = (t - depart) * speed;
                let loc = position_along(&route.waypoints, dist);
                let region = self
                    .space
                    .region_at(&loc)
                    .unwrap_or_else(|| self.space.nearest_region(&loc));
                points.push(GroundTruthPoint {
                    location: loc,
                    t,
                    region,
                    event: MobilityEvent::Pass,
                });
                t += 1.0;
            }
            pos = goal;
            dest = next;
        }

        Trajectory { object_id, points }
    }

    /// Simulates `n` objects.
    pub fn simulate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Trajectory> {
        (0..n)
            .map(|i| self.simulate_object(i as u64, rng))
            .collect()
    }
}

/// Interpolates the position at walking distance `dist` along a route's
/// waypoints (pairs of point and cumulative distance).
///
/// Segments whose endpoints lie on different floors (staircases) keep the
/// planar position of the door and switch floors halfway through.
fn position_along(waypoints: &[(IndoorPoint, f64)], dist: f64) -> IndoorPoint {
    debug_assert!(!waypoints.is_empty());
    if dist <= waypoints[0].1 {
        return waypoints[0].0;
    }
    for w in waypoints.windows(2) {
        let (a, da) = w[0];
        let (b, db) = w[1];
        if dist <= db {
            let span = (db - da).max(f64::EPSILON);
            let frac = ((dist - da) / span).clamp(0.0, 1.0);
            return if a.floor == b.floor {
                IndoorPoint::new(a.floor, a.xy.lerp(b.xy, frac))
            } else {
                // Staircase traversal: hold the xy, switch floor halfway.
                let floor = if frac < 0.5 { a.floor } else { b.floor };
                IndoorPoint::new(floor, a.xy.lerp(b.xy, frac.round()))
            };
        }
    }
    waypoints.last().unwrap().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_indoor::BuildingGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn venue() -> IndoorSpace {
        BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap()
    }

    #[test]
    fn trajectory_is_time_ordered_and_in_bounds() {
        let space = venue();
        let sim = Simulator::new(&space, SimulationConfig::quick());
        let mut rng = StdRng::seed_from_u64(7);
        let traj = sim.simulate_object(0, &mut rng);
        assert!(traj.points.len() > 30);
        for w in traj.points.windows(2) {
            assert!(w[1].t > w[0].t);
            // 1 Hz sampling.
            assert!((w[1].t - w[0].t - 1.0).abs() < 1e-9);
        }
        for p in &traj.points {
            // Every ground truth point lies in some partition whose region
            // matches the recorded label.
            let region = space.region_at(&p.location);
            assert_eq!(region, Some(p.region), "at t={}", p.t);
        }
    }

    #[test]
    fn stays_are_stationary_and_in_destination_regions() {
        let space = venue();
        let sim = Simulator::new(&space, SimulationConfig::quick());
        let mut rng = StdRng::seed_from_u64(11);
        let traj = sim.simulate_object(0, &mut rng);
        for w in traj.points.windows(2) {
            if w[0].event == MobilityEvent::Stay && w[1].event == MobilityEvent::Stay {
                assert_eq!(w[0].location, w[1].location);
            }
            if w[0].event == MobilityEvent::Stay {
                assert!(space.region(w[0].region).is_destination());
            }
        }
    }

    #[test]
    fn movement_respects_speed_limit() {
        let space = venue();
        let cfg = SimulationConfig::quick();
        let sim = Simulator::new(&space, cfg);
        let mut rng = StdRng::seed_from_u64(13);
        let traj = sim.simulate_object(0, &mut rng);
        for w in traj.points.windows(2) {
            if w[0].location.floor == w[1].location.floor {
                let d = w[0].location.planar_distance(&w[1].location);
                assert!(d <= cfg.max_speed * 1.0 + 1e-6, "moved {d} m in one second");
            }
        }
    }

    #[test]
    fn lifespans_fit_horizon() {
        let space = venue();
        let cfg = SimulationConfig::quick();
        let sim = Simulator::new(&space, cfg);
        let mut rng = StdRng::seed_from_u64(17);
        for traj in sim.simulate(8, &mut rng) {
            let first = traj.points.first().unwrap().t;
            let last = traj.points.last().unwrap().t;
            assert!(first >= 0.0);
            assert!(last <= cfg.duration + 1.0);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let space = venue();
        let sim = Simulator::new(&space, SimulationConfig::quick());
        let a = sim.simulate_object(0, &mut StdRng::seed_from_u64(3));
        let b = sim.simulate_object(0, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.points.len(), b.points.len());
        assert_eq!(a.points.first(), b.points.first());
        assert_eq!(a.points.last(), b.points.last());
    }

    #[test]
    fn both_events_occur() {
        let space = venue();
        let sim = Simulator::new(&space, SimulationConfig::quick());
        let mut rng = StdRng::seed_from_u64(23);
        let trajs = sim.simulate(6, &mut rng);
        let mut stays = 0;
        let mut passes = 0;
        for t in &trajs {
            for p in &t.points {
                match p.event {
                    MobilityEvent::Stay => stays += 1,
                    MobilityEvent::Pass => passes += 1,
                }
            }
        }
        assert!(stays > 0 && passes > 0, "stays={stays} passes={passes}");
    }
}
