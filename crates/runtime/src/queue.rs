//! Bounded submission queue for streaming workloads.
//!
//! Streaming producers (the `ism-engine` ingest sessions) accept items one
//! at a time but execute them in chunks on a [`WorkerPool`]: items buffer
//! in a [`SubmissionQueue`] until it fills, at which point the queue hands
//! the caller a *drained batch* to fan out. The bound is the memory
//! contract — at most `capacity` submitted-but-unexecuted items are ever
//! materialised.
//!
//! Every item is stamped with a monotonically increasing **global index**
//! at submission time. Deterministic pipelines derive per-item RNG seeds
//! from that index (see `ism_c2mn::sequence_seed`), so how items are
//! grouped into batches — one by one, uneven chunks, everything at once —
//! is unobservable in the output.
//!
//! [`WorkerPool`]: crate::WorkerPool

/// A bounded FIFO buffer stamping each item with a global index.
///
/// Not a concurrent queue: one producer owns it and drains it into a
/// worker pool. The bound caps buffered items, not total throughput.
#[derive(Debug, Clone)]
pub struct SubmissionQueue<T> {
    items: Vec<(u64, T)>,
    capacity: usize,
    next_index: u64,
}

impl<T> SubmissionQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped to ≥ 1),
    /// stamping the first item with index 0.
    pub fn new(capacity: usize) -> Self {
        SubmissionQueue::starting_at(capacity, 0)
    }

    /// Creates a queue whose first item is stamped `first_index` —
    /// continuing the global numbering of an earlier queue or session.
    pub fn starting_at(capacity: usize, first_index: u64) -> Self {
        let capacity = capacity.max(1);
        SubmissionQueue {
            items: Vec::with_capacity(capacity),
            capacity,
            next_index: first_index,
        }
    }

    /// The maximum number of buffered items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently buffered (submitted but not yet drained).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The index the next submitted item will be stamped with.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Submits one item, stamping it with the next global index.
    ///
    /// Returns `Some(batch)` when the submission fills the queue: the
    /// caller must execute the drained `(index, item)` batch (in index
    /// order) before the queue accepts further memory. Returns `None`
    /// while the queue still has room.
    #[must_use = "a full queue hands back a batch that must be executed"]
    pub fn push(&mut self, item: T) -> Option<Vec<(u64, T)>> {
        let index = self.next_index;
        self.next_index += 1;
        self.items.push((index, item));
        if self.items.len() >= self.capacity {
            Some(self.drain())
        } else {
            None
        }
    }

    /// Drains every buffered item as an `(index, item)` batch in index
    /// order (empty when nothing is buffered).
    pub fn drain(&mut self) -> Vec<(u64, T)> {
        std::mem::take(&mut self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::SubmissionQueue;

    #[test]
    fn capacity_clamps_to_one() {
        let mut q = SubmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        // Capacity 1 drains on every push.
        assert_eq!(q.push('a'), Some(vec![(0, 'a')]));
        assert_eq!(q.push('b'), Some(vec![(1, 'b')]));
    }

    #[test]
    fn indices_are_contiguous_across_batches() {
        let mut q = SubmissionQueue::new(3);
        let mut seen = Vec::new();
        for i in 0..8 {
            if let Some(batch) = q.push(i) {
                assert_eq!(batch.len(), 3);
                seen.extend(batch);
            }
        }
        seen.extend(q.drain());
        let indices: Vec<u64> = seen.iter().map(|&(idx, _)| idx).collect();
        assert_eq!(indices, (0..8).collect::<Vec<_>>());
        assert!(seen.iter().all(|&(idx, item)| idx == item as u64));
        assert!(q.is_empty());
        assert_eq!(q.next_index(), 8);
    }

    #[test]
    fn starting_at_continues_numbering() {
        let mut q = SubmissionQueue::starting_at(2, 40);
        assert_eq!(q.next_index(), 40);
        assert!(q.push("x").is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.push("y"), Some(vec![(40, "x"), (41, "y")]));
        assert!(q.is_empty());
        assert_eq!(q.next_index(), 42);
    }

    #[test]
    fn drain_of_empty_queue_is_empty() {
        let mut q: SubmissionQueue<u8> = SubmissionQueue::new(4);
        assert!(q.drain().is_empty());
    }
}
