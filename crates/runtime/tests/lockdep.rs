//! Proves the `lockdep` feature is actually live when enabled through
//! `ism-runtime` (not just inside `parking_lot`'s own tests): a seeded
//! lock-order inversion must be detected, and the worker pool's own
//! locking must stay clean under checking.
#![cfg(feature = "lockdep")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use ism_runtime::WorkerPool;
use parking_lot::Mutex;

/// A deliberately inverted acquisition pair panics with both chains.
#[test]
fn seeded_inversion_is_caught_through_the_feature_gate() {
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    }));
    let payload = result.expect_err("the reversed order must panic under lockdep");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("lock-order inversion"),
        "unexpected panic message: {message}"
    );
    assert!(
        message.contains("conflicting chain"),
        "message must print the conflicting chain: {message}"
    );
}

/// The pool's queue/signal/latch/accumulator locking survives a busy
/// mixed workload with lock-order checking on.
#[test]
fn worker_pool_discipline_is_clean_under_lockdep() {
    let pool = WorkerPool::new(4);
    let sum: u64 = pool.map_reduce(
        1000,
        || 0u64,
        |acc, i| *acc += i as u64,
        |total, part| *total += part,
    );
    assert_eq!(sum, 1000 * 999 / 2);
    let squares = pool.run(64, |i| (i as u64) * (i as u64));
    assert_eq!(squares[63], 63 * 63);
}
